"""Deriving state annotations from designs and specs.

The paper's position is that annotations should come *from the
generator*, because the generator knows the tables: "It is fairly
straightforward to automatically determine these state annotations
from the FSM tables (or, equivalently, microcode)".  These helpers are
that derivation.
"""

from __future__ import annotations

from repro.rtl.module import Module
from repro.synth.dc_options import StateAnnotation
from repro.synth.reach import reachable_states


def onehot_annotation(reg_name: str, width: int) -> StateAnnotation:
    """Annotate a register as one-hot encoded (the paper's k = n case)."""
    return StateAnnotation(reg_name, tuple(1 << i for i in range(width)))


def derive_annotations(
    module: Module,
    reg_names: list[str] | None = None,
    pinned: dict[str, int] | None = None,
) -> list[StateAnnotation]:
    """Reachability-derived annotations for the given registers.

    Registers whose reachability cannot be computed exactly (data
    registers, cross-coupled state) are silently skipped; registers
    that reach every code yield no annotation.  ``pinned`` holds
    configuration inputs at fixed values, which is how a mode-pinned
    ("Manual") derivation tightens the sets.
    """
    names = reg_names if reg_names is not None else sorted(module.regs)
    annotations = []
    for name in names:
        reg = module.regs.get(name)
        if reg is None:
            raise ValueError(f"unknown register {name!r}")
        try:
            states = reachable_states(module, name, pinned=pinned)
        except ValueError:
            continue
        if len(states) == 1 << reg.width:
            continue
        annotations.append(StateAnnotation(name, states))
    return annotations
