"""Partial evaluation of flexible controller designs.

The generator-side API of the paper's methodology:

* :func:`~repro.pe.bind.bind_tables` turns a flexible design (config
  memories, write ports) into a bound design (ROMs) for one
  configuration -- the step before synthesis partially evaluates the
  tables away;
* :func:`~repro.pe.annotations.derive_annotations` computes state
  annotations from the design's own tables (reachability), the
  information a generator should hand the tool alongside the RTL;
* :func:`~repro.pe.specialize.specialize` runs the whole Auto flow
  (bind, annotate, compile), and
  :func:`~repro.pe.specialize.specialize_manual` additionally applies
  configuration-pinned reachability -- the paper's hand optimizations.
"""

from repro.pe.annotations import derive_annotations, onehot_annotation
from repro.pe.bind import bind_tables
from repro.pe.specialize import (
    prepare_auto,
    prepare_manual,
    specialize,
    specialize_manual,
)

__all__ = [
    "bind_tables",
    "derive_annotations",
    "onehot_annotation",
    "prepare_auto",
    "prepare_manual",
    "specialize",
    "specialize_manual",
]
