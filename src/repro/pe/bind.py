"""Binding configurations into flexible designs.

``bind_tables(module, {"ucode": words, ...})`` replaces each named
configuration memory with a ROM holding the given words and deletes
the now-dangling write ports.  The result is exactly what the paper's
"Auto" designs are: the flexible RTL with its tables fixed, ready for
the synthesis tool's partial evaluation to strip the storage.
"""

from __future__ import annotations

from repro.rtl.module import Memory, Module, Reg


def bind_tables(module: Module, bindings: dict[str, list[int]]) -> Module:
    """A copy of ``module`` with the named config memories bound.

    Args:
        module: the flexible design.
        bindings: memory name -> row contents (shorter lists are
            zero-extended to the memory depth).

    Raises:
        ValueError: unknown memory, non-writable memory, oversized
            contents, or expressions that read the removed write ports.
    """
    for name in bindings:
        memory = module.memories.get(name)
        if memory is None:
            raise ValueError(f"unknown memory {name!r}")
        if not memory.writable:
            raise ValueError(f"memory {name!r} is already bound")

    removed_inputs: set[str] = set()
    new_memories: dict[str, Memory] = {}
    for name, memory in module.memories.items():
        contents = bindings.get(name)
        if contents is None:
            new_memories[name] = memory
            continue
        if len(contents) > memory.depth:
            raise ValueError(
                f"{len(contents)} words exceed memory {name!r} depth "
                f"{memory.depth}"
            )
        port = memory.write_port
        assert port is not None
        removed_inputs.update((port.enable, port.addr, port.data))
        new_memories[name] = Memory(
            name, memory.width, memory.depth, contents=list(contents)
        )

    bound = Module(f"{module.name}_bound")
    bound.inputs = {
        name: port
        for name, port in module.inputs.items()
        if name not in removed_inputs
    }
    bound.outputs = dict(module.outputs)
    bound.regs = {
        name: Reg(name, reg.width, reg.reset_kind, reg.reset_value, reg.next)
        for name, reg in module.regs.items()
    }
    bound.memories = new_memories
    try:
        bound.validate()
    except ValueError as error:
        raise ValueError(
            f"binding left dangling references (a user expression reads "
            f"a removed write port?): {error}"
        ) from error
    return bound
