"""Specialization drivers: the Full / Auto / Manual flows of Fig. 9.

* **Full**: compile the flexible design as-is (config memories and all)
  -- just call ``DesignCompiler().compile(flexible)``.
* **Auto** (:func:`specialize`): bind the configuration, let the tool's
  partial evaluation remove the tables, with annotations the generator
  derives from its own tables.
* **Manual** (:func:`specialize_manual`): additionally exploit a
  pinned configuration -- unreachable-state elimination through
  tightened annotations, the optimization the paper attributes to hand
  tuning.

Since the frontend became passes there is also a pipeline route:
:func:`bound_pipeline` prepends the registered ``pe_bind`` stage to
the facade's default flow, so the binding runs *inside* the pass
framework -- ``pipeline.compile(flexible, bindings=...)`` -- and is
fingerprinted and cached with the rest of the flow.  The helpers here
remain the pre-bound, one-call surface over the same machinery.
"""

from __future__ import annotations

from dataclasses import replace

from repro.flow import PassManager
from repro.flow.frontend import PeBindPass
from repro.flow.pipeline import default_pipeline
from repro.pe.annotations import derive_annotations
from repro.pe.bind import bind_tables
from repro.rtl.module import Module
from repro.synth.compiler import (
    CompileResult,
    DesignCompiler,
    result_from_context,
)
from repro.synth.dc_options import CompileOptions, StateAnnotation


def bound_pipeline(
    options: CompileOptions | None = None,
    annotate: bool = False,
    annotation_regs: list[str] | None = None,
) -> PassManager:
    """The Auto flow as one pass pipeline: ``pe_bind`` followed by the
    facade's default flow.

    The configuration itself is design state, not pipeline structure:
    seed it through ``compile(bindings=...)`` (or
    ``CompileJob.bindings``).  ``annotate``/``annotation_regs`` mirror
    :func:`specialize`'s derivation knobs; the rendered spec stays
    fingerprintable, so compiles through this pipeline cache and
    parallelize like any other.
    """
    options = options or CompileOptions()
    regs = None if annotation_regs is None else ",".join(annotation_regs)
    return PassManager(
        [
            PeBindPass(annotate=annotate, regs=regs),
            *default_pipeline(options),
        ]
    )


def prepare_auto(
    flexible: Module,
    bindings: dict[str, list[int]],
    options: CompileOptions | None = None,
    annotate: bool = True,
    annotation_regs: list[str] | None = None,
) -> tuple[Module, CompileOptions]:
    """The synthesis *inputs* of the Auto flow: the bound module and
    the run options (annotations appended), without compiling.

    This is the job-preparation half of :func:`specialize`; drivers
    that fan compiles out with :func:`repro.flow.compile_many` use it
    to build :class:`~repro.flow.CompileJob` entries.
    """
    options = options or CompileOptions()
    bound = bind_tables(flexible, bindings)
    annotations = list(options.state_annotations)
    if annotate:
        for annotation in derive_annotations(bound, annotation_regs):
            if not any(a.reg_name == annotation.reg_name for a in annotations):
                annotations.append(annotation)
    return bound, replace(options, state_annotations=annotations)


def prepare_manual(
    flexible: Module,
    bindings: dict[str, list[int]],
    pinned: dict[str, int],
    extra_annotations: list[StateAnnotation] | None = None,
    options: CompileOptions | None = None,
    annotation_regs: list[str] | None = None,
) -> tuple[Module, CompileOptions]:
    """The synthesis inputs of the Manual flow (see
    :func:`specialize_manual`), without compiling."""
    options = options or CompileOptions()
    bound = bind_tables(flexible, bindings)
    annotations = list(options.state_annotations)
    for annotation in extra_annotations or []:
        if not any(a.reg_name == annotation.reg_name for a in annotations):
            annotations.append(annotation)
    for annotation in derive_annotations(bound, annotation_regs, pinned=pinned):
        if not any(a.reg_name == annotation.reg_name for a in annotations):
            annotations.append(annotation)
    return bound, replace(options, state_annotations=annotations)


def specialize(
    flexible: Module,
    bindings: dict[str, list[int]],
    compiler: DesignCompiler | None = None,
    options: CompileOptions | None = None,
    annotate: bool = True,
    annotation_regs: list[str] | None = None,
    pipeline: PassManager | None = None,
) -> CompileResult:
    """The Auto flow: bind the tables and compile.

    Args:
        flexible: the flexible (config-memory) design.
        bindings: memory name -> contents for this configuration.
        compiler: synthesis engine (default library).
        options: compile options; generator annotations are appended.
        annotate: derive reachability annotations from the bound design.
        annotation_regs: restrict derivation to these registers.
        pipeline: run this flow pipeline instead of the default one the
            compiler facade builds from ``options``.  The pipeline's
            own pass parameters then govern the run: ``options`` only
            contributes ``state_annotations`` (and is stored on the
            result for reference), so keep the two consistent.
    """
    compiler = compiler or DesignCompiler()
    bound, run_options = prepare_auto(
        flexible, bindings, options, annotate, annotation_regs
    )
    return _compile(compiler, bound, run_options, pipeline)


def specialize_manual(
    flexible: Module,
    bindings: dict[str, list[int]],
    pinned: dict[str, int],
    extra_annotations: list[StateAnnotation] | None = None,
    compiler: DesignCompiler | None = None,
    options: CompileOptions | None = None,
    annotation_regs: list[str] | None = None,
    pipeline: PassManager | None = None,
) -> CompileResult:
    """The Manual flow: Auto plus configuration-pinned reachability.

    ``pinned`` fixes mode inputs (the memory-configuration registers of
    the PCtrl study); reachability under the pinned values yields the
    tighter annotations whose effect the paper measured as the extra
    "16% in area and power savings" for uncached mode.
    ``extra_annotations`` lets a caller pass program-derived sets (e.g.
    from :meth:`AssembledProgram.reachable_addresses` with pinned
    opcodes) that RTL-level reachability cannot see.
    """
    compiler = compiler or DesignCompiler()
    bound, run_options = prepare_manual(
        flexible, bindings, pinned, extra_annotations, options,
        annotation_regs,
    )
    return _compile(compiler, bound, run_options, pipeline)


def _compile(
    compiler: DesignCompiler,
    bound: Module,
    options: CompileOptions,
    pipeline: PassManager | None,
) -> CompileResult:
    if pipeline is None:
        return compiler.compile(bound, options)
    ctx = pipeline.compile(
        bound,
        annotations=list(options.state_annotations),
        library=compiler.library,
    )
    return result_from_context(ctx, options)
