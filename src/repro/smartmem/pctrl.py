"""The PCtrl top-level generator.

Composes the Dispatch unit (flexible microcode sequencer), the CSR
block (configuration registers implemented as a small config memory),
the request queue, the loop counter, and four data pipes into one flat
module -- the design whose Full/Auto/Manual areas Fig. 9 compares.

The microcode is a single *combined image* holding every routine
(coherence and uncached); a configuration decides which requests can
arrive, not which code is loaded.  The generator also packages its
knowledge: per-configuration memory bindings, and the state
annotations derivable from the image (sequencer reachability under the
configuration's opcodes, pipe-FSM reachability under the commands
those routines issue, offset-counter bounds from the longest stream
burst).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controllers.assembler import AssembledProgram
from repro.controllers.microcode import MicrocodeFormat, SeqOp
from repro.controllers.sequencer import SequencerSpec, generate_sequencer
from repro.rtl.ast import Const, Expr
from repro.rtl.builder import ModuleBuilder, cat, mux
from repro.rtl.inline import inline
from repro.rtl.module import Module
from repro.smartmem.config import MemoryMode, PCtrlConfig, PCtrlParams
from repro.smartmem.datapipe import (
    build_datapipe,
    command_words_for,
    reachable_pipe_states,
)
from repro.smartmem.protocols import (
    CONDITIONS,
    combined_program,
    commands_used,
    max_stream_run,
    pctrl_format,
)
from repro.synth.dc_options import StateAnnotation

#: CSR rows: [mode, loop_init, pipe_enable, reserved].
CSR_DEPTH = 4
CSR_ROW_MODE = 0
CSR_ROW_LOOP = 1
CSR_ROW_PIPES = 2


@dataclass
class PCtrlDesign:
    """The flexible PCtrl plus the generator's configuration knowledge."""

    params: PCtrlParams
    format: MicrocodeFormat
    flexible: Module
    image: AssembledProgram

    # ------------------------------------------------------------------
    # Generator knowledge for specialization
    # ------------------------------------------------------------------
    def bindings(self, config: PCtrlConfig) -> dict[str, list[int]]:
        """Memory contents for one configuration (Auto/Manual input).

        The microcode and dispatch images are configuration-independent
        (one image ships with the chip); only the CSR block differs.
        """
        csr = [0] * CSR_DEPTH
        csr[CSR_ROW_MODE] = 1 if config.mode is MemoryMode.CACHED else 0
        csr[CSR_ROW_LOOP] = config.loop_init
        csr[CSR_ROW_PIPES] = (1 << self.params.num_pipes) - 1
        return {
            "seq_ucode": self.image.instruction_words(),
            "seq_dispatch": self.image.dispatch_rows(),
            "csr": csr,
        }

    def annotations(
        self, config: PCtrlConfig, pinned_opcodes: bool
    ) -> list[StateAnnotation]:
        """State annotations derived from the microcode image.

        With ``pinned_opcodes`` the dispatch successors are limited to
        the opcodes the configuration can receive (the Manual flow);
        otherwise every request type is considered live.
        """
        opcodes = config.allowed_opcodes() if pinned_opcodes else None
        upc_values = self.image.reachable_addresses(opcodes=opcodes)
        annotations = [StateAnnotation("seq_upc", upc_values)]

        used = commands_used(self.image, opcodes=opcodes)
        words = command_words_for(
            uses_rd="word_rd" in used,
            uses_wr="word_wr" in used,
            uses_dir="dir_cmd" in used,
        )
        pipe_states = reachable_pipe_states(words)
        for index in range(self.params.num_pipes):
            annotations.append(
                StateAnnotation(f"pipe{index}_ctl_state", pipe_states)
            )

        # Offset counters: bounded by the longest stream burst the
        # configuration can trigger.  Uncached mode tops out at the
        # 4-beat block access, so the upper staging words are dead.
        run = max_stream_run(self.image, config, opcodes=opcodes)
        offset_span = 1 << self.params.offset_bits
        if run + 1 < offset_span:
            offset_values = tuple(range(run + 1))
            for index in range(self.params.num_pipes):
                annotations.append(
                    StateAnnotation(f"pipe{index}_offset", offset_values)
                )
        return annotations


def build_pctrl(params: PCtrlParams | None = None) -> PCtrlDesign:
    """Generate the flexible PCtrl."""
    params = params or PCtrlParams()
    fmt = pctrl_format(params)
    image = combined_program(params)

    b = ModuleBuilder("pctrl")
    req_valid = b.input("req_valid")
    req_op = b.input("req_op", params.opcode_bits)
    req_addr = b.input("req_addr", params.addr_bits)
    hit = b.input("hit")
    dirty = b.input("dirty")
    mem_din = b.input("mem_din", params.word_bits)

    # Configuration state: CSR block (flexible: a writable table).
    csr = b.config_mem("csr", params.csr_width, CSR_DEPTH)
    loop_init = csr.read(Const(CSR_ROW_LOOP, 2))

    # ------------------------------------------------------------------
    # Request queue (mode-independent state the paper's PCtrl also had).
    # ------------------------------------------------------------------
    depth = params.queue_depth
    ptr_bits = (depth - 1).bit_length()
    head = b.reg("q_head", ptr_bits)
    tail = b.reg("q_tail", ptr_bits)
    count = b.reg("q_count", ptr_bits + 1)
    empty = count.eq(0)
    full = count.eq(depth)
    entry_ops = [b.reg(f"q{index}_op", params.opcode_bits) for index in range(depth)]
    entry_addrs = [
        b.reg(f"q{index}_addr", params.addr_bits) for index in range(depth)
    ]

    # ------------------------------------------------------------------
    # Dispatch unit: the flexible microcode sequencer.
    # ------------------------------------------------------------------
    cnt = b.reg("count", params.csr_width)
    more = cnt.ne(0)

    head_op = entry_ops[0]
    head_addr = entry_addrs[0]
    for index in range(1, depth):
        is_index = head.eq(index)
        head_op = mux(is_index, entry_ops[index], head_op)
        head_addr = mux(is_index, entry_addrs[index], head_addr)
    dispatch_op = mux(empty, Const(0, params.opcode_bits), head_op)

    seq_spec = SequencerSpec(
        "seq",
        fmt,
        addr_bits=params.ucode_addr_bits,
        cond_bits=2,
        num_conditions=len(CONDITIONS),
        opcode_bits=params.opcode_bits,
        flexible=True,
        expose_seq_op=True,
    )
    seq_child = generate_sequencer(seq_spec).module
    conditions = cat(~empty, more, hit, dirty)
    seq_outs = inline(
        b, seq_child, "seq", {"cond": conditions, "op": dispatch_op}
    )
    cmd = seq_outs["ctl_cmd"]
    pipe_sel = seq_outs["ctl_pipe"]
    cnt_ctl = seq_outs["ctl_cnt"]
    dispatching = seq_outs["seq_op_out"].eq(int(SeqOp.DISPATCH))

    # Queue pointer updates.
    push = req_valid & ~full
    pop = dispatching & ~empty
    # The in-flight request's address, captured when it dispatches (the
    # head pointer moves on immediately).
    cur_addr = b.reg("cur_addr", params.addr_bits)
    b.drive(cur_addr, mux(pop[0], head_addr, cur_addr))
    b.drive(head, mux(pop[0], head + 1, head))
    b.drive(tail, mux(push[0], tail + 1, tail))
    delta_up = mux(push[0], count + 1, count)
    b.drive(count, mux(pop[0], delta_up - 1, delta_up))
    for index in range(depth):
        write = push & tail.eq(index)
        b.drive(entry_ops[index], mux(write[0], req_op, entry_ops[index]))
        b.drive(entry_addrs[index], mux(write[0], req_addr, entry_addrs[index]))

    # Loop counter: commanded by the microcode 'cnt' field.
    b.drive(
        cnt,
        mux(
            cnt_ctl[0],
            loop_init,
            mux(cnt_ctl[1] & more, cnt - 1, cnt),
        ),
    )

    # Command decode shared by the pipes (one-hot cmd field).
    cmd_field = fmt.field("cmd")
    is_rd = cmd[_bit(cmd_field, "word_rd")]
    is_wr = cmd[_bit(cmd_field, "word_wr")]
    is_dir = cmd[_bit(cmd_field, "dir_cmd")]
    is_ack = cmd[_bit(cmd_field, "ack")]
    is_nack = cmd[_bit(cmd_field, "nack")]

    # Four data pipes.
    pipe = build_datapipe(params)
    busies: list[Expr] = []
    for index in range(params.num_pipes):
        outs = inline(
            b,
            pipe.module,
            f"pipe{index}",
            {
                "sel": pipe_sel[index],
                "cmd_rd": is_rd,
                "cmd_wr": is_wr,
                "cmd_dir": is_dir,
                "din": mem_din,
                "addr_in": cur_addr,
            },
        )
        busies.append(outs["busy"])
        b.output(f"pipe{index}_re", outs["mem_re"])
        b.output(f"pipe{index}_we", outs["mem_we"])
        b.output(f"pipe{index}_dir", outs["dir_op"])
        b.output(f"pipe{index}_addr", outs["mem_addr"])
        b.output(f"pipe{index}_dout", outs["dout"])

    any_busy = busies[0]
    for busy in busies[1:]:
        any_busy = any_busy | busy
    b.output("busy", any_busy)
    b.output("queue_full", full)
    b.output("ack", is_ack)
    b.output("nack", is_nack)

    return PCtrlDesign(
        params=params,
        format=fmt,
        flexible=b.build(),
        image=image,
    )


def _bit(field, symbol: str) -> int:
    """Bit index of a one-hot field symbol."""
    value = field.values[symbol]
    return value.bit_length() - 1
