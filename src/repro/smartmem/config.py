"""PCtrl configuration space: modes, requests, structural parameters."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MemoryMode(enum.Enum):
    """The two memory-system configurations Fig. 9 compares."""

    CACHED = "cached"
    UNCACHED = "uncached"


class RequestOp(enum.IntEnum):
    """Request opcodes arriving at the PCtrl dispatch table.

    Opcode 0 is reserved for "no request" (the idle dispatch target).
    Cached-mode protocol operations occupy 1..8; uncached accesses are
    9..10.  The 4-bit opcode space leaves 11..15 unused, which the
    dispatch table routes to the error handler.
    """

    NOP = 0
    READ_SHARED = 1
    READ_EXCL = 2
    UPGRADE = 3
    WRITEBACK = 4
    INVALIDATE = 5
    INTERVENTION = 6
    FILL = 7
    SYNC = 8
    UNC_READ = 9
    UNC_WRITE = 10
    UNC_BLOCK = 11


CACHED_OPS = (
    RequestOp.READ_SHARED,
    RequestOp.READ_EXCL,
    RequestOp.UPGRADE,
    RequestOp.WRITEBACK,
    RequestOp.INVALIDATE,
    RequestOp.INTERVENTION,
    RequestOp.FILL,
    RequestOp.SYNC,
)

UNCACHED_OPS = (RequestOp.UNC_READ, RequestOp.UNC_WRITE, RequestOp.UNC_BLOCK)


@dataclass(frozen=True)
class PCtrlParams:
    """Structural (mode-independent) parameters of the generator."""

    num_pipes: int = 4
    word_bits: int = 32
    max_line_words: int = 8
    ucode_addr_bits: int = 6
    opcode_bits: int = 4
    csr_width: int = 8
    addr_bits: int = 16
    queue_depth: int = 4

    def __post_init__(self) -> None:
        if self.num_pipes < 1:
            raise ValueError("need at least one data pipe")
        if self.max_line_words & (self.max_line_words - 1):
            raise ValueError("max_line_words must be a power of two")
        if self.queue_depth < 2 or self.queue_depth & (self.queue_depth - 1):
            raise ValueError("queue_depth must be a power of two >= 2")

    @property
    def offset_bits(self) -> int:
        """Word-offset counter width (covers a full line)."""
        return max(1, (self.max_line_words - 1).bit_length())


@dataclass(frozen=True)
class PCtrlConfig:
    """One pre-silicon configuration (what specialization binds)."""

    mode: MemoryMode
    line_words: int = 8
    access_width: int = 1  # words per beat: 1 = single, 2 = double

    def __post_init__(self) -> None:
        if self.line_words < 1:
            raise ValueError("line_words must be positive")
        if self.access_width not in (1, 2):
            raise ValueError("access width is single (1) or double (2)")

    @property
    def beats_per_line(self) -> int:
        return max(1, self.line_words // self.access_width)

    @property
    def loop_init(self) -> int:
        """Counter preload: beats minus one (the microcode loop bound)."""
        return self.beats_per_line - 1

    def allowed_opcodes(self) -> tuple[int, ...]:
        """Request opcodes this configuration can receive."""
        if self.mode is MemoryMode.CACHED:
            ops = (RequestOp.NOP,) + CACHED_OPS
        else:
            ops = (RequestOp.NOP,) + UNCACHED_OPS
        return tuple(int(op) for op in ops)


#: Cached mode streams whole 8-word lines, so the pipes' offset
#: counters sweep their full range; uncached mode's longest transfer
#: is the 6-beat block access (UNC_BLOCK, three double-word bus
#: transactions), so the top of every staging buffer is unreachable --
#: the food for the Manual flow.
CACHED_CONFIG = PCtrlConfig(MemoryMode.CACHED, line_words=8, access_width=1)
UNCACHED_CONFIG = PCtrlConfig(MemoryMode.UNCACHED, line_words=6, access_width=1)
