"""Data pipes: the per-tile transfer engines the Dispatch unit drives.

Each pipe owns a control FSM (case-style RTL, like the hand-written
blocks of the real chip), a word-offset counter, and a line staging
buffer.  The FSM is kept as an explicit :class:`FsmSpec` so the
generator can reason about it -- in particular, compute which control
states a given *command subset* can reach, which is exactly the
knowledge behind the paper's "Manual" unreachable-state elimination
(uncached configurations never issue directory commands, so the
directory states of every pipe are dead).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controllers.fsm import FsmSpec
from repro.controllers.fsm_rtl import fsm_to_case_rtl
from repro.rtl.ast import Const
from repro.rtl.builder import ModuleBuilder, mux
from repro.rtl.module import Module
from repro.smartmem.config import PCtrlParams

# Pipe FSM states.
IDLE = 0
STREAM_RD = 1
STREAM_WR = 2
DIR_LOOKUP = 3
DIR_UPDATE = 4
ACK = 5

STATE_NAMES = {
    IDLE: "IDLE",
    STREAM_RD: "STREAM_RD",
    STREAM_WR: "STREAM_WR",
    DIR_LOOKUP: "DIR_LOOKUP",
    DIR_UPDATE: "DIR_UPDATE",
    ACK: "ACK",
}

# Pipe FSM input bits (the command interface from the Dispatch unit).
IN_SEL = 0  # this pipe is addressed
IN_RD = 1  # word-read command
IN_WR = 2  # word-write command
IN_DIR = 3  # directory command
NUM_INPUTS = 4

# Pipe FSM output bits.
OUT_BUSY = 0
OUT_MEM_RE = 1
OUT_MEM_WE = 2
OUT_CNT_EN = 3
OUT_DIR_OP = 4
OUT_LOAD = 5  # Mealy: latch the request address on launch
NUM_OUTPUTS = 6


def pipe_fsm_spec() -> FsmSpec:
    """The pipe control FSM as an explicit table."""
    combos = 1 << NUM_INPUTS
    next_state = [[0] * combos for _ in range(6)]
    output = [[0] * combos for _ in range(6)]

    def bits(word: int) -> tuple[bool, bool, bool, bool]:
        return (
            bool(word >> IN_SEL & 1),
            bool(word >> IN_RD & 1),
            bool(word >> IN_WR & 1),
            bool(word >> IN_DIR & 1),
        )

    for word in range(combos):
        sel, rd, wr, dr = bits(word)
        addressed = sel
        # IDLE: launch on a command addressed to this pipe.
        if addressed and rd:
            next_state[IDLE][word] = STREAM_RD
        elif addressed and wr:
            next_state[IDLE][word] = STREAM_WR
        elif addressed and dr:
            next_state[IDLE][word] = DIR_LOOKUP
        else:
            next_state[IDLE][word] = IDLE
        # STREAM_RD: keep streaming while read beats keep arriving.
        next_state[STREAM_RD][word] = STREAM_RD if (addressed and rd) else ACK
        next_state[STREAM_WR][word] = STREAM_WR if (addressed and wr) else ACK
        next_state[DIR_LOOKUP][word] = DIR_UPDATE
        next_state[DIR_UPDATE][word] = ACK
        next_state[ACK][word] = IDLE

        for state in range(6):
            out = 0
            if state != IDLE:
                out |= 1 << OUT_BUSY
            if state == STREAM_RD:
                out |= (1 << OUT_MEM_RE) | (1 << OUT_CNT_EN)
            if state == STREAM_WR:
                out |= (1 << OUT_MEM_WE) | (1 << OUT_CNT_EN)
            if state in (DIR_LOOKUP, DIR_UPDATE):
                out |= 1 << OUT_DIR_OP
            if state == IDLE and addressed and (rd or wr or dr):
                out |= 1 << OUT_LOAD
            output[state][word] = out

    return FsmSpec(
        "pipe_ctl",
        num_inputs=NUM_INPUTS,
        num_outputs=NUM_OUTPUTS,
        num_states=6,
        reset_state=IDLE,
        next_state=next_state,
        output=output,
    )


def reachable_pipe_states(command_words: list[int]) -> tuple[int, ...]:
    """Pipe states reachable when only these input words can occur.

    ``command_words`` are FSM input words (sel/rd/wr/dir bit packs);
    the caller derives them from the microprogram's command usage.
    """
    return pipe_fsm_spec().reachable_states(allowed_inputs=command_words)


def command_words_for(uses_rd: bool, uses_wr: bool, uses_dir: bool) -> list[int]:
    """All pipe input words a program restricted to these commands makes.

    Commands are one-hot per cycle (a microinstruction carries one
    command), and any cycle may leave the pipe unaddressed.
    """
    words = [0, 1 << IN_SEL]
    if uses_rd:
        words += [1 << IN_RD, (1 << IN_SEL) | (1 << IN_RD)]
    if uses_wr:
        words += [1 << IN_WR, (1 << IN_SEL) | (1 << IN_WR)]
    if uses_dir:
        words += [1 << IN_DIR, (1 << IN_SEL) | (1 << IN_DIR)]
    return words


@dataclass
class DataPipe:
    """Generator product: the pipe module plus its spec."""

    module: Module
    spec: FsmSpec


def build_datapipe(params: PCtrlParams) -> DataPipe:
    """One data pipe: control FSM + offset counter + staging buffer.

    Ports:
      inputs ``sel``, ``cmd_rd``, ``cmd_wr``, ``cmd_dir`` (from the
      Dispatch unit), ``din`` (memory-side data);
      outputs ``busy``, ``mem_re``, ``mem_we``, ``dir_op``, ``offset``,
      ``dout``.
    """
    spec = pipe_fsm_spec()
    fsm_module = fsm_to_case_rtl(spec, name="pipe_fsm")

    from repro.rtl.inline import inline

    b = ModuleBuilder("datapipe")
    sel = b.input("sel")
    cmd_rd = b.input("cmd_rd")
    cmd_wr = b.input("cmd_wr")
    cmd_dir = b.input("cmd_dir")
    din = b.input("din", params.word_bits)
    addr_in = b.input("addr_in", params.addr_bits)

    from repro.rtl.builder import cat

    fsm_in = cat(sel, cmd_rd, cmd_wr, cmd_dir)
    outs = inline(b, fsm_module, "ctl", {"in": fsm_in})
    ctl = outs["out"]
    busy = ctl[OUT_BUSY]
    mem_re = ctl[OUT_MEM_RE]
    mem_we = ctl[OUT_MEM_WE]
    cnt_en = ctl[OUT_CNT_EN]
    dir_op = ctl[OUT_DIR_OP]
    load = ctl[OUT_LOAD]

    # Request address: latched on launch, incremented per beat.  This
    # datapath is live in every configuration (uncached accesses still
    # carry addresses), so specialization cannot remove it.
    addr = b.reg("addr", params.addr_bits)
    b.drive(
        addr,
        mux(load[0], addr_in, mux(cnt_en[0], addr + 1, addr)),
    )
    b.output("mem_addr", addr)

    offset = b.reg("offset", params.offset_bits)
    b.drive(
        offset,
        mux(
            cnt_en[0],
            offset + 1,
            mux(busy[0], offset, Const(0, params.offset_bits)),
        ),
    )

    # Line staging buffer: one register per line word, written while
    # streaming.  This is the pipe's non-configuration state.
    word_regs = []
    for index in range(params.max_line_words):
        word = b.reg(f"stage{index}", params.word_bits)
        write_this = cnt_en & offset.eq(index)
        b.drive(word, mux(write_this[0], din, word))
        word_regs.append(word)

    # Read-back mux for the memory-side output.
    dout = word_regs[0]
    for index in range(1, params.max_line_words):
        dout = mux(offset.eq(index), word_regs[index], dout)

    b.output("busy", busy)
    b.output("mem_re", mem_re)
    b.output("mem_we", mem_we)
    b.output("dir_op", dir_op)
    b.output("offset", offset)
    b.output("dout", dout)
    return DataPipe(b.build(), spec)
