"""Microprograms for the PCtrl: cached coherence and uncached access.

These are the "tables of bits" the generator emits per configuration.
The cached program implements line-grain coherence operations (bus
acquisition, directory lookup/update, line streaming loops); the
uncached program only needs single-beat reads and writes.  The large
size difference -- and the cached program's use of directory commands
the uncached one never issues -- is what makes the paper's Manual
optimization matter only for uncached mode.
"""

from __future__ import annotations

from repro.controllers.assembler import AssembledProgram, Program
from repro.controllers.dispatch import DispatchTable
from repro.controllers.microcode import MicrocodeFormat, SeqOp
from repro.smartmem.config import (
    CACHED_OPS,
    MemoryMode,
    PCtrlConfig,
    PCtrlParams,
    RequestOp,
    UNCACHED_OPS,
)

#: Conditions wired into the sequencer, in cond_sel order.  ``more``
#: is "beats remain in the line loop" (counter non-zero).
CONDITIONS = ["req", "more", "hit", "dirty"]

#: Commands the Dispatch unit can issue (horizontal/one-hot field).
COMMANDS = ["word_rd", "word_wr", "dir_cmd", "bus_req", "ack", "nack"]

#: Counter-control field symbols.
COUNTER_OPS = ["load", "dec"]


def pctrl_format(params: PCtrlParams) -> MicrocodeFormat:
    """The Dispatch unit's control word format (horizontal)."""
    if params.num_pipes < 4:
        raise ValueError(
            "the PCtrl microprograms address pipes p0..p3; "
            "num_pipes must be at least 4"
        )
    pipes = [f"p{i}" for i in range(params.num_pipes)]
    return MicrocodeFormat.horizontal(
        ("cmd", COMMANDS),
        ("pipe", pipes),
        ("cnt", COUNTER_OPS),
    )


def build_dispatch_table(params: PCtrlParams) -> DispatchTable:
    """Opcode routing shared by both programs (labels resolve per mode)."""
    table = DispatchTable("dispatch", params.opcode_bits, default="bad_op")
    table.set(int(RequestOp.NOP), "idle")
    for op in CACHED_OPS:
        table.set(int(op), f"op_{op.name.lower()}")
    for op in UNCACHED_OPS:
        table.set(int(op), f"op_{op.name.lower()}")
    return table


def _line_loop(prog: Program, command: str, pipe: str, loop_label: str) -> None:
    """Stream one line: one beat per cycle while the counter says more."""
    prog.inst(cnt="load")
    prog.label(loop_label)
    prog.inst(
        cmd=command,
        pipe=pipe,
        cnt="dec",
        seq=SeqOp.BRANCH,
        target=loop_label,
        condition="more",
    )


def cached_program(params: PCtrlParams, config: PCtrlConfig) -> AssembledProgram:
    """The coherence microprogram (every request type, line loops)."""
    fmt = pctrl_format(params)
    table = build_dispatch_table(params)
    prog = Program(fmt, conditions=CONDITIONS)

    prog.label("idle")
    prog.inst(seq=SeqOp.DISPATCH)
    _cached_routines(prog)

    # Uncached requests arriving in cached mode are protocol errors.
    for op in UNCACHED_OPS:
        prog.label(f"op_{op.name.lower()}")
    prog.label("bad_op")
    prog.inst(cmd="nack", seq=SeqOp.JUMP, target="idle")

    return prog.assemble(
        addr_bits=params.ucode_addr_bits, cond_bits=2, dispatch=table
    )


def _cached_routines(prog: Program) -> None:
    """The coherence routines shared by cached and combined images."""
    # READ_SHARED: bus, directory lookup, miss -> fill line from p0/p1.
    prog.label("op_read_shared")
    prog.inst(cmd="bus_req")
    prog.inst(cmd="dir_cmd", pipe="p0")
    prog.inst(seq=SeqOp.BRANCH, target="rs_hit", condition="hit")
    _line_loop(prog, "word_rd", "p0", "rs_fill")
    prog.inst(cmd="dir_cmd", pipe="p1")
    prog.label("rs_hit")
    prog.inst(cmd="ack", seq=SeqOp.JUMP, target="idle")

    # READ_EXCL: like READ_SHARED plus invalidations on other tiles.
    prog.label("op_read_excl")
    prog.inst(cmd="bus_req")
    prog.inst(cmd="dir_cmd", pipe="p0")
    prog.inst(seq=SeqOp.BRANCH, target="re_hit", condition="hit")
    _line_loop(prog, "word_rd", "p1", "re_fill")
    prog.label("re_hit")
    prog.inst(cmd="dir_cmd", pipe="p2")
    prog.inst(cmd="dir_cmd", pipe="p3")
    prog.inst(cmd="ack", seq=SeqOp.JUMP, target="idle")

    # UPGRADE: directory-only unless another tile holds dirty data.
    prog.label("op_upgrade")
    prog.inst(cmd="dir_cmd", pipe="p0")
    prog.inst(seq=SeqOp.BRANCH, target="up_clean", condition="dirty")
    _line_loop(prog, "word_rd", "p2", "up_pull")
    prog.label("up_clean")
    prog.inst(cmd="ack", seq=SeqOp.JUMP, target="idle")

    # WRITEBACK: push a dirty line out through p2.
    prog.label("op_writeback")
    prog.inst(cmd="bus_req")
    _line_loop(prog, "word_wr", "p2", "wb_push")
    prog.inst(cmd="dir_cmd", pipe="p0")
    prog.inst(cmd="ack", seq=SeqOp.JUMP, target="idle")

    # INVALIDATE: directory walk on every tile.
    prog.label("op_invalidate")
    for pipe in ("p0", "p1", "p2", "p3"):
        prog.inst(cmd="dir_cmd", pipe=pipe)
    prog.inst(cmd="ack", seq=SeqOp.JUMP, target="idle")

    # INTERVENTION: probe, then forward the line if dirty.
    prog.label("op_intervention")
    prog.inst(cmd="dir_cmd", pipe="p3")
    prog.inst(seq=SeqOp.BRANCH, target="iv_done", condition="dirty")
    _line_loop(prog, "word_wr", "p3", "iv_fwd")
    prog.label("iv_done")
    prog.inst(cmd="ack", seq=SeqOp.JUMP, target="idle")

    # FILL: refill grant arrived; stream into p1.
    prog.label("op_fill")
    _line_loop(prog, "word_rd", "p1", "fl_fill")
    prog.inst(cmd="dir_cmd", pipe="p1")
    prog.inst(cmd="ack", seq=SeqOp.JUMP, target="idle")

    # SYNC: drain all pipes, then acknowledge.
    prog.label("op_sync")
    prog.inst(cmd="bus_req")
    prog.inst()
    prog.inst(cmd="ack", seq=SeqOp.JUMP, target="idle")


def combined_program(params: PCtrlParams) -> AssembledProgram:
    """The single microcode image the chip ships with.

    Contains every routine (coherence *and* uncached); the
    configuration chooses which requests can arrive, not which code is
    loaded.  This is the image Fig. 9's Auto designs bind -- and the
    reason mode-pinned reachability ("Manual") has real work to do in
    uncached mode: most of the image is coherence routines the mode
    can never execute.
    """
    fmt = pctrl_format(params)
    table = build_dispatch_table(params)
    prog = Program(fmt, conditions=CONDITIONS)

    prog.label("idle")
    prog.inst(seq=SeqOp.DISPATCH)
    _cached_routines(prog)
    _uncached_routines(prog)
    prog.label("bad_op")
    prog.inst(cmd="nack", seq=SeqOp.JUMP, target="idle")
    return prog.assemble(
        addr_bits=params.ucode_addr_bits, cond_bits=2, dispatch=table
    )


def uncached_program(params: PCtrlParams, config: PCtrlConfig) -> AssembledProgram:
    """The uncached microprogram: single-beat accesses, no directory."""
    fmt = pctrl_format(params)
    table = build_dispatch_table(params)
    prog = Program(fmt, conditions=CONDITIONS)

    prog.label("idle")
    prog.inst(seq=SeqOp.DISPATCH)

    _uncached_routines(prog)

    # Cached entry points all land on the error handler in this mode.
    for op in CACHED_OPS:
        prog.label(f"op_{op.name.lower()}")
    prog.label("bad_op")
    prog.inst(cmd="nack", seq=SeqOp.JUMP, target="idle")

    return prog.assemble(
        addr_bits=params.ucode_addr_bits, cond_bits=2, dispatch=table
    )


def _uncached_routines(prog: Program) -> None:
    """Single-beat accesses plus the 4-beat uncached block transfer."""
    prog.label("op_unc_read")
    prog.inst(cmd="word_rd", pipe="p0")
    prog.inst(cmd="ack", seq=SeqOp.JUMP, target="idle")

    prog.label("op_unc_write")
    prog.inst(cmd="word_wr", pipe="p0")
    prog.inst(cmd="ack", seq=SeqOp.JUMP, target="idle")

    # Block transfer: loop bound comes from the CSR (the configuration
    # sets it to the uncached block size).
    prog.label("op_unc_block")
    _line_loop(prog, "word_rd", "p1", "ub_fill")
    prog.inst(cmd="ack", seq=SeqOp.JUMP, target="idle")


def program_for(params: PCtrlParams, config: PCtrlConfig) -> AssembledProgram:
    if config.mode is MemoryMode.CACHED:
        return cached_program(params, config)
    return uncached_program(params, config)


def max_stream_run(
    program: AssembledProgram,
    config: PCtrlConfig,
    opcodes=None,
) -> int:
    """Longest burst of consecutive stream beats a pipe can see.

    Loop-shaped stream instructions (a BRANCH back to themselves, the
    ``_line_loop`` idiom) can repeat up to the configured beat count;
    straight-line stream instructions contribute their run length.
    This is generator-side knowledge: it bounds the pipes' offset
    counters, which is what lets mode pinning prune staging storage.
    """
    fmt = program.format
    cmd_field = fmt.field("cmd")
    stream_mask = cmd_field.values["word_rd"] | cmd_field.values["word_wr"]
    reachable = set(program.reachable_addresses(opcodes=opcodes))

    def is_stream(addr: int) -> bool:
        bits = fmt.unpack(program.control_words[addr])["cmd"]
        return bool(bits & stream_mask)

    best = 0
    run = 0
    for addr in range(program.length):
        if addr in reachable and is_stream(addr):
            seq_op, _, target = program.seq_words[addr]
            if seq_op == SeqOp.BRANCH and target == addr:
                best = max(best, config.beats_per_line)
                run = 0
                continue
            run += 1
            best = max(best, run)
        else:
            run = 0
    return best


def commands_used(program: AssembledProgram, opcodes=None) -> set[str]:
    """Which command symbols a program can issue (generator analysis).

    Only addresses reachable from the dispatch surface are considered,
    so dead routines do not pollute the result; ``opcodes`` pins the
    request codes a configuration can receive (the Manual analysis).
    """
    fmt = program.format
    cmd_field = fmt.field("cmd")
    used: set[str] = set()
    reachable = program.reachable_addresses(opcodes=opcodes)
    for addr in reachable:
        bits = fmt.unpack(program.control_words[addr])["cmd"]
        for symbol, value in cmd_field.values.items():
            if bits & value:
                used.add(symbol)
    return used
