"""Full / Auto / Manual synthesis flows for the PCtrl (Fig. 9).

* **Full**: the flexible design compiled as-is; configuration memories
  become real storage.
* **Auto**: the configuration is bound and synthesis partially
  evaluates the tables away.  No cross-flop knowledge is supplied --
  this is what the tool achieves alone.
* **Manual**: Auto plus the generator's state annotations, with
  dispatch reachability pinned to the opcodes the configuration can
  legally receive.  This performs, programmatically, the
  unreachable-state eliminations the paper's authors applied by hand.

All flows run the flow-API pipeline the facade builds from their
options (``default_pipeline(fig9_options())`` for the defaults): the
paper's 5 ns clock and no re-encoding (the annotations assert value
sets without changing codes, matching how the hand-tuned netlists
kept their encodings).
"""

from __future__ import annotations

from repro.pe.specialize import prepare_auto, prepare_manual
from repro.rtl.module import Module
from repro.smartmem.config import PCtrlConfig
from repro.smartmem.pctrl import PCtrlDesign
from repro.synth.compiler import CompileResult, DesignCompiler
from repro.synth.dc_options import CompileOptions


def fig9_options(clock_period_ns: float = 5.0) -> CompileOptions:
    """The compile options shared by the Fig. 9 flows."""
    return CompileOptions(
        clock_period_ns=clock_period_ns,
        fsm_encoding="same",
    )


# -- flow definitions (the single source of truth) ---------------------
#
# Each *_inputs helper returns the (module, options) pair its flow
# synthesizes.  The compile_* wrappers and the fig9 driver's
# compile_many jobs are both built on these, so the flow definitions
# exist exactly once.

def full_inputs(
    design: PCtrlDesign, options: CompileOptions | None = None
) -> tuple[Module, CompileOptions]:
    """Full: the flexible design as-is (storage and all)."""
    return design.flexible, options or fig9_options()


def auto_inputs(
    design: PCtrlDesign,
    config: PCtrlConfig,
    options: CompileOptions | None = None,
) -> tuple[Module, CompileOptions]:
    """Auto: one configuration bound, no cross-flop knowledge."""
    return prepare_auto(
        design.flexible,
        design.bindings(config),
        options=options or fig9_options(),
        annotate=False,
    )


def manual_inputs(
    design: PCtrlDesign,
    config: PCtrlConfig,
    options: CompileOptions | None = None,
) -> tuple[Module, CompileOptions]:
    """Manual: Auto plus generator-derived, config-pinned annotations."""
    return prepare_manual(
        design.flexible,
        design.bindings(config),
        pinned={},
        extra_annotations=design.annotations(config, pinned_opcodes=True),
        options=options or fig9_options(),
        annotation_regs=[],
    )


# -- job-level definitions (the frontend-as-passes route) --------------
#
# Each *_job helper returns (module, bindings, annotations, options):
# the *flexible* module plus the configuration data a ``pe_bind``-led
# pipeline binds in-flow.  This is what the fig9 driver's
# ``compile_many`` jobs are built on -- the binding itself is a pass,
# so it is fingerprinted and cached with the rest of the flow.

def full_job(
    design: PCtrlDesign, options: CompileOptions | None = None
) -> tuple[Module, None, tuple, CompileOptions]:
    """Full: the flexible design as-is; nothing to bind."""
    return design.flexible, None, (), options or fig9_options()


def auto_job(
    design: PCtrlDesign,
    config: PCtrlConfig,
    options: CompileOptions | None = None,
) -> tuple[Module, dict, tuple, CompileOptions]:
    """Auto: one configuration's bindings, no cross-flop knowledge."""
    return design.flexible, design.bindings(config), (), options or fig9_options()


def manual_job(
    design: PCtrlDesign,
    config: PCtrlConfig,
    options: CompileOptions | None = None,
) -> tuple[Module, dict, tuple, CompileOptions]:
    """Manual: Auto plus generator-derived, opcode-pinned annotations."""
    return (
        design.flexible,
        design.bindings(config),
        tuple(design.annotations(config, pinned_opcodes=True)),
        options or fig9_options(),
    )


# -- one-call synthesis wrappers ---------------------------------------

def compile_full(
    design: PCtrlDesign,
    compiler: DesignCompiler | None = None,
    options: CompileOptions | None = None,
) -> CompileResult:
    """Synthesize the flexible design (storage and all)."""
    compiler = compiler or DesignCompiler()
    module, run_options = full_inputs(design, options)
    return compiler.compile(module, run_options)


def compile_auto(
    design: PCtrlDesign,
    config: PCtrlConfig,
    compiler: DesignCompiler | None = None,
    options: CompileOptions | None = None,
) -> CompileResult:
    """Bind one configuration and let partial evaluation do the rest."""
    compiler = compiler or DesignCompiler()
    module, run_options = auto_inputs(design, config, options)
    return compiler.compile(module, run_options)


def compile_manual(
    design: PCtrlDesign,
    config: PCtrlConfig,
    compiler: DesignCompiler | None = None,
    options: CompileOptions | None = None,
) -> CompileResult:
    """Auto plus generator-derived, configuration-pinned annotations."""
    compiler = compiler or DesignCompiler()
    module, run_options = manual_inputs(design, config, options)
    return compiler.compile(module, run_options)
