"""Full / Auto / Manual synthesis flows for the PCtrl (Fig. 9).

* **Full**: the flexible design compiled as-is; configuration memories
  become real storage.
* **Auto**: the configuration is bound and synthesis partially
  evaluates the tables away.  No cross-flop knowledge is supplied --
  this is what the tool achieves alone.
* **Manual**: Auto plus the generator's state annotations, with
  dispatch reachability pinned to the opcodes the configuration can
  legally receive.  This performs, programmatically, the
  unreachable-state eliminations the paper's authors applied by hand.

All flows run the flow-API pipeline the facade builds from their
options (``default_pipeline(fig9_options())`` for the defaults): the
paper's 5 ns clock and no re-encoding (the annotations assert value
sets without changing codes, matching how the hand-tuned netlists
kept their encodings).
"""

from __future__ import annotations

from repro.pe.specialize import specialize, specialize_manual
from repro.smartmem.config import PCtrlConfig
from repro.smartmem.pctrl import PCtrlDesign
from repro.synth.compiler import CompileResult, DesignCompiler
from repro.synth.dc_options import CompileOptions


def fig9_options(clock_period_ns: float = 5.0) -> CompileOptions:
    """The compile options shared by the Fig. 9 flows."""
    return CompileOptions(
        clock_period_ns=clock_period_ns,
        fsm_encoding="same",
    )


def compile_full(
    design: PCtrlDesign,
    compiler: DesignCompiler | None = None,
    options: CompileOptions | None = None,
) -> CompileResult:
    """Synthesize the flexible design (storage and all)."""
    compiler = compiler or DesignCompiler()
    return compiler.compile(design.flexible, options or fig9_options())


def compile_auto(
    design: PCtrlDesign,
    config: PCtrlConfig,
    compiler: DesignCompiler | None = None,
    options: CompileOptions | None = None,
) -> CompileResult:
    """Bind one configuration and let partial evaluation do the rest."""
    compiler = compiler or DesignCompiler()
    return specialize(
        design.flexible,
        design.bindings(config),
        compiler=compiler,
        options=options or fig9_options(),
        annotate=False,
    )


def compile_manual(
    design: PCtrlDesign,
    config: PCtrlConfig,
    compiler: DesignCompiler | None = None,
    options: CompileOptions | None = None,
) -> CompileResult:
    """Auto plus generator-derived, configuration-pinned annotations."""
    compiler = compiler or DesignCompiler()
    return specialize_manual(
        design.flexible,
        design.bindings(config),
        pinned={},
        extra_annotations=design.annotations(config, pinned_opcodes=True),
        compiler=compiler,
        options=options or fig9_options(),
        annotation_regs=[],
    )
