"""A Smart Memories-style protocol controller (PCtrl) model.

The paper's Section II-C / III-C case study: a table-driven protocol
controller shared by four processor tiles, moving cache lines through
four data pipes under microcode control.  The real chip cannot be
redistributed, so this package implements a scaled structural model
with the properties Fig. 9 depends on:

* a microcoded Dispatch unit (sequencer + dispatch table + microcode
  memory) whose configuration storage dominates the flexible design;
* four data pipes with their own control FSMs and line staging
  buffers (substantial *non-configuration* state, so specialization
  halves rather than eliminates sequential area);
* cached-coherence and uncached microprograms of very different
  sizes, so reachable-state pruning matters only for uncached mode.

Entry points: :func:`~repro.smartmem.pctrl.build_pctrl` (the flexible
design + generator knowledge) and the Full/Auto/Manual compile flows
in :mod:`repro.smartmem.flows`.
"""

from repro.smartmem.config import MemoryMode, PCtrlConfig, PCtrlParams, RequestOp
from repro.smartmem.flows import compile_auto, compile_full, compile_manual
from repro.smartmem.pctrl import PCtrlDesign, build_pctrl

__all__ = [
    "MemoryMode",
    "PCtrlConfig",
    "PCtrlDesign",
    "PCtrlParams",
    "RequestOp",
    "build_pctrl",
    "compile_auto",
    "compile_full",
    "compile_manual",
]
