"""Reachable-state analysis for single registers.

Computes the set of values a register can take, starting from its
reset value, by exhaustively applying its next-state function over all
relevant input combinations.  This is the analysis a chip generator
runs over its own tables to produce state annotations ("it is fairly
straightforward to automatically determine these state annotations
from the FSM tables"), and -- with inputs pinned to a configuration --
the unreachable-state identification behind the paper's "Manual"
optimizations.

The analysis is exact and therefore restricted: the register's
next-state expression may depend only on the register itself and on
module inputs (optionally pinned).  Wider dependencies raise, so a
caller can fall back to the trivial full set instead of silently
producing an unsound annotation.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.rtl.ast import Expr, InputRef, MemRead, RegRef
from repro.rtl.module import Module
from repro.sim.rtlsim import Simulator

_MAX_FREE_INPUT_BITS = 14


@dataclass(frozen=True)
class SupportReport:
    """Input/register dependencies of an expression."""

    inputs: tuple[str, ...]
    regs: tuple[str, ...]
    memories: tuple[str, ...]


def expression_support(expr: Expr) -> SupportReport:
    """Names of the inputs, registers and memories an expression reads."""
    inputs: set[str] = set()
    regs: set[str] = set()
    memories: set[str] = set()
    stack = [expr]
    seen: set[int] = set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, InputRef):
            inputs.add(node.name)
        elif isinstance(node, RegRef):
            regs.add(node.name)
        elif isinstance(node, MemRead):
            memories.add(node.mem_name)
        stack.extend(node.children())
    return SupportReport(
        tuple(sorted(inputs)), tuple(sorted(regs)), tuple(sorted(memories))
    )


def reachable_states(
    module: Module,
    reg_name: str,
    pinned: dict[str, int] | None = None,
) -> tuple[int, ...]:
    """The register's reachable value set from reset, sorted ascending.

    Args:
        module: the design.
        reg_name: register to analyse.
        pinned: inputs held at fixed values (a mode configuration);
            remaining inputs are enumerated exhaustively.

    Raises:
        ValueError: when the next-state function depends on other
            registers, on a *writable* memory, or on too many free
            input bits for exhaustive enumeration.
    """
    pinned = dict(pinned or {})
    reg = module.regs.get(reg_name)
    if reg is None:
        raise ValueError(f"unknown register {reg_name!r}")
    assert reg.next is not None
    support = expression_support(reg.next)
    extra_regs = [name for name in support.regs if name != reg_name]
    if extra_regs:
        raise ValueError(
            f"next-state of {reg_name!r} depends on other registers: "
            f"{extra_regs}; exact reachability is not available"
        )
    for mem_name in support.memories:
        if module.memories[mem_name].writable:
            raise ValueError(
                f"next-state of {reg_name!r} reads writable memory "
                f"{mem_name!r}; its contents are not statically known"
            )

    free_inputs = [
        module.inputs[name]
        for name in support.inputs
        if name not in pinned
    ]
    free_bits = sum(port.width for port in free_inputs)
    if free_bits > _MAX_FREE_INPUT_BITS:
        raise ValueError(
            f"{free_bits} free input bits exceed the exhaustive "
            f"enumeration limit ({_MAX_FREE_INPUT_BITS})"
        )

    simulator = Simulator(module)
    input_spaces = [range(1 << port.width) for port in free_inputs]
    reached = {reg.reset_value}
    frontier = [reg.reset_value]
    while frontier:
        state = frontier.pop()
        for combo in product(*input_spaces):
            inputs = dict(pinned)
            for port, value in zip(free_inputs, combo):
                inputs[port.name] = value
            for name, port in module.inputs.items():
                inputs.setdefault(name, 0)
            simulator.reg_values[reg_name] = state
            nxt = simulator._eval(reg.next, inputs, {})
            if nxt not in reached:
                reached.add(nxt)
                frontier.append(nxt)
    return tuple(sorted(reached))
