"""FSM state re-encoding (the ``set_fsm_encoding`` analogue).

Given a register and its reachable state set, rewrite the module so
the register holds re-encoded state codes:

* ``binary``: dense codes 0..k-1 in the minimum width;
* ``onehot``: one bit per state;
* ``gray``: dense width with a Gray-code sequence;
* ``same``: no structural change (annotation only).

The rewrite is a pure RTL-to-RTL transform: every read of the old
register is replaced by a decode table (new code -> old code) and the
next-state expression is wrapped in an encode table (old code -> new
code).  Both tables are ``Case`` expressions whose defaults are
unreachable; the state-folding pass collapses them once the matching
annotation is attached.  After elaboration and folding the decode and
encode layers fuse with the surrounding logic -- this is why annotated
table-based FSMs in the paper synthesize "nearly identical" to the
case-statement versions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtl.ast import (
    BinOp,
    Case,
    Concat,
    Const,
    Expr,
    InputRef,
    MemRead,
    Mux,
    Not,
    ReduceOp,
    RegRef,
    Slice,
)
from repro.rtl.module import Memory, Module, Reg
from repro.synth.dc_options import StateAnnotation


@dataclass(frozen=True)
class Encoding:
    """A state code assignment."""

    style: str
    old_width: int
    new_width: int
    old_to_new: dict[int, int]

    @property
    def new_codes(self) -> tuple[int, ...]:
        return tuple(sorted(self.old_to_new.values()))


def make_encoding(states: tuple[int, ...], style: str, old_width: int) -> Encoding:
    """Choose codes for the given reachable states."""
    ordered = tuple(sorted(states))
    count = len(ordered)
    if style == "same":
        return Encoding(style, old_width, old_width, {s: s for s in ordered})
    if style == "binary":
        width = max(1, (count - 1).bit_length())
        mapping = {state: index for index, state in enumerate(ordered)}
        return Encoding(style, old_width, width, mapping)
    if style == "onehot":
        mapping = {state: 1 << index for index, state in enumerate(ordered)}
        return Encoding(style, old_width, count, mapping)
    if style == "gray":
        width = max(1, (count - 1).bit_length())
        mapping = {
            state: index ^ (index >> 1) for index, state in enumerate(ordered)
        }
        return Encoding(style, old_width, width, mapping)
    raise ValueError(f"unknown encoding style {style!r}")


def reencode_register(
    module: Module,
    reg_name: str,
    states: tuple[int, ...],
    style: str,
) -> tuple[Module, StateAnnotation]:
    """Rewrite ``module`` with the register re-encoded.

    Returns the new module and the annotation describing the new
    register's value set (to be handed to the state-folding pass).
    The original module is not modified.
    """
    reg = module.regs.get(reg_name)
    if reg is None:
        raise ValueError(f"unknown register {reg_name!r}")
    if reg.reset_value not in states:
        raise ValueError(
            f"reset value {reg.reset_value} of {reg_name!r} missing from "
            f"the state set; the annotation would be unsound"
        )
    encoding = make_encoding(tuple(states), style, reg.width)
    annotation = StateAnnotation(reg_name, encoding.new_codes)
    if style == "same":
        return module, annotation

    new_ref = RegRef(reg_name, encoding.new_width)
    decode_arms = tuple(
        (new_code, Const(old_code, reg.width))
        for old_code, new_code in sorted(encoding.old_to_new.items(), key=lambda p: p[1])
    )
    # Default is unreachable; reuse the reset state's old code.
    decoded = Case(new_ref, decode_arms, Const(reg.reset_value, reg.width))

    cache: dict[int, Expr] = {}

    def rewrite(expr: Expr) -> Expr:
        cached = cache.get(id(expr))
        if cached is not None:
            return cached
        result = _rewrite_node(expr, reg_name, decoded, rewrite)
        cache[id(expr)] = result
        return result

    new_module = Module(module.name + f"_{style}")
    new_module.inputs = dict(module.inputs)
    new_module.memories = dict(module.memories)
    for name, other in module.regs.items():
        if name == reg_name:
            encode_arms = tuple(
                (old_code, Const(new_code, encoding.new_width))
                for old_code, new_code in sorted(encoding.old_to_new.items())
            )
            assert other.next is not None
            new_next = Case(
                rewrite(other.next),
                encode_arms,
                Const(encoding.old_to_new[reg.reset_value], encoding.new_width),
            )
            new_module.regs[name] = Reg(
                name,
                encoding.new_width,
                other.reset_kind,
                encoding.old_to_new[other.reset_value],
                new_next,
            )
        else:
            assert other.next is not None
            new_module.regs[name] = Reg(
                name,
                other.width,
                other.reset_kind,
                other.reset_value,
                rewrite(other.next),
            )
    for name, expr in module.outputs.items():
        new_module.outputs[name] = rewrite(expr)
    new_module.validate()
    return new_module, annotation


def _rewrite_node(expr: Expr, reg_name: str, replacement: Expr, rec) -> Expr:
    """Structural rewrite replacing reads of the target register."""
    if isinstance(expr, RegRef) and expr.name == reg_name:
        return replacement
    if isinstance(expr, (Const, InputRef, RegRef)):
        return expr
    if isinstance(expr, MemRead):
        return MemRead(expr.mem_name, rec(expr.addr), expr.width)
    if isinstance(expr, Not):
        return Not(rec(expr.operand))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, rec(expr.left), rec(expr.right))
    if isinstance(expr, ReduceOp):
        return ReduceOp(expr.op, rec(expr.operand))
    if isinstance(expr, Mux):
        return Mux(rec(expr.sel), rec(expr.if1), rec(expr.if0))
    if isinstance(expr, Slice):
        return Slice(rec(expr.operand), expr.lsb, expr.width)
    if isinstance(expr, Concat):
        return Concat(tuple(rec(part) for part in expr.parts))
    if isinstance(expr, Case):
        return Case(
            rec(expr.selector),
            tuple((label, rec(value)) for label, value in expr.arms),
            rec(expr.default),
        )
    raise TypeError(f"cannot rewrite {type(expr).__name__}")
