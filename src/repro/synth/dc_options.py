"""Compiler options, modelled on the Design Compiler controls the paper
exercises.

The paper's experiments toggle exactly three tool behaviours:

* ``set_fsm_state_vector`` / ``set_fsm_encoding`` -- here,
  :class:`StateAnnotation` entries plus :attr:`CompileOptions.fsm_encoding`;
* retiming (``compile_ultra -retime`` style) -- :attr:`CompileOptions.retime`;
* the implicit FSM inference for case-style RTL --
  :attr:`CompileOptions.infer_fsm`.

``MAX_STATE_VECTOR_BITS`` models the tool's documented state-vector
width limit: annotations on wider registers are ignored (with a
warning), which is the mechanism behind Fig. 8's "annotation works for
n <= 32" observation.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

MAX_STATE_VECTOR_BITS = 32

ENCODING_STYLES = ("binary", "onehot", "gray", "same")


@dataclass(frozen=True)
class StateAnnotation:
    """A value-set assertion on a register (the FSM state vector).

    Declares that, in steady state, register ``reg_name`` only ever
    holds values from ``values``.  The optimizer may treat all other
    codes as don't-care downstream of the register.
    """

    reg_name: str
    values: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("a state annotation needs at least one value")
        if len(set(self.values)) != len(self.values):
            raise ValueError("duplicate values in state annotation")


@dataclass
class CompileOptions:
    """Knobs of the synthesis run."""

    clock_period_ns: float = 5.0
    infer_fsm: bool = True
    fsm_encoding: str = "binary"
    retime: bool = False
    fold_sync_reset: bool = False
    state_annotations: list[StateAnnotation] = field(default_factory=list)
    use_state_folding: bool = True
    effort_rounds: int = 2
    sweep_support_limit: int | None = None

    def __post_init__(self) -> None:
        if self.fsm_encoding not in ENCODING_STYLES:
            raise ValueError(f"unknown fsm encoding {self.fsm_encoding!r}")
        if self.clock_period_ns <= 0:
            raise ValueError("clock period must be positive")
        if self.effort_rounds < 1:
            raise ValueError(
                f"effort_rounds must be >= 1, got {self.effort_rounds}"
            )
        if self.sweep_support_limit is not None and self.sweep_support_limit < 1:
            raise ValueError(
                f"sweep_support_limit must be None or >= 1, "
                f"got {self.sweep_support_limit}"
            )

    def effective_annotations(
        self, reg_widths: dict[str, int]
    ) -> list[StateAnnotation]:
        """Annotations the tool will actually honour (see the module
        function :func:`effective_annotations`)."""
        return effective_annotations(self.state_annotations, reg_widths)


def effective_annotations(
    annotations: list[StateAnnotation], reg_widths: dict[str, int]
) -> list[StateAnnotation]:
    """Annotations the tool will actually honour.

    Mirrors the commercial tool's state-vector width cap: wider
    annotations are dropped with a warning rather than an error, so
    a generator can annotate everything and let the tool use what
    it can -- exactly the situation the paper's Fig. 8 measures.
    """
    honoured = []
    for annotation in annotations:
        width = reg_widths.get(annotation.reg_name)
        if width is None:
            warnings.warn(
                f"state annotation on unknown register "
                f"{annotation.reg_name!r} ignored",
                stacklevel=2,
            )
            continue
        if width > MAX_STATE_VECTOR_BITS:
            warnings.warn(
                f"state annotation on {annotation.reg_name!r} ignored: "
                f"{width} bits exceeds the {MAX_STATE_VECTOR_BITS}-bit "
                f"state vector limit",
                stacklevel=2,
            )
            continue
        honoured.append(annotation)
    return honoured
