"""State propagation and folding across register boundaries.

This pass is the compiler-side half of the paper's central claim: when
a signal is known to take only ``k < 2**n`` values (a *state
annotation*), downstream logic can be simplified as if the remaining
codes were don't-cares.  The windowed combinational sweeping in
:mod:`repro.aig.rewrite` discovers such facts automatically *within*
combinational logic; what it cannot do -- faithfully to the commercial
tool the paper measured -- is look across a flop boundary.  This pass
restores that ability exactly where an annotation authorises it:

1. build a care predicate over the annotated latch outputs;
2. simulate with care-respecting random states to nominate nodes that
   look constant (or pairwise equivalent) on the care set;
3. prove each nomination with SAT under the care assumption;
4. rebuild the graph with the proven substitutions.

The same machinery implements unreachable-state elimination ("the
optimizations [the authors'] manual tuning performed"): a reachability
analysis supplies a tighter value set and this pass collapses the
logic that only existed to serve unreachable states.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.aig.graph import AIG, lit_compl, lit_node
from repro.sat.cnf import CnfBuilder
from repro.sat.equiv import prove_lit_constant, prove_lits_equal
from repro.synth.statesets import ValueSet, care_literal

_SIM_PATTERNS = 128
_MAX_SAT_CANDIDATES = 2500


@dataclass
class FoldStats:
    """What the pass accomplished (for reports and tests)."""

    constants_proven: int = 0
    merges_proven: int = 0
    candidates_tried: int = 0
    rounds: int = 0
    per_round: list[tuple[int, int]] = field(default_factory=list)


def fold_states(
    aig: AIG,
    annotated_buses: dict[str, tuple[list[int], ValueSet]],
    rounds: int = 2,
    rng: random.Random | None = None,
) -> tuple[AIG, FoldStats]:
    """Fold logic under the conjunction of all bus annotations.

    Args:
        aig: the design (typically already swept/balanced).
        annotated_buses: name -> (bus literals, value set).  Bus
            literals are usually latch outputs, but primary-input buses
            work identically (used by tests).
        rounds: fixpoint iterations; each round re-simulates and
            re-proves on the rebuilt graph.
        rng: randomness for the simulation filter.

    Returns:
        The rebuilt AIG and statistics.
    """
    rng = rng or random.Random(0xC0FFEE)
    stats = FoldStats()
    useful = {
        name: (bus, vs)
        for name, (bus, vs) in annotated_buses.items()
        if not vs.is_trivial()
    }
    if not useful:
        return aig, stats

    current = aig
    polluted = False
    for _ in range(rounds):
        buses = _rebind_buses(current, useful)
        if buses is None:
            break
        constants, merges = _prove_candidates(current, buses, rng, stats)
        polluted = True  # care predicates were built into the graph
        if not constants and not merges:
            break
        current = _apply_substitutions(current, constants, merges)
        polluted = False
        stats.rounds += 1
        stats.per_round.append((len(constants), len(merges)))
        stats.constants_proven += len(constants)
        stats.merges_proven += len(merges)
    if polluted:
        current, _ = current.cleanup()
    return current, stats


def _rebind_buses(aig: AIG, annotated):
    """Re-locate annotated buses by latch/PI name on a rebuilt graph."""
    by_name: dict[str, int] = {}
    for latch in aig.latches:
        by_name[latch.name] = latch.node << 1
    for name, node in zip(aig.pi_names, aig.pis):
        by_name[name] = node << 1
    buses = {}
    for name, (bus, value_set) in annotated.items():
        new_bus = []
        for index in range(value_set.width):
            lit = by_name.get(f"{name}[{index}]")
            if lit is None:
                return None  # bus vanished (e.g. retimed away)
            new_bus.append(lit)
        buses[name] = (new_bus, value_set)
    return buses


def _prove_candidates(aig: AIG, buses, rng, stats: FoldStats):
    """Simulation-filtered, SAT-confirmed constants and merges."""
    tainted = _tainted_nodes(aig, buses)
    signatures = _signatures(aig, buses, rng)
    mask = (1 << _SIM_PATTERNS) - 1

    builder = CnfBuilder()
    care_lits = []
    for bus, value_set in buses.values():
        care = care_literal(aig, bus, value_set)
        care_lits.append(builder.encode(aig, care))

    constants: dict[int, int] = {}
    merges: dict[int, int] = {}
    by_signature: dict[int, int] = {}
    order = aig.topo_order()
    tried = 0
    for node in order:
        if not tainted[node]:
            continue
        if tried >= _MAX_SAT_CANDIDATES:
            break
        signature = signatures[node]
        if signature == 0 or signature == mask:
            tried += 1
            stats.candidates_tried += 1
            proven = prove_lit_constant(aig, node << 1, care_lits, builder)
            if proven is not None:
                constants[node] = proven
                continue
        representative = by_signature.get(signature)
        complement = by_signature.get(signature ^ mask)
        if representative is not None:
            tried += 1
            stats.candidates_tried += 1
            if prove_lits_equal(
                aig, node << 1, representative << 1, care_lits, builder
            ):
                merges[node] = representative << 1
                continue
        elif complement is not None:
            tried += 1
            stats.candidates_tried += 1
            if prove_lits_equal(
                aig, node << 1, lit_compl(complement << 1), care_lits, builder
            ):
                merges[node] = lit_compl(complement << 1)
                continue
        by_signature.setdefault(signature, node)
    return constants, merges


def _tainted_nodes(aig: AIG, buses) -> bytearray:
    """Nodes downstream of any annotated bus bit."""
    tainted = bytearray(aig.num_nodes)
    for bus, _ in buses.values():
        for lit in bus:
            tainted[lit_node(lit)] = 1
    for node in aig.topo_order():
        f0, f1 = aig.fanins(node)
        if tainted[lit_node(f0)] or tainted[lit_node(f1)]:
            tainted[node] = 1
    return tainted


def _signatures(aig: AIG, buses, rng) -> list[int]:
    """Bit-parallel simulation with care-respecting bus values."""
    pi_values: dict[int, int] = {
        node: rng.getrandbits(_SIM_PATTERNS) for node in aig.pis
    }
    latch_values: dict[int, int] = {
        latch.node: rng.getrandbits(_SIM_PATTERNS) for latch in aig.latches
    }
    for bus, value_set in buses.values():
        packed = value_set.sample_packed(rng, _SIM_PATTERNS)
        for bit, lit in enumerate(bus):
            node = lit_node(lit)
            if aig.is_latch_output(node):
                latch_values[node] = packed[bit]
            else:
                pi_values[node] = packed[bit]

    mask = (1 << _SIM_PATTERNS) - 1
    values = [0] * aig.num_nodes
    for node in aig.pis:
        values[node] = pi_values[node]
    for latch in aig.latches:
        values[latch.node] = latch_values[latch.node]

    def lit_value(lit: int) -> int:
        value = values[lit >> 1]
        return value ^ mask if lit & 1 else value

    for node in aig.topo_order():
        f0, f1 = aig.fanins(node)
        values[node] = lit_value(f0) & lit_value(f1)
    return values


def _apply_substitutions(
    aig: AIG, constants: dict[int, int], merges: dict[int, int]
) -> AIG:
    """Rebuild with proven facts applied (representatives come first
    in topo order, so substitution is well-founded)."""
    new = AIG()
    lit_map: dict[int, int] = {0: 0}
    for node, name in zip(aig.pis, aig.pi_names):
        lit_map[node << 1] = new.add_pi(name)
    for latch in aig.latches:
        lit_map[latch.node << 1] = new.add_latch(
            latch.name, latch.reset_kind, latch.reset_value
        )

    def translate(lit: int) -> int:
        return lit_map[lit & ~1] ^ (lit & 1)

    for node in aig.topo_order():
        if node in constants:
            lit_map[node << 1] = constants[node]
            continue
        target = merges.get(node)
        if target is not None:
            lit_map[node << 1] = translate(target)
            continue
        f0, f1 = aig.fanins(node)
        lit_map[node << 1] = new.and_(translate(f0), translate(f1))

    for name, lit in aig.pos:
        new.add_po(name, translate(lit))
    for old_latch, new_latch in zip(aig.latches, new.latches):
        new.set_latch_next(new_latch.node << 1, translate(old_latch.next_lit))
    compacted, _ = new.cleanup()
    return compacted
