"""Sequential sweeping: stuck and dead register removal.

Two register-level cleanups every commercial flow performs and the
Fig. 9 comparison depends on:

* **stuck latches** -- a register whose next-state input is its own
  output (or a constant equal to its reset value) can never leave its
  reset value; replace its output with that constant.  These appear en
  masse after state folding proves a write-enable dead.
* **dead latches** -- registers observable from no primary output and
  no live register are deleted.

Both rules iterate to a fixpoint: killing one register's load often
strands another.
"""

from __future__ import annotations

from repro.aig.graph import AIG, CONST0, CONST1, lit_node


def seq_sweep(aig: AIG) -> tuple[AIG, int]:
    """Remove stuck and dead latches; returns (new AIG, latches removed)."""
    removed_total = 0
    current = aig
    while True:
        current, removed = _sweep_once(current)
        if not removed:
            return current, removed_total
        removed_total += removed


def _sweep_once(aig: AIG) -> tuple[AIG, int]:
    stuck: dict[int, int] = {}
    for latch in aig.latches:
        out_lit = latch.node << 1
        reset_const = CONST1 if latch.reset_value else CONST0
        if latch.next_lit == out_lit or latch.next_lit == reset_const:
            stuck[latch.node] = reset_const

    live = _live_latches(aig, stuck)
    removable = [
        latch for latch in aig.latches
        if latch.node in stuck or latch.node not in live
    ]
    if not removable:
        return aig, 0

    drop = {latch.node for latch in removable}
    new = AIG()
    lit_map: dict[int, int] = {0: 0}
    for node, name in zip(aig.pis, aig.pi_names):
        lit_map[node << 1] = new.add_pi(name)
    for latch in aig.latches:
        if latch.node in drop:
            lit_map[latch.node << 1] = stuck.get(latch.node, CONST0)
        else:
            lit_map[latch.node << 1] = new.add_latch(
                latch.name, latch.reset_kind, latch.reset_value
            )

    def translate(lit: int) -> int:
        return lit_map[lit & ~1] ^ (lit & 1)

    for node in aig.topo_order():
        f0, f1 = aig.fanins(node)
        lit_map[node << 1] = new.and_(translate(f0), translate(f1))
    for name, lit in aig.pos:
        new.add_po(name, translate(lit))
    kept = [latch for latch in aig.latches if latch.node not in drop]
    for old_latch, new_latch in zip(kept, new.latches):
        new.set_latch_next(new_latch.node << 1, translate(old_latch.next_lit))
    compacted, _ = new.cleanup()
    return compacted, len(removable)


def _live_latches(aig: AIG, stuck: dict[int, int]) -> set[int]:
    """Latch nodes observable from the POs (through latch-next edges).

    Stuck latches never count as live users: their next-state cone is
    about to disappear with them.
    """
    po_cone = _source_latches(aig, [lit for _, lit in aig.pos])
    live = set(po_cone)
    changed = True
    while changed:
        changed = False
        for latch in aig.latches:
            if latch.node not in live or latch.node in stuck:
                continue
            for source in _source_latches(aig, [latch.next_lit]):
                if source not in live:
                    live.add(source)
                    changed = True
    return live


def _source_latches(aig: AIG, roots: list[int]) -> set[int]:
    sources: set[int] = set()
    seen: set[int] = set()
    stack = [lit_node(lit) for lit in roots]
    while stack:
        node = stack.pop()
        if node in seen or node == 0:
            continue
        seen.add(node)
        if aig.is_and(node):
            f0, f1 = aig.fanins(node)
            stack.append(lit_node(f0))
            stack.append(lit_node(f1))
        elif aig.is_latch_output(node):
            sources.add(node)
    return sources
