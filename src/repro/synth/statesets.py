"""Value-set (state) domain: the paper's Section III formalism.

An ``n``-bit signal has k = 2**n states "in a physical design"; a
*state restriction* records that only a subset of those values occurs.
The paper's examples are one-hot buses (k = n) and FSM state vectors
(k = number of reachable states).  This module provides the value-set
object, the care-predicate construction over an AIG bus, and sampling
support for the simulation-guided folding pass.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.aig.graph import AIG
from repro.aig import ops


@dataclass(frozen=True)
class ValueSet:
    """The allowed values of a bus, e.g. an annotated state register."""

    width: int
    values: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError("empty value set")
        limit = 1 << self.width
        for value in self.values:
            if not 0 <= value < limit:
                raise ValueError(f"value {value} exceeds {self.width} bits")
        if len(set(self.values)) != len(self.values):
            raise ValueError("duplicate values")

    @property
    def k(self) -> int:
        """Number of allowed states (the paper's ``k``)."""
        return len(self.values)

    def is_trivial(self) -> bool:
        """True when the set allows every code (no information)."""
        return self.k == 1 << self.width

    @classmethod
    def onehot(cls, width: int) -> "ValueSet":
        """The one-hot restriction: k = n."""
        return cls(width, tuple(1 << i for i in range(width)))

    @classmethod
    def full(cls, width: int) -> "ValueSet":
        return cls(width, tuple(range(1 << width)))

    def sample(self, rng: random.Random) -> int:
        return self.values[rng.randrange(self.k)]

    def sample_packed(self, rng: random.Random, patterns: int) -> list[int]:
        """Per-bit packed random samples drawn from the set.

        Returns ``width`` ints of ``patterns`` bits each: bit ``p`` of
        entry ``i`` is bit ``i`` of the ``p``-th sampled value.  Used to
        drive bit-parallel simulation with care-set-respecting states.
        """
        packed = [0] * self.width
        for pattern in range(patterns):
            value = self.sample(rng)
            for bit in range(self.width):
                if value >> bit & 1:
                    packed[bit] |= 1 << pattern
        return packed


def care_literal(aig: AIG, bus: list[int], value_set: ValueSet) -> int:
    """AIG literal asserting that ``bus`` holds an allowed value.

    The predicate is built as a balanced OR of equality comparators --
    the same logic a generator would emit to express the annotation.
    These nodes are only referenced by the SAT encoder, so the final
    cleanup drops them from the netlist.
    """
    if len(bus) != value_set.width:
        raise ValueError("bus width does not match the value set")
    if value_set.is_trivial():
        return 1
    terms = [ops.eq_const(aig, bus, value) for value in value_set.values]
    return ops.reduce_or(aig, terms)
