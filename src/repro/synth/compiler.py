"""The synthesis driver: a Design Compiler-shaped facade.

``DesignCompiler.compile`` runs the full flow the experiments measure:

1. FSM handling -- inference from case-style RTL (automatic) and/or
   user state annotations (``set_fsm_state_vector``), with optional
   re-encoding (``set_fsm_encoding``), subject to the 32-bit state
   vector cap;
2. elaboration to a sequential AIG (bound tables partially evaluate
   here by construction);
3. combinational optimization rounds: functional sweep, balancing,
   cut rewriting;
4. retiming (opt-in), which also folds synchronous resets into logic
   the way the real tool's register-moving engine does;
5. state propagation/folding under the honoured annotations;
6. technology mapping, then gate sizing against the clock target.

The result carries the area split (combinational vs sequential -- the
axes of the paper's Fig. 9), achieved timing, and a pass-by-pass log.
"""

from __future__ import annotations

import random
import sys
from dataclasses import dataclass, field

from repro.aig.balance import balance
from repro.aig.graph import AIG
from repro.aig.rewrite import rewrite, tt_sweep
from repro.rtl.module import Module
from repro.synth.dc_options import CompileOptions, StateAnnotation
from repro.synth.elaborate import Elaboration, elaborate
from repro.synth.encode import reencode_register
from repro.synth.fsm_infer import infer_fsms
from repro.synth.retime import retime_backward
from repro.synth.stateprop import FoldStats, fold_states
from repro.synth.statesets import ValueSet
from repro.synth.sweep import seq_sweep
from repro.tech.cells import Library
from repro.tech.mapper import map_aig
from repro.tech.netlist import AreaReport, MappedNetlist
from repro.tech.sizing import SizingResult, size_for_clock
from repro.tech.sta import TimingReport, analyze_timing

_RECURSION_HEADROOM = 100_000


@dataclass
class CompileResult:
    """Everything a caller might want to know about a synthesis run."""

    module: Module
    options: CompileOptions
    aig: AIG
    netlist: MappedNetlist
    area: AreaReport
    timing: TimingReport
    sizing: SizingResult
    inferred_fsms: list = field(default_factory=list)
    honoured_annotations: list[StateAnnotation] = field(default_factory=list)
    fold_stats: FoldStats | None = None
    log: list[str] = field(default_factory=list)

    def summary(self) -> str:
        return (
            f"{self.module.name}: area {self.area.total:.1f} um^2 "
            f"(comb {self.area.combinational:.1f}, "
            f"seq {self.area.sequential:.1f}), "
            f"delay {self.timing.critical_delay:.3f} ns "
            f"@ target {self.options.clock_period_ns} ns"
        )


class DesignCompiler:
    """Synthesize RTL modules to mapped netlists."""

    def __init__(self, library: Library | None = None) -> None:
        self.library = library or Library.tsmc90ish()

    def compile(
        self, module: Module, options: CompileOptions | None = None
    ) -> CompileResult:
        """Run the full flow on ``module``."""
        options = options or CompileOptions()
        log: list[str] = []
        if sys.getrecursionlimit() < _RECURSION_HEADROOM:
            sys.setrecursionlimit(_RECURSION_HEADROOM)

        # ------------------------------------------------------------
        # 1. FSM inference and annotations.
        # ------------------------------------------------------------
        working = module
        annotations: list[StateAnnotation] = list(options.state_annotations)
        inferred = []
        if options.infer_fsm:
            inferred = infer_fsms(module)
            for fsm in inferred:
                if any(a.reg_name == fsm.reg_name for a in annotations):
                    continue
                annotations.append(StateAnnotation(fsm.reg_name, fsm.states))
                log.append(
                    f"fsm_infer: {fsm.reg_name} has {fsm.num_states} "
                    f"reachable states"
                )

        reg_widths = {name: reg.width for name, reg in working.regs.items()}
        annotations = CompileOptions(
            clock_period_ns=options.clock_period_ns,
            state_annotations=annotations,
        ).effective_annotations(reg_widths)

        if options.fsm_encoding != "same":
            reencoded: list[StateAnnotation] = []
            for annotation in annotations:
                working, new_annotation = reencode_register(
                    working,
                    annotation.reg_name,
                    annotation.values,
                    options.fsm_encoding,
                )
                reencoded.append(new_annotation)
                log.append(
                    f"encode: {annotation.reg_name} -> "
                    f"{options.fsm_encoding} ({len(annotation.values)} states)"
                )
            annotations = reencoded

        # ------------------------------------------------------------
        # 2. Elaboration (constant folding happens here).
        # ------------------------------------------------------------
        fold_sync = options.fold_sync_reset or options.retime
        elaboration = elaborate(working, fold_sync_reset=fold_sync)
        aig = elaboration.aig
        log.append(f"elaborate: {aig.stats()}")

        # ------------------------------------------------------------
        # 3. Combinational optimization rounds.
        # ------------------------------------------------------------
        aig = self._optimize(aig, options, log)

        # ------------------------------------------------------------
        # 4. Retiming.
        # ------------------------------------------------------------
        if options.retime:
            for _ in range(4):
                aig, stats = retime_backward(aig)
                if not stats.changed:
                    break
                log.append(
                    f"retime: moved {stats.latches_removed} flops back to "
                    f"{stats.latches_added} cone inputs"
                )
                aig = self._optimize(aig, options, log)

        # ------------------------------------------------------------
        # 5. State propagation / folding under annotations.
        # ------------------------------------------------------------
        fold_stats: FoldStats | None = None
        if annotations and options.use_state_folding:
            buses = {}
            for annotation in annotations:
                width = (
                    working.regs[annotation.reg_name].width
                    if annotation.reg_name in working.regs
                    else None
                )
                if width is None:
                    continue
                bus = _find_bus(aig, annotation.reg_name, width)
                if bus is None:
                    log.append(
                        f"stateprop: bus {annotation.reg_name} no longer "
                        f"exists (dropped)"
                    )
                    continue
                buses[annotation.reg_name] = (
                    bus,
                    ValueSet(width, tuple(sorted(annotation.values))),
                )
            if buses:
                aig, fold_stats = fold_states(
                    aig, buses, rounds=options.effort_rounds,
                    rng=random.Random(2011),
                )
                log.append(
                    f"stateprop: {fold_stats.constants_proven} constants, "
                    f"{fold_stats.merges_proven} merges over "
                    f"{fold_stats.rounds} rounds"
                )
                aig = self._optimize(aig, options, log)

        # ------------------------------------------------------------
        # 6. Mapping and sizing.
        # ------------------------------------------------------------
        netlist = map_aig(aig, self.library)
        sizing = size_for_clock(netlist, options.clock_period_ns)
        timing = analyze_timing(netlist)
        area = netlist.area_report()
        log.append(f"map: {netlist.stats()}")
        log.append(
            f"size: met={sizing.met} achieved={sizing.achieved_delay:.3f} ns "
            f"({sizing.upsized} upsizes)"
        )
        return CompileResult(
            module=working,
            options=options,
            aig=aig,
            netlist=netlist,
            area=area,
            timing=timing,
            sizing=sizing,
            inferred_fsms=inferred,
            honoured_annotations=annotations,
            fold_stats=fold_stats,
            log=log,
        )

    def _optimize(self, aig: AIG, options: CompileOptions, log: list[str]) -> AIG:
        """Sweep/balance/rewrite rounds until size converges."""
        best = aig
        for round_index in range(max(options.effort_rounds, 1)):
            before = best.num_ands
            seq_swept, removed = seq_sweep(best)
            if removed:
                log.append(f"seq_sweep: removed {removed} registers")
            swept = tt_sweep(seq_swept, support_limit=options.sweep_support_limit)
            balanced = balance(swept)
            rewritten = rewrite(balanced)
            log.append(
                f"optimize[{round_index}]: {before} -> "
                f"{rewritten.num_ands} ands, depth {rewritten.depth()}"
            )
            if rewritten.num_ands >= before and round_index > 0 and not removed:
                break
            best = rewritten
            if rewritten.num_ands == before and not removed:
                break
        return best


def _find_bus(aig: AIG, reg_name: str, width: int) -> list[int] | None:
    """Locate the latch-output literals of a register by name."""
    by_name = {latch.name: latch.node << 1 for latch in aig.latches}
    bus = []
    for bit in range(width):
        lit = by_name.get(f"{reg_name}[{bit}]")
        if lit is None:
            return None
        bus.append(lit)
    return bus
