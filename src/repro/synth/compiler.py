"""The synthesis driver: a Design Compiler-shaped facade.

``DesignCompiler.compile`` runs the full flow the experiments measure:

1. FSM handling -- inference from case-style RTL (automatic) and/or
   user state annotations (``set_fsm_state_vector``), with optional
   re-encoding (``set_fsm_encoding``), subject to the 32-bit state
   vector cap;
2. elaboration to a sequential AIG (bound tables partially evaluate
   here by construction);
3. combinational optimization rounds: functional sweep, balancing,
   cut rewriting;
4. retiming (opt-in), which also folds synchronous resets into logic
   the way the real tool's register-moving engine does;
5. state propagation/folding under the honoured annotations;
6. technology mapping, then gate sizing against the clock target.

Since the flow API redesign the facade is thin: it builds the default
:class:`repro.flow.PassManager` pipeline from the options (see
:func:`repro.flow.pipeline.default_pipeline`) and packages the final
:class:`repro.flow.FlowContext` as a :class:`CompileResult`.  The
facade's entry point stays RTL; pipelines that start one stage
higher -- at a controller IR, via the ``ctrl``-stage lowerings of
:mod:`repro.flow.frontend` -- compose the same passes directly
(``PassManager.compile(ctrl=...)``) and package results through
:func:`result_from_context` identically.  The
result carries the area split (combinational vs sequential -- the axes
of the paper's Fig. 9), achieved timing, and per-pass
:class:`~repro.flow.PassRecord` instrumentation; the legacy
pass-by-pass string log is still available as :attr:`CompileResult.log`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aig.graph import AIG
from repro.flow.core import FlowContext, PassRecord, render_log
from repro.flow.pipeline import run_default_flow
from repro.rtl.module import Module
from repro.synth.dc_options import CompileOptions, StateAnnotation
from repro.synth.stateprop import FoldStats
from repro.tech.cells import Library, default_library
from repro.tech.netlist import AreaReport, MappedNetlist
from repro.tech.sizing import SizingResult
from repro.tech.sta import TimingReport


@dataclass
class CompileResult:
    """Everything a caller might want to know about a synthesis run."""

    module: Module
    options: CompileOptions
    aig: AIG
    netlist: MappedNetlist
    area: AreaReport
    timing: TimingReport
    sizing: SizingResult
    inferred_fsms: list = field(default_factory=list)
    honoured_annotations: list[StateAnnotation] = field(default_factory=list)
    fold_stats: FoldStats | None = None
    records: list[PassRecord] = field(default_factory=list)

    @property
    def log(self) -> list[str]:
        """The pass-by-pass log in its legacy string format, rendered
        from the structured :attr:`records`."""
        return render_log(self.records)

    def summary(self) -> str:
        return (
            f"{self.module.name}: area {self.area.total:.1f} um^2 "
            f"(comb {self.area.combinational:.1f}, "
            f"seq {self.area.sequential:.1f}), "
            f"delay {self.timing.critical_delay:.3f} ns "
            f"@ target {self.options.clock_period_ns} ns"
        )


def result_from_context(
    ctx: FlowContext, options: CompileOptions
) -> CompileResult:
    """Package a completed flow context as a :class:`CompileResult`.

    List state is copied out so a caller mutating the result cannot
    corrupt a context that may live on in a compile cache; the big
    structural objects (AIG, netlist, reports) are shared and must be
    treated as read-only for the same reason.
    """
    return CompileResult(
        module=ctx.module,
        options=options,
        aig=ctx.aig,
        netlist=ctx.netlist,
        area=ctx.area,
        timing=ctx.timing,
        sizing=ctx.sizing,
        inferred_fsms=list(ctx.inferred_fsms),
        honoured_annotations=list(ctx.annotations),
        fold_stats=ctx.fold_stats,
        records=list(ctx.records),
    )


class DesignCompiler:
    """Synthesize RTL modules to mapped netlists.

    A thin facade over :mod:`repro.flow`: every ``compile`` call builds
    the default pipeline for the given options and runs it on a fresh
    context.  Callers who need to compose, reorder, or instrument the
    flow construct a :class:`~repro.flow.PassManager` directly.
    """

    def __init__(self, library: Library | None = None) -> None:
        self.library = library or default_library()

    def compile(
        self,
        module: Module,
        options: CompileOptions | None = None,
        cache=None,
    ) -> CompileResult:
        """Run the full flow on ``module``.

        ``cache`` is a :class:`~repro.flow.cache.CompileCache`; on a
        fingerprint hit the synthesis is skipped entirely and the
        result is repackaged from the cached context.
        """
        options = options or CompileOptions()
        ctx = run_default_flow(module, options, library=self.library, cache=cache)
        return result_from_context(ctx, options)
