"""Elaboration: RTL modules to sequential AIGs.

Bit-blasts every expression into AND-inverter logic.  The two memory
flavours diverge exactly as the paper describes:

* ROMs (bound configurations) become mux trees over constant leaves,
  which the AIG's constant folding collapses while they are built --
  this is partial evaluation by construction;
* writable configuration memories become one latch per bit plus write
  decoding and a read mux tree -- the area cost of flexibility.

Bit naming is ``name[i]`` for ports and registers and
``mem[row][bit]`` for configuration storage, so every downstream
consumer (equivalence checking, annotation seeding, reports) can
address bits stably.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aig.graph import AIG, CONST1, lit_compl
from repro.aig import ops
from repro.rtl.ast import (
    BinOp,
    Case,
    Concat,
    Const,
    Expr,
    InputRef,
    MemRead,
    Mux,
    Not,
    ReduceOp,
    RegRef,
    Slice,
)
from repro.rtl.module import Memory, Module


@dataclass
class Elaboration:
    """An elaborated design plus name maps back into the RTL."""

    module: Module
    aig: AIG
    input_bits: dict[str, list[int]] = field(default_factory=dict)
    reg_bits: dict[str, list[int]] = field(default_factory=dict)
    config_bits: dict[str, list[list[int]]] = field(default_factory=dict)

    def rename_latch_bits(self, lit_map: dict[int, int]) -> None:
        """Refresh stored literals after a rebuild pass (cleanup etc.)."""
        for name, lits in self.reg_bits.items():
            self.reg_bits[name] = [lit_map[lit & ~1] ^ (lit & 1) for lit in lits]
        for name, rows in self.config_bits.items():
            self.config_bits[name] = [
                [lit_map[lit & ~1] ^ (lit & 1) for lit in row] for row in rows
            ]
        for name, lits in self.input_bits.items():
            self.input_bits[name] = [lit_map[lit & ~1] ^ (lit & 1) for lit in lits]


def elaborate(module: Module, fold_sync_reset: bool = False) -> Elaboration:
    """Elaborate ``module`` into a sequential AIG.

    Args:
        module: a validated RTL module.
        fold_sync_reset: when True, synchronous resets are converted
            into next-state muxes on an explicit ``rst`` input and the
            flops become plain (reset-free) ones.  This mirrors the
            synthesis option that re-expresses sync resets as data-path
            logic, which changes what retiming is allowed to do.
    """
    module.validate()
    aig = AIG()
    result = Elaboration(module, aig)

    for name, port in module.inputs.items():
        result.input_bits[name] = [
            aig.add_pi(f"{name}[{bit}]") for bit in range(port.width)
        ]
    rst_lit: int | None = None
    if fold_sync_reset and any(
        reg.reset_kind == "sync" for reg in module.regs.values()
    ):
        rst_lit = aig.add_pi("rst")

    for reg in module.regs.values():
        kind = reg.reset_kind
        if fold_sync_reset and kind == "sync":
            kind = "none"
        result.reg_bits[reg.name] = [
            aig.add_latch(f"{reg.name}[{bit}]", kind, (reg.reset_value >> bit) & 1)
            for bit in range(reg.width)
        ]

    for memory in module.memories.values():
        if memory.writable:
            result.config_bits[memory.name] = _build_config_storage(
                aig, memory, result
            )

    cache: dict[int, list[int]] = {}
    for name, expr in module.outputs.items():
        word = _emit(expr, aig, result, cache)
        for bit, lit in enumerate(word):
            aig.add_po(f"{name}[{bit}]", lit)

    for reg in module.regs.values():
        word = _emit(reg.next, aig, result, cache)
        if fold_sync_reset and reg.reset_kind == "sync" and rst_lit is not None:
            reset_word = ops.const_word(reg.reset_value, reg.width)
            word = ops.mux_word(aig, rst_lit, reset_word, word)
        for bit, latch_lit in enumerate(result.reg_bits[reg.name]):
            aig.set_latch_next(latch_lit, word[bit])

    return result


def _build_config_storage(
    aig: AIG, memory: Memory, result: Elaboration
) -> list[list[int]]:
    """Latch array + write decode for a configuration memory."""
    port = memory.write_port
    assert port is not None
    we = result.input_bits[port.enable][0]
    waddr = result.input_bits[port.addr]
    wdata = result.input_bits[port.data]
    rows: list[list[int]] = []
    for row in range(memory.depth):
        row_lits = [
            aig.add_latch(f"{memory.name}[{row}][{bit}]", "sync", 0)
            for bit in range(memory.width)
        ]
        select = aig.and_(we, ops.eq_const(aig, waddr, row))
        for bit, latch_lit in enumerate(row_lits):
            aig.set_latch_next(
                latch_lit, aig.mux(select, wdata[bit], latch_lit)
            )
        rows.append(row_lits)
    return rows


def _emit(
    expr: Expr, aig: AIG, result: Elaboration, cache: dict[int, list[int]]
) -> list[int]:
    key = id(expr)
    cached = cache.get(key)
    if cached is not None:
        return cached
    word = _emit_uncached(expr, aig, result, cache)
    if len(word) != expr.width:
        raise AssertionError(
            f"elaborated width {len(word)} != declared {expr.width} "
            f"for {type(expr).__name__}"
        )
    cache[key] = word
    return word


def _emit_uncached(
    expr: Expr, aig: AIG, result: Elaboration, cache: dict[int, list[int]]
) -> list[int]:
    if isinstance(expr, Const):
        return ops.const_word(expr.value, expr.width)
    if isinstance(expr, InputRef):
        return list(result.input_bits[expr.name])
    if isinstance(expr, RegRef):
        return list(result.reg_bits[expr.name])
    if isinstance(expr, MemRead):
        memory = result.module.memories[expr.mem_name]
        addr = _emit(expr.addr, aig, result, cache)
        if memory.writable:
            rows = result.config_bits[memory.name]
        else:
            rows = [
                ops.const_word(word, memory.width)
                for word in memory.padded_contents()
            ]
        return ops.table_read(aig, addr, rows)
    if isinstance(expr, Not):
        return ops.not_word(_emit(expr.operand, aig, result, cache))
    if isinstance(expr, BinOp):
        left = _emit(expr.left, aig, result, cache)
        right = _emit(expr.right, aig, result, cache)
        if expr.op == "and":
            return ops.and_word(aig, left, right)
        if expr.op == "or":
            return ops.or_word(aig, left, right)
        if expr.op == "xor":
            return ops.xor_word(aig, left, right)
        if expr.op == "add":
            return ops.add_words(aig, left, right)
        if expr.op == "sub":
            return ops.add_words(aig, left, ops.not_word(right), carry_in=CONST1)
        if expr.op == "eq":
            return [ops.eq_word(aig, left, right)]
        if expr.op == "lt":
            return [_emit_lt(aig, left, right)]
        raise AssertionError(expr.op)
    if isinstance(expr, ReduceOp):
        word = _emit(expr.operand, aig, result, cache)
        if expr.op == "or":
            return [ops.reduce_or(aig, word)]
        if expr.op == "and":
            return [ops.reduce_and(aig, word)]
        acc = word[0]
        for lit in word[1:]:
            acc = aig.xor(acc, lit)
        return [acc]
    if isinstance(expr, Mux):
        sel = _emit(expr.sel, aig, result, cache)[0]
        if1 = _emit(expr.if1, aig, result, cache)
        if0 = _emit(expr.if0, aig, result, cache)
        return ops.mux_word(aig, sel, if1, if0)
    if isinstance(expr, Slice):
        word = _emit(expr.operand, aig, result, cache)
        return word[expr.lsb : expr.lsb + expr.width]
    if isinstance(expr, Concat):
        out: list[int] = []
        for part in expr.parts:
            out.extend(_emit(part, aig, result, cache))
        return out
    if isinstance(expr, Case):
        selector = _emit(expr.selector, aig, result, cache)
        word = _emit(expr.default, aig, result, cache)
        for label, arm in expr.arms:
            match = ops.eq_const(aig, selector, label)
            arm_word = _emit(arm, aig, result, cache)
            word = ops.mux_word(aig, match, arm_word, word)
        return word
    raise TypeError(f"cannot elaborate {type(expr).__name__}")


def _emit_lt(aig: AIG, left: list[int], right: list[int]) -> int:
    """Unsigned less-than via the subtract borrow chain."""
    carry = CONST1
    for a, b in zip(left, right):
        b_inv = lit_compl(b)
        prop = aig.xor(a, b_inv)
        carry = aig.or_(aig.and_(a, b_inv), aig.and_(carry, prop))
    return lit_compl(carry)
