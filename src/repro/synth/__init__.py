"""The synthesis flow: elaboration, optimization, and the DC facade.

The pipeline mirrors the structure of the commercial tool the paper
used, including the behaviours the paper measures:

* constant propagation/folding happens structurally during elaboration
  and in :mod:`repro.aig.rewrite`'s sweeping;
* value-set ("state") propagation is exact within combinational
  windows but *stops at register boundaries* -- unless a state
  annotation (the ``set_fsm_state_vector`` analogue) re-seeds it,
  which is what :mod:`repro.synth.stateprop` implements;
* FSM inference recognises only the case-statement coding style
  (:mod:`repro.synth.fsm_infer`), not table-memory next-state logic.
"""

from repro.synth.dc_options import CompileOptions, StateAnnotation
from repro.synth.elaborate import Elaboration, elaborate

__all__ = [
    "CompileOptions",
    "Elaboration",
    "StateAnnotation",
    "elaborate",
]


def __getattr__(name):
    # DesignCompiler pulls in the whole pass stack; import lazily so
    # light-weight consumers (e.g. the elaborator tests) stay fast.
    if name in ("DesignCompiler", "CompileResult"):
        from repro.synth import compiler

        return getattr(compiler, name)
    raise AttributeError(name)
