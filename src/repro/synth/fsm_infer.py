"""FSM inference from RTL coding style.

The paper's Fig. 6 hinges on a tool behaviour: Design Compiler detects
FSM state registers only when the RTL uses the vendor-recommended
case-statement style; the same machine written as a table memory read
defeats detection, "leading to some variance in the synthesized
areas".  This module reproduces that behaviour literally: it
recognises registers whose next-state is a ``Case`` over their own
value (via :meth:`repro.rtl.module.Module.case_registers`) and then
runs exact reachability to recover the state set.  Table-read
next-state logic is -- deliberately -- not recognised.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rtl.module import Module
from repro.synth.reach import reachable_states


@dataclass(frozen=True)
class InferredFsm:
    """An FSM discovered in the RTL."""

    reg_name: str
    states: tuple[int, ...]

    @property
    def num_states(self) -> int:
        return len(self.states)


def infer_fsms(module: Module) -> list[InferredFsm]:
    """Detect case-style FSM registers and their reachable state sets.

    Registers whose reachability cannot be bounded exactly (too many
    free inputs, cross-register dependencies) are skipped -- inference
    must never produce an unsound annotation.
    """
    found: list[InferredFsm] = []
    for reg_name in sorted(module.case_registers()):
        try:
            states = reachable_states(module, reg_name)
        except ValueError:
            continue
        width = module.regs[reg_name].width
        if len(states) == 1 << width:
            continue  # annotation would carry no information
        found.append(InferredFsm(reg_name, states))
    return found
