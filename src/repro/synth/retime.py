"""Backward retiming of register banks across exclusive logic cones.

The pass looks for a set of latches ``L`` whose next-state functions
are computed by a logic cone ``C`` used by nothing else, with cone
inputs ``I``.  When ``|I| < |L|`` the latches can be moved backward to
the cone inputs -- fewer flops, and (crucially for the paper's Fig. 8)
the cone becomes *combinational logic after the registers*, which puts
any value-set structure it produces (e.g. a one-hot decode) back within
reach of the combinational sweeping passes.

Legality is where the flop type bites, exactly as the paper observed:

* plain (reset-free) latches move unconditionally;
* resettable latches move only if the reset vector has a pre-image
  through the cone -- decided with SAT -- and a one-hot decoder's
  all-zero reset has none, so those banks stay put;
* synchronous resets can first be folded into next-state logic
  (``fold_sync_reset`` at elaboration), making the bank plain at the
  price of an extra retimed ``rst`` flop and per-bit gating.

Retimed circuits are equivalent modulo a one-cycle initialization
window; the tests check equivalence after that settle cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aig.graph import AIG, lit_node, lit_sign
from repro.sat.cnf import CnfBuilder


@dataclass
class RetimeStats:
    """Summary of a retiming run."""

    moved_banks: int = 0
    latches_removed: int = 0
    latches_added: int = 0

    @property
    def changed(self) -> bool:
        return self.moved_banks > 0


def retime_backward(aig: AIG) -> tuple[AIG, RetimeStats]:
    """Attempt one backward retiming move; returns (new AIG, stats)."""
    stats = RetimeStats()
    plan = _find_move(aig)
    if plan is None:
        return aig, stats
    latch_set, cone_nodes, cone_inputs, resets = plan
    new = _apply_move(aig, latch_set, cone_nodes, cone_inputs, resets)
    stats.moved_banks = 1
    stats.latches_removed = len(latch_set)
    stats.latches_added = len(cone_inputs)
    return new, stats


def _find_move(aig: AIG):
    """Locate a profitable, legal backward move.

    Returns ``(latch indices, cone node set, cone input literals,
    reset values per input)`` or ``None``.
    """
    latches = aig.latches
    if not latches:
        return None
    # Group latches by reset kind; try the largest group first.
    groups: dict[str, list[int]] = {}
    for index, latch in enumerate(latches):
        groups.setdefault(latch.reset_kind, []).append(index)

    for kind, members in sorted(groups.items(), key=lambda kv: -len(kv[1])):
        plan = _plan_group(aig, members, kind)
        if plan is not None:
            return plan
    return None


def _group_exclusive_nodes(aig: AIG, members: list[int]) -> set[int]:
    """Nodes whose every fanout stays inside this group's D-pin cones.

    A node qualifies when all of its references come from the group's
    latch D-pins or from other qualifying nodes -- those are exactly
    the nodes that can move behind the retimed registers.
    """
    latches = aig.latches
    fanout = aig.fanout_counts()
    d_refs: dict[int, int] = {}
    for index in members:
        node = lit_node(latches[index].next_lit)
        d_refs[node] = d_refs.get(node, 0) + 1

    exclusive: set[int] = set()
    consumed: dict[int, int] = {}
    for node in reversed(aig.topo_order()):
        if not aig.is_and(node):
            continue
        total = fanout[node]
        inside = consumed.get(node, 0) + d_refs.get(node, 0)
        if total == inside and total > 0:
            exclusive.add(node)
            for lit in aig.fanins(node):
                child = lit_node(lit)
                consumed[child] = consumed.get(child, 0) + 1
    return exclusive


def _plan_group(aig: AIG, members: list[int], kind: str):
    latches = aig.latches
    exclusive = _group_exclusive_nodes(aig, members)
    # Cone = exclusive nodes reachable from this group's D pins only
    # through exclusive nodes.
    cone: set[int] = set()
    inputs: list[int] = []
    input_nodes: set[int] = set()
    latch_nodes = {latches[i].node for i in members}

    stack = [latches[i].next_lit for i in members]
    while stack:
        lit = stack.pop()
        node = lit_node(lit)
        if node in cone:
            continue
        if aig.is_and(node) and node in exclusive:
            cone.add(node)
            stack.extend(aig.fanins(node))
        else:
            if node in latch_nodes:
                return None  # self-feedback: bank cannot move
            if node != 0 and node not in input_nodes:
                input_nodes.add(node)
                inputs.append(node << 1)
    if not cone or len(inputs) >= len(members):
        return None

    if kind == "none":
        resets = {lit: 0 for lit in inputs}
        return members, cone, inputs, resets

    # Resettable bank: find a pre-image of the reset vector with SAT.
    builder = CnfBuilder()
    assumptions = []
    for index in members:
        latch = latches[index]
        sat_lit = builder.encode(aig, latch.next_lit)
        assumptions.append(sat_lit if latch.reset_value else -sat_lit)
    if not builder.solver.solve(assumptions=assumptions):
        return None
    resets = {}
    for lit in inputs:
        sat = builder.encode(aig, lit)
        resets[lit] = int(builder.solver.model_value(sat))
    return members, cone, inputs, resets


def _apply_move(
    aig: AIG,
    members: list[int],
    cone: set[int],
    cone_inputs: list[int],
    resets: dict[int, int],
) -> AIG:
    latches = aig.latches
    member_set = set(members)
    kind = latches[members[0]].reset_kind

    new = AIG()
    lit_map: dict[int, int] = {0: 0}
    for node, name in zip(aig.pis, aig.pi_names):
        lit_map[node << 1] = new.add_pi(name)
    kept_latches = []
    for index, latch in enumerate(latches):
        if index in member_set:
            continue
        lit_map[latch.node << 1] = new.add_latch(
            latch.name, latch.reset_kind, latch.reset_value
        )
        kept_latches.append((index, latch))

    # New latches sit on the cone inputs; pick collision-free names so
    # repeated retiming rounds stay well-formed.
    existing_names = {latch.name for latch in latches}
    generation = 0
    while any(f"rt{generation}_{i}" in existing_names for i in range(len(cone_inputs))):
        generation += 1
    moved: dict[int, int] = {}
    for position, lit in enumerate(cone_inputs):
        moved[lit] = new.add_latch(
            f"rt{generation}_{position}", kind, resets[lit]
        )

    def translate(lit: int) -> int:
        return lit_map[lit & ~1] ^ (lit & 1)

    # Rebuild the cone over the moved latch outputs.  Cone inputs are
    # positive literals by construction.
    cone_map: dict[int, int] = {0: 0}
    for lit in cone_inputs:
        cone_map[lit] = moved[lit]

    def cone_translate(lit: int) -> int:
        return cone_map[lit & ~1] ^ (lit & 1)

    for node in aig.topo_order():
        if node in cone:
            f0, f1 = aig.fanins(node)
            cone_map[node << 1] = new.and_(cone_translate(f0), cone_translate(f1))

    # Old member-latch outputs now read the retimed cone outputs.
    for index in members:
        latch = latches[index]
        lit_map[latch.node << 1] = cone_translate(latch.next_lit)

    # Copy the remaining logic.
    for node in aig.topo_order():
        if node in cone:
            continue
        f0, f1 = aig.fanins(node)
        lit_map[node << 1] = new.and_(translate(f0), translate(f1))

    for name, lit in aig.pos:
        new.add_po(name, translate(lit))
    for original_index, latch in kept_latches:
        new_latch_lit = lit_map[latch.node << 1]
        new.set_latch_next(new_latch_lit, translate(latch.next_lit))
    for lit in cone_inputs:
        new.set_latch_next(moved[lit], translate(lit))
    compacted, _ = new.cleanup()
    return compacted
