"""Technology mapping: cut-based NPN matching with area-flow covering.

The mapper assigns every AND node (in both output phases) its cheapest
realization as a library cell over one of its 4-feasible cuts, then
extracts a cover from the outputs down.  Complemented edges cost an
inverter unless a cell absorbs the inversion (the NPN orbit of every
cell is precomputed, so NAND/NOR/AOI forms match directly).

Covering uses the classic area-flow heuristic: a leaf's cost is
discounted by its fanout, approximating the sharing the final cover
will enjoy.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.aig.cuts import CutSet
from repro.aig.graph import AIG, lit_node, lit_sign
from repro.aig.tt_util import project_table
from repro.tables.bits import all_ones, tt_support
from repro.tech.cells import Cell, Library, default_library
from repro.tech.netlist import CONST0_NET, CONST1_NET, MappedNetlist

_K = 4
_MAX_CUTS = 6


@dataclass(frozen=True)
class Match:
    """A cell realization of a cut function.

    ``leaf_order[i]`` gives, for cell input ``i``, the index of the cut
    leaf feeding it; ``input_phases`` bit ``i`` says that input must be
    the *complement* of that leaf.
    """

    cell: Cell
    leaf_order: tuple[int, ...]
    input_phases: int


class _MatchTable:
    """table -> matches, per arity, over a library's NPN orbits."""

    def __init__(self, library: Library) -> None:
        self.by_arity: list[dict[int, list[Match]]] = [dict() for _ in range(_K + 1)]
        for cell in library.cells.values():
            if cell.arity > _K or cell.name == "BUF":
                continue
            self._add_orbit(cell)

    def _add_orbit(self, cell: Cell) -> None:
        arity = cell.arity
        for perm in _permutations(arity):
            for phases in range(1 << arity):
                table = _transform(cell.table, perm, phases, arity)
                bucket = self.by_arity[arity].setdefault(table, [])
                match = Match(cell, perm, phases)
                # Keep only the cheapest cell per exact table.
                if not bucket or cell.area < bucket[0].cell.area:
                    bucket.insert(0, match)
                else:
                    bucket.append(match)

    def lookup(self, table: int, arity: int) -> list[Match]:
        if arity > _K:
            return []
        return self.by_arity[arity].get(table, [])


@lru_cache(maxsize=None)
def _permutations(arity: int) -> tuple[tuple[int, ...], ...]:
    from itertools import permutations

    return tuple(permutations(range(arity)))


def _transform(table: int, perm: tuple[int, ...], phases: int, arity: int) -> int:
    """Reindex ``table``: cell input i reads (possibly inverted) leaf perm[i]."""
    result = 0
    for minterm in range(1 << arity):
        # minterm assigns values to the *leaves*; compute cell input index.
        index = 0
        for cell_input, leaf in enumerate(perm):
            bit = (minterm >> leaf) & 1
            if (phases >> cell_input) & 1:
                bit ^= 1
            if bit:
                index |= 1 << cell_input
        if (table >> index) & 1:
            result |= 1 << minterm
    return result


_match_table_cache: dict[str, _MatchTable] = {}


def _matches_for(library: Library) -> _MatchTable:
    # Keyed on the library's *content* hash, not id(): two Library
    # objects with identical cells share one match table, and a
    # recycled object id (GC + reallocation) can never serve another
    # library's matches -- which matters now that flows routinely map
    # against several libraries in one process.
    key = library.canonical_hash()
    table = _match_table_cache.get(key)
    if table is None:
        table = _MatchTable(library)
        _match_table_cache[key] = table
    return table


def map_aig(aig: AIG, library: Library | None = None) -> MappedNetlist:
    """Map a (cleaned-up) AIG onto the library; returns the netlist."""
    library = library or default_library()
    matches = _matches_for(library)
    cuts = CutSet(aig, k=_K, max_cuts=_MAX_CUTS)
    fanout = aig.fanout_counts()
    inv_area = library.inverter.area

    # ------------------------------------------------------------------
    # Phase 1: dynamic programming over (node, phase).
    # ------------------------------------------------------------------
    INF = float("inf")
    cost: dict[tuple[int, int], float] = {}
    choice: dict[tuple[int, int], tuple] = {}

    for source in aig.combinational_inputs():
        cost[(source, 0)] = 0.0
        cost[(source, 1)] = inv_area
    cost[(0, 0)] = 0.0
    cost[(0, 1)] = 0.0

    def flow(node: int, phase: int) -> float:
        return cost[(node, phase)] / max(fanout[node], 1)

    for node in aig.topo_order():
        for phase in (0, 1):
            best = INF
            best_choice = None
            for cut in cuts[node]:
                if cut.leaves == (node,):
                    continue
                table = cut.table if phase == 0 else cut.table ^ all_ones(cut.size)
                support = tt_support(table, cut.size)
                if len(support) < cut.size:
                    reduced = project_table(table, support, cut.size)
                    leaves = tuple(cut.leaves[i] for i in support)
                else:
                    reduced = table
                    leaves = cut.leaves
                if not leaves:
                    # Constant under folding; realized by tie cells.
                    best = 0.0
                    best_choice = ("const", reduced & 1)
                    continue
                for match in matches.lookup(reduced, len(leaves)):
                    total = match.cell.area
                    feasible = True
                    for cell_input, leaf_index in enumerate(match.leaf_order):
                        leaf = leaves[leaf_index]
                        leaf_phase = (match.input_phases >> cell_input) & 1
                        leaf_cost = cost.get((leaf, leaf_phase))
                        if leaf_cost is None:
                            feasible = False
                            break
                        total += leaf_cost / max(fanout[leaf], 1)
                    if feasible and total < best:
                        best = total
                        best_choice = ("cell", match, leaves)
            # Fallback: the other phase plus an inverter.
            other = cost.get((node, phase ^ 1))
            if other is not None and other + inv_area < best:
                best = other + inv_area
                best_choice = ("invert",)
            if best_choice is None:
                raise AssertionError(f"no match found for node {node}")
            cost[(node, phase)] = best
            choice[(node, phase)] = best_choice

    # ------------------------------------------------------------------
    # Phase 2: extract the cover from the outputs down.
    # ------------------------------------------------------------------
    netlist = MappedNetlist(library)
    for name, node in zip(aig.pi_names, aig.pis):
        netlist.pi_nets[name] = netlist.new_net()
    q_nets: dict[int, int] = {}
    for latch in aig.latches:
        q_nets[latch.node] = netlist.new_net()

    realized: dict[tuple[int, int], int] = {(0, 0): CONST0_NET, (0, 1): CONST1_NET}
    for name, node in zip(aig.pi_names, aig.pis):
        realized[(node, 0)] = netlist.pi_nets[name]
    for latch in aig.latches:
        realized[(latch.node, 0)] = q_nets[latch.node]

    def realize(node: int, phase: int) -> int:
        key = (node, phase)
        net = realized.get(key)
        if net is not None:
            return net
        if not aig.is_and(node):
            # Source needed in complemented phase: one shared inverter.
            base = realize(node, 0)
            net = netlist.add_instance("INV", [base])
            realized[key] = net
            return net
        picked = choice[key]
        if picked[0] == "invert":
            base = realize(node, phase ^ 1)
            net = netlist.add_instance("INV", [base])
        elif picked[0] == "const":
            netlist.num_ties += 1
            net = CONST1_NET if picked[1] else CONST0_NET
        else:
            _, match, leaves = picked
            input_nets = []
            for cell_input, leaf_index in enumerate(match.leaf_order):
                leaf = leaves[leaf_index]
                leaf_phase = (match.input_phases >> cell_input) & 1
                input_nets.append(realize(leaf, leaf_phase))
            net = netlist.add_instance(match.cell.name, input_nets)
        realized[key] = net
        return net

    for name, lit in aig.pos:
        node, phase = lit_node(lit), lit_sign(lit)
        if node == 0:
            netlist.num_ties += 1
            netlist.po_nets[name] = CONST1_NET if phase else CONST0_NET
        else:
            netlist.po_nets[name] = realize(node, phase)
    for latch in aig.latches:
        node, phase = lit_node(latch.next_lit), lit_sign(latch.next_lit)
        if node == 0:
            netlist.num_ties += 1
            d_net = CONST1_NET if phase else CONST0_NET
        else:
            d_net = realize(node, phase)
        netlist.flops.append(
            _make_flop(latch, library, d_net, q_nets[latch.node])
        )
    return netlist


def _make_flop(latch, library: Library, d_net: int, q_net: int):
    from repro.tech.netlist import FlopInstance

    return FlopInstance(
        name=latch.name,
        cell=library.flop_for(latch.reset_kind),
        d_net=d_net,
        q_net=q_net,
        reset_value=latch.reset_value,
    )
