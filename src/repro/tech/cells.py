"""Standard cell library.

Cells carry a truth table (over their input count), an area, and a
two-parameter delay model::

    delay = intrinsic + load_coeff * min(fanout, FANOUT_CAP) / drive

Drive strengths X1/X2/X4 trade area for load-driving ability, which is
what the sizing pass spends when closing timing -- and the reason the
experiments can "synthesize pairs of designs to identical timing
targets" like the paper does.  The fanout term saturates at
``FANOUT_CAP`` to stand in for the buffer trees a physical flow would
insert on very-high-fanout nets (we do not model buffering
explicitly).

Areas are synthetic but 90nm-plausible (NAND2 ~ 2.8 um^2, scan-less
DFF ~ 15 um^2); every figure in the paper compares areas *between*
implementations in the same library, so only consistency matters.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace

DRIVES = (1, 2, 4)
_DRIVE_AREA_FACTOR = {1: 1.0, 2: 1.6, 4: 2.5}

#: Fanout saturation of the delay model (implicit buffer trees).
FANOUT_CAP = 12


@dataclass(frozen=True)
class Cell:
    """A combinational standard cell.

    Attributes:
        name: base cell name (drive suffix is added by instances).
        arity: number of inputs.
        table: truth table over ``arity`` variables; input ``i`` is
            variable ``i``.
        area: X1 area in um^2.
        intrinsic: fixed delay in ns.
        load_coeff: per-fanout delay in ns at X1 drive.
    """

    name: str
    arity: int
    table: int
    area: float
    intrinsic: float
    load_coeff: float

    def area_at(self, drive: int) -> float:
        return self.area * _DRIVE_AREA_FACTOR[drive]

    def delay(self, fanout: int, drive: int) -> float:
        load = min(max(fanout, 1), FANOUT_CAP)
        return self.intrinsic + self.load_coeff * load / drive


@dataclass(frozen=True)
class FlopCell:
    """A D flip-flop cell (one per reset style)."""

    name: str
    reset_kind: str
    area: float
    clk_to_q: float
    setup: float
    load_coeff: float = 0.030

    def area_at(self, drive: int) -> float:
        return self.area * _DRIVE_AREA_FACTOR[drive]

    def delay(self, fanout: int, drive: int) -> float:
        load = min(max(fanout, 1), FANOUT_CAP)
        return self.clk_to_q + self.load_coeff * load / drive


def _tt(func, arity: int) -> int:
    table = 0
    for minterm in range(1 << arity):
        bits = [(minterm >> i) & 1 for i in range(arity)]
        if func(*bits):
            table |= 1 << minterm
    return table


class Library:
    """A set of combinational cells plus flop variants."""

    def __init__(self, name: str, cells: list[Cell], flops: list[FlopCell]) -> None:
        self.name = name
        self.cells = {cell.name: cell for cell in cells}
        self.flops = {flop.reset_kind: flop for flop in flops}
        if "INV" not in self.cells:
            raise ValueError("library must provide an INV cell")
        for kind in ("none", "sync", "async"):
            if kind not in self.flops:
                raise ValueError(f"library must provide a {kind}-reset flop")

    @property
    def inverter(self) -> Cell:
        return self.cells["INV"]

    def flop_for(self, reset_kind: str) -> FlopCell:
        return self.flops[reset_kind]

    def canonical_hash(self) -> str:
        """Content hash over every cell and flop parameter, stable
        across processes.  Two libraries that merely share a ``name``
        but differ in any area/delay number hash apart -- which is
        what keeps compile-cache fingerprints honest."""
        digest = hashlib.sha256()
        digest.update(repr(("library", self.name)).encode())
        for name in sorted(self.cells):
            cell = self.cells[name]
            digest.update(
                repr(
                    ("cell", cell.name, cell.arity, cell.table,
                     cell.area, cell.intrinsic, cell.load_coeff)
                ).encode()
            )
        for kind in sorted(self.flops):
            flop = self.flops[kind]
            digest.update(
                repr(
                    ("flop", flop.name, flop.reset_kind, flop.area,
                     flop.clk_to_q, flop.setup, flop.load_coeff)
                ).encode()
            )
        return digest.hexdigest()

    @classmethod
    def tsmc90ish(cls) -> "Library":
        """The default synthetic 90nm-class library."""
        cells = [
            Cell("INV", 1, _tt(lambda a: not a, 1), 1.8, 0.020, 0.018),
            Cell("BUF", 1, _tt(lambda a: a, 1), 2.2, 0.035, 0.012),
            Cell("NAND2", 2, _tt(lambda a, b: not (a and b), 2), 2.8, 0.030, 0.022),
            Cell("NOR2", 2, _tt(lambda a, b: not (a or b), 2), 2.8, 0.035, 0.026),
            Cell("AND2", 2, _tt(lambda a, b: a and b, 2), 3.5, 0.050, 0.020),
            Cell("OR2", 2, _tt(lambda a, b: a or b, 2), 3.5, 0.055, 0.020),
            Cell("XOR2", 2, _tt(lambda a, b: a != b, 2), 5.6, 0.070, 0.028),
            Cell("XNOR2", 2, _tt(lambda a, b: a == b, 2), 5.6, 0.070, 0.028),
            Cell(
                "NAND3", 3, _tt(lambda a, b, c: not (a and b and c), 3),
                3.6, 0.042, 0.026,
            ),
            Cell(
                "NOR3", 3, _tt(lambda a, b, c: not (a or b or c), 3),
                3.6, 0.052, 0.032,
            ),
            Cell(
                "NAND4", 4,
                _tt(lambda a, b, c, d: not (a and b and c and d), 4),
                4.4, 0.055, 0.030,
            ),
            Cell(
                "NOR4", 4, _tt(lambda a, b, c, d: not (a or b or c or d), 4),
                4.4, 0.068, 0.038,
            ),
            Cell(
                "AOI21", 3, _tt(lambda a, b, c: not ((a and b) or c), 3),
                3.2, 0.045, 0.026,
            ),
            Cell(
                "OAI21", 3, _tt(lambda a, b, c: not ((a or b) and c), 3),
                3.2, 0.045, 0.026,
            ),
            Cell(
                "AOI22", 4,
                _tt(lambda a, b, c, d: not ((a and b) or (c and d)), 4),
                4.0, 0.055, 0.030,
            ),
            Cell(
                "OAI22", 4,
                _tt(lambda a, b, c, d: not ((a or b) and (c or d)), 4),
                4.0, 0.055, 0.030,
            ),
            Cell(
                "MUX2", 3, _tt(lambda a, b, s: b if s else a, 3),
                5.0, 0.060, 0.026,
            ),
            Cell(
                "AO22", 4,
                _tt(lambda a, b, c, d: (a and b) or (c and d), 4),
                4.6, 0.065, 0.026,
            ),
            Cell(
                "MAJ3", 3,
                _tt(lambda a, b, c: (a + b + c) >= 2, 3),
                5.2, 0.065, 0.028,
            ),
        ]
        flops = [
            FlopCell("DFF", "none", 14.6, 0.16, 0.04),
            FlopCell("DFFS", "sync", 17.3, 0.17, 0.05),
            FlopCell("DFFR", "async", 18.8, 0.17, 0.05),
        ]
        return cls("tsmc90ish", cells, flops)

    @classmethod
    def generic45ish(cls) -> "Library":
        """A coarser synthetic 45nm-class library.

        Deliberately sparse -- inverting primitives, a buffer, and a
        mux only -- so technology exploration has a qualitatively
        different target: the mapper must spend inverters and
        multi-cell structures where the 90nm kit has single complex
        cells (AOI/OAI/XOR).  NAND2+NOR2+INV alone cover any AIG (the
        NPN orbits absorb input phases), so mapping is always total.
        """
        cells = [
            Cell("INV", 1, _tt(lambda a: not a, 1), 0.8, 0.012, 0.011),
            Cell("BUF", 1, _tt(lambda a: a, 1), 1.0, 0.022, 0.008),
            Cell("NAND2", 2, _tt(lambda a, b: not (a and b), 2), 1.2, 0.018, 0.014),
            Cell("NOR2", 2, _tt(lambda a, b: not (a or b), 2), 1.2, 0.021, 0.016),
            Cell(
                "NAND3", 3, _tt(lambda a, b, c: not (a and b and c), 3),
                1.6, 0.026, 0.017,
            ),
            Cell(
                "NOR3", 3, _tt(lambda a, b, c: not (a or b or c), 3),
                1.6, 0.032, 0.020,
            ),
            Cell(
                "MUX2", 3, _tt(lambda a, b, s: b if s else a, 3),
                2.2, 0.038, 0.017,
            ),
        ]
        flops = [
            FlopCell("DFF", "none", 6.2, 0.095, 0.025, 0.018),
            FlopCell("DFFS", "sync", 7.4, 0.100, 0.030, 0.018),
            FlopCell("DFFR", "async", 8.1, 0.100, 0.030, 0.018),
        ]
        return cls("generic45ish", cells, flops)

    @classmethod
    def lowpowerish(cls) -> "Library":
        """A low-leakage variant of the 90nm kit: the same cell set,
        slightly smaller, markedly slower -- the classic high-Vt
        corner.  Exists so library exploration has a same-node
        area/delay trade-off, not just a process shrink."""
        base = cls.tsmc90ish()
        cells = [
            replace(
                cell,
                area=round(cell.area * 0.85, 4),
                intrinsic=round(cell.intrinsic * 1.6, 4),
                load_coeff=round(cell.load_coeff * 1.35, 4),
            )
            for cell in base.cells.values()
        ]
        flops = [
            replace(
                flop,
                area=round(flop.area * 0.9, 4),
                clk_to_q=round(flop.clk_to_q * 1.5, 4),
                setup=round(flop.setup * 1.4, 4),
                load_coeff=round(flop.load_coeff * 1.35, 4),
            )
            for flop in base.flops.values()
        ]
        return cls("lowpowerish", cells, flops)


#: Factory for the library a flow falls back to when neither the
#: ``map`` pass nor the context pins one.  Kept as a module-level
#: callable (rather than hard-coded call sites) so the *resolved*
#: default can be fingerprinted by the compile cache -- see
#: :func:`repro.flow.cache.flow_fingerprint` -- and monkeypatched by
#: tests.
DEFAULT_LIBRARY_FACTORY = Library.tsmc90ish


def default_library() -> Library:
    """The library used when no explicit one is given anywhere."""
    return DEFAULT_LIBRARY_FACTORY()


#: (factory object, its library's canonical hash) -- holding the
#: factory reference keeps the identity check sound (no id reuse).
_DEFAULT_HASH_CACHE: tuple[object, str] | None = None


def default_library_hash() -> str:
    """Canonical hash of the current default library, memoized.

    Fingerprinting resolves a ``None`` library through this on every
    compile (see :func:`repro.flow.cache.flow_fingerprint`); building
    and sha256-ing the full cell list each time would make hashing a
    measurable cost on warm hundreds-of-jobs sweeps.  The memo is
    keyed on the factory object itself, so swapping
    :data:`DEFAULT_LIBRARY_FACTORY` recomputes."""
    global _DEFAULT_HASH_CACHE
    factory = DEFAULT_LIBRARY_FACTORY
    if _DEFAULT_HASH_CACHE is None or _DEFAULT_HASH_CACHE[0] is not factory:
        _DEFAULT_HASH_CACHE = (factory, factory().canonical_hash())
    return _DEFAULT_HASH_CACHE[1]
