"""Mapped gate-level netlists.

The output of technology mapping: cell instances over integer nets,
flop instances, and the area/simulation facilities the experiments and
the verification cross-checks consume.  Net 0 is constant 0 and net 1
constant 1 (tie cells are accounted separately).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tech.cells import FlopCell, Library

CONST0_NET = 0
CONST1_NET = 1

_TIE_AREA = 1.3


@dataclass
class Instance:
    """A combinational cell instance."""

    cell_name: str
    inputs: list[int]
    output: int
    drive: int = 1


@dataclass
class FlopInstance:
    """A sequential cell instance."""

    name: str
    cell: FlopCell
    d_net: int
    q_net: int
    reset_value: int
    drive: int = 1


@dataclass
class MappedNetlist:
    """A technology-mapped design."""

    library: Library
    instances: list[Instance] = field(default_factory=list)
    flops: list[FlopInstance] = field(default_factory=list)
    pi_nets: dict[str, int] = field(default_factory=dict)
    po_nets: dict[str, int] = field(default_factory=dict)
    num_nets: int = 2  # 0 and 1 are the constants
    num_ties: int = 0

    # ------------------------------------------------------------------
    # Construction helpers (used by the mapper)
    # ------------------------------------------------------------------
    def new_net(self) -> int:
        net = self.num_nets
        self.num_nets += 1
        return net

    def add_instance(self, cell_name: str, inputs: list[int], drive: int = 1) -> int:
        output = self.new_net()
        self.instances.append(Instance(cell_name, list(inputs), output, drive))
        return output

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def area_report(self) -> "AreaReport":
        combinational = sum(
            self.library.cells[inst.cell_name].area_at(inst.drive)
            for inst in self.instances
        )
        combinational += self.num_ties * _TIE_AREA
        sequential = sum(flop.cell.area_at(flop.drive) for flop in self.flops)
        return AreaReport(
            combinational=combinational,
            sequential=sequential,
            num_cells=len(self.instances),
            num_flops=len(self.flops),
        )

    def fanout_counts(self) -> list[int]:
        counts = [0] * self.num_nets
        for inst in self.instances:
            for net in inst.inputs:
                counts[net] += 1
        for flop in self.flops:
            counts[flop.d_net] += 1
        for net in self.po_nets.values():
            counts[net] += 1
        return counts

    # ------------------------------------------------------------------
    # Simulation (for cross-checking against the AIG)
    # ------------------------------------------------------------------
    def topo_instances(self) -> list[Instance]:
        """Instances ordered so inputs are computed before use."""
        producer: dict[int, Instance] = {inst.output: inst for inst in self.instances}
        ordered: list[Instance] = []
        state: dict[int, int] = {}
        for inst in self.instances:
            self._visit(inst, producer, state, ordered)
        return ordered

    def _visit(self, inst, producer, state, ordered) -> None:
        status = state.get(inst.output, 0)
        if status == 2:
            return
        if status == 1:
            raise ValueError("combinational cycle in mapped netlist")
        state[inst.output] = 1
        for net in inst.inputs:
            child = producer.get(net)
            if child is not None:
                self._visit(child, producer, state, ordered)
        state[inst.output] = 2
        ordered.append(inst)

    def evaluate(
        self, pi_values: dict[str, int], flop_values: dict[str, int] | None = None
    ) -> tuple[dict[str, int], dict[str, int]]:
        """One combinational evaluation; returns (POs, flop next values)."""
        values = [0] * self.num_nets
        values[CONST1_NET] = 1
        for name, net in self.pi_nets.items():
            values[net] = pi_values.get(name, 0) & 1
        for flop in self.flops:
            if flop_values is not None and flop.name in flop_values:
                values[flop.q_net] = flop_values[flop.name] & 1
            else:
                values[flop.q_net] = flop.reset_value
        for inst in self.topo_instances():
            cell = self.library.cells[inst.cell_name]
            index = 0
            for position, net in enumerate(inst.inputs):
                if values[net]:
                    index |= 1 << position
            values[inst.output] = (cell.table >> index) & 1
        pos = {name: values[net] for name, net in self.po_nets.items()}
        nxt = {flop.name: values[flop.d_net] for flop in self.flops}
        return pos, nxt

    def stats(self) -> str:
        report = self.area_report()
        return (
            f"netlist: {report.num_cells} cells, {report.num_flops} flops, "
            f"area {report.total:.1f} um^2 "
            f"(comb {report.combinational:.1f} / seq {report.sequential:.1f})"
        )


@dataclass(frozen=True)
class AreaReport:
    """Split area accounting, matching the paper's Fig. 9 axes."""

    combinational: float
    sequential: float
    num_cells: int
    num_flops: int

    @property
    def total(self) -> float:
        return self.combinational + self.sequential
