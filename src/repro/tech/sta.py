"""Static timing analysis over mapped netlists.

Single-corner, fanout-loaded gate delays (see
:class:`repro.tech.cells.Cell`).  Paths start at primary inputs (time
0) and flop Q pins (clk-to-q) and end at primary outputs and flop D
pins (plus setup).  The critical path is reported as a list of nets for
the sizing pass to chew on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tech.netlist import CONST0_NET, CONST1_NET, MappedNetlist


@dataclass
class TimingReport:
    """Result of one STA run."""

    critical_delay: float
    critical_path: list[int] = field(default_factory=list)
    arrival: dict[int, float] = field(default_factory=dict)

    def meets(self, clock_period: float) -> bool:
        return self.critical_delay <= clock_period + 1e-9


def analyze_timing(netlist: MappedNetlist) -> TimingReport:
    """Compute arrival times and the critical path."""
    fanout = netlist.fanout_counts()
    arrival: dict[int, float] = {CONST0_NET: 0.0, CONST1_NET: 0.0}
    from_net: dict[int, int] = {}

    for net in netlist.pi_nets.values():
        arrival[net] = 0.0
    for flop in netlist.flops:
        arrival[flop.q_net] = flop.cell.delay(fanout[flop.q_net], flop.drive)

    for inst in netlist.topo_instances():
        cell = netlist.library.cells[inst.cell_name]
        delay = cell.delay(fanout[inst.output], inst.drive)
        best_input = max(inst.inputs, key=lambda net: arrival.get(net, 0.0))
        arrival[inst.output] = arrival.get(best_input, 0.0) + delay
        from_net[inst.output] = best_input

    worst_delay = 0.0
    worst_end: int | None = None
    for net in netlist.po_nets.values():
        time = arrival.get(net, 0.0)
        if time > worst_delay:
            worst_delay, worst_end = time, net
    for flop in netlist.flops:
        time = arrival.get(flop.d_net, 0.0) + flop.cell.setup
        if time > worst_delay:
            worst_delay, worst_end = time, flop.d_net

    path: list[int] = []
    net = worst_end
    while net is not None:
        path.append(net)
        net = from_net.get(net)
    path.reverse()
    return TimingReport(worst_delay, path, arrival)
