"""Technology layer: standard cells, mapping, timing, area.

The library is a synthetic 90nm-class kit (the paper used TSMC 90nm,
which cannot be redistributed): gate areas and delays are in the
published ballpark for that node, and -- critically for reproducing
the paper -- *relative* areas between competing implementations are
what the experiments consume.

- :mod:`repro.tech.cells` -- cell definitions and the library.
- :mod:`repro.tech.mapper` -- NPN cut matching + area-flow covering.
- :mod:`repro.tech.netlist` -- the mapped gate-level netlist.
- :mod:`repro.tech.sta` -- static timing analysis.
- :mod:`repro.tech.sizing` -- drive selection against a clock target.
"""

from repro.tech.cells import Cell, FlopCell, Library
from repro.tech.mapper import map_aig
from repro.tech.netlist import AreaReport, Instance, MappedNetlist
from repro.tech.sizing import size_for_clock
from repro.tech.sta import TimingReport, analyze_timing

__all__ = [
    "AreaReport",
    "Cell",
    "FlopCell",
    "Instance",
    "Library",
    "MappedNetlist",
    "TimingReport",
    "analyze_timing",
    "map_aig",
    "size_for_clock",
]
