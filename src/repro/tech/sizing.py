"""Gate sizing: close timing against a clock period by upsizing drives.

Greedy critical-path sizing: while the clock target is missed, walk
the current critical path and upsize the instance with the largest
load-dependent delay contribution.  This is deliberately simple -- the
experiments need "the same timing target on both designs", not a
state-of-the-art sizer -- but it is a real optimization with a real
area cost, which is what makes equal-timing-target area comparisons
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.netlist import Instance, MappedNetlist
from repro.tech.sta import TimingReport, analyze_timing

_MAX_ITERATIONS = 400
_DRIVE_STEPS = {1: 2, 2: 4}


@dataclass
class SizingResult:
    """Outcome of a sizing run."""

    met: bool
    achieved_delay: float
    upsized: int


def size_for_clock(netlist: MappedNetlist, clock_period: float) -> SizingResult:
    """Upsize instances in place until timing is met (or stuck).

    Returns the achieved critical delay; ``met`` is False when the
    target is unreachable with the available drive strengths, in which
    case the netlist is left at its fastest configuration found.
    """
    producers: dict[int, Instance] = {
        inst.output: inst for inst in netlist.instances
    }
    fanout = netlist.fanout_counts()
    upsized = 0
    report = analyze_timing(netlist)
    for _ in range(_MAX_ITERATIONS):
        if report.meets(clock_period):
            return SizingResult(True, report.critical_delay, upsized)
        candidate = _worst_upsizable(netlist, report, producers, fanout)
        if candidate is None:
            return SizingResult(False, report.critical_delay, upsized)
        candidate.drive = _DRIVE_STEPS[candidate.drive]
        upsized += 1
        report = analyze_timing(netlist)
    return SizingResult(report.meets(clock_period), report.critical_delay, upsized)


def _worst_upsizable(
    netlist: MappedNetlist,
    report: TimingReport,
    producers: dict[int, Instance],
    fanout: list[int],
) -> Instance | None:
    """The critical-path instance with the most recoverable delay."""
    best: Instance | None = None
    best_gain = 0.0
    for net in report.critical_path:
        inst = producers.get(net)
        if inst is None or inst.drive not in _DRIVE_STEPS:
            continue
        cell = netlist.library.cells[inst.cell_name]
        now = cell.delay(fanout[inst.output], inst.drive)
        then = cell.delay(fanout[inst.output], _DRIVE_STEPS[inst.drive])
        gain = now - then
        if gain > best_gain:
            best_gain = gain
            best = inst
    return best


def achievable_targets(
    netlist_delay: float, num_points: int = 4, slack_factor: float = 0.85
) -> list[float]:
    """A descending sweep of clock targets starting from relaxed.

    Mirrors the paper's methodology of synthesizing each design pair
    over "a sweep of achievable timing targets".
    """
    targets = []
    period = netlist_delay * 1.25
    for _ in range(num_points):
        targets.append(round(period, 4))
        period *= slack_factor
    return targets
