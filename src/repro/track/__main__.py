"""Command-line entry point: cross-commit run recording and diffing.

Usage::

    python -m repro.track record fig5 --scale small
    python -m repro.track record all --jobs 0
    python -m repro.track list
    python -m repro.track diff HEAD~1 HEAD
    python -m repro.track diff HEAD~1 HEAD --warn-only   # CI soft gate
    python -m repro.track gc --max-bytes 500M --max-age-days 30

``diff`` exits 1 when a regression exceeds the thresholds (0 with
``--warn-only``); see ``docs/cli.md`` for the full reference.
"""

from __future__ import annotations

import sys

from repro.track import main

if __name__ == "__main__":
    sys.exit(main())
