"""The per-pass benchmark as a recordable experiment.

``benchmarks/test_bench_passes.py`` asserts that every registered
pass leaves a timed :class:`~repro.flow.core.PassRecord`; this module
holds the shared substance of that benchmark -- the input builders
and the three pipelines that together execute the whole registry --
so the same sweep can be *recorded* into the run store
(``python -m repro.track record bench``) and diffed across commits.

The pipelines partition the registry deliberately:

* the AIG leaf passes run in isolation, so their timings are cleanly
  attributable;
* the ``optimize`` composite runs in its own pipeline, so its body's
  records don't fold into the leaf timings;
* an annotated FSM runs the full RTL-to-netlist flow, covering the
  rtl/netlist-stage passes (and the stage drivers' inner records);
* the frontend (``ctrl``-stage) lowerings each run on their own
  controller IR -- an FSM spec, a truth table, a microprogram, and a
  flexible design with bindings for ``pe_bind``.

Bench records are always produced by *executing* the passes (no
compile cache), because the point is the wall time of this commit's
code, not of whichever commit populated the cache.
"""

from __future__ import annotations

import random

from repro.expts.common import ExperimentResult
from repro.flow import PassManager

#: Registered AIG-stage leaf passes that run out of the box on a bare
#: AIG context.
AIG_LEAF_PASSES = (
    "seq_sweep",
    "tt_sweep",
    "balance",
    "rewrite",
    "resub",
    "dc_rewrite",
    "retime",
)

#: Leaf passes that accept the fingerprint-invisible ``kernel=``
#: option (:mod:`repro.aig.kernel` backend selection).
KERNEL_PASSES = ("rewrite", "resub", "dc_rewrite")

#: The kernel pipeline's wide-window pass specs: parameters sized so
#: the truth-table work (not cut enumeration) dominates, which is the
#: regime the bit-parallel backend targets.
KERNEL_PIPELINE_SPECS = (
    "resub{support_limit=16,max_divisors=24}",
    "rewrite",
    "dc_rewrite{support_limit=16}",
)

#: The full RTL-to-netlist flow covering the remaining registered
#: passes (the stage drivers' retime/stateprop records land in the
#: same context).
FULL_FLOW_SPEC = (
    "fsm_infer,honour_annotations,encode,elaborate,optimize,"
    "retime_stage,state_folding,stateprop,map,size"
)

#: The figure name bench runs are stored under.
BENCH_FIGURE = "bench_passes"


def build_table_aig(num_inputs: int = 8, width: int = 16, seed: int = 0):
    """A deterministic random table-read AIG: the standard workload
    the AIG-stage passes are timed on."""
    from repro.aig import ops
    from repro.aig.graph import AIG
    from repro.tables.truthtable import TruthTable

    rng = random.Random(seed)
    table = TruthTable.random(num_inputs, width, rng)
    aig = AIG()
    addr = [aig.add_pi(f"a[{i}]") for i in range(num_inputs)]
    rows = [ops.const_word(word, width) for word in table.rows()]
    data = ops.table_read(aig, addr, rows)
    for bit, lit in enumerate(data):
        aig.add_po(f"d[{bit}]", lit)
    cleaned, _ = aig.cleanup()
    return cleaned


def build_wide_window_aig(
    num_inputs: int = 16, layers: int = 10, seed: int = 0
):
    """A layered XOR/MUX network whose nodes keep wide global supports.

    Random AND graphs collapse to narrow true supports after
    projection, which starves the windowed table passes; stacking
    XOR/MUX layers over a fixed source row keeps most nodes dependent
    on every primary input.  This is the workload where the
    bit-parallel kernel backend's vectorization pays off, so it is
    what the ``kernel`` pipeline (and the kernel speedup benchmark)
    runs on.
    """
    from repro.aig import ops
    from repro.aig.graph import AIG

    rng = random.Random(seed)
    aig = AIG()
    row = [aig.add_pi(f"x{i}") for i in range(num_inputs)]
    for layer in range(layers):
        nxt = []
        for i in range(len(row)):
            a = row[i]
            b = row[(i + 1 + layer) % len(row)]
            c = row[(i + 5 + 3 * layer) % len(row)]
            choice = rng.randint(0, 2)
            if choice == 0:
                nxt.append(
                    ops.xor_word(aig, [a], [b])[0] ^ rng.randint(0, 1)
                )
            elif choice == 1:
                nxt.append(ops.mux_word(aig, c, [a], [b])[0])
            else:
                nxt.append(aig.and_(a ^ 1, b))
        row = nxt
    for i, lit in enumerate(row):
        aig.add_po(f"f{i}", lit)
    cleaned, _ = aig.cleanup()
    return cleaned


def annotated_fsm_module():
    """A table FSM whose annotation exercises encode and stateprop."""
    from repro.rtl.builder import ModuleBuilder, cat

    b = ModuleBuilder("bench_fsm")
    go = b.input("go")
    state = b.reg("state", 2)
    table = b.rom("nxt", 2, 8, [0, 2, 0, 0, 1, 2, 0, 0])
    b.drive(state, table.read(cat(state, go)))
    b.output("busy", state.ne(0))
    return b.build()


def _kernelize(spec: str, kernel: str | None) -> str:
    """Splice ``kernel=<name>`` into a pass spec when the pass takes
    it.  The option is fingerprint-invisible, so the kernelized and
    plain pipelines render (and cache) identically."""
    if kernel is None:
        return spec
    name = spec.split("{", 1)[0]
    if name not in KERNEL_PASSES:
        return spec
    if "{" in spec:
        return spec[:-1] + f",kernel={kernel}}}"
    return spec + f"{{kernel={kernel}}}"


def bench_pipelines(kernel: str | None = None) -> dict[str, PassManager]:
    """The pipelines that together cover the pass registry.

    ``kernel`` pins the truth-table backend of every pass that takes
    one (``track record bench --kernel``); the default leaves the
    usual ``REPRO_KERNEL``/auto resolution in force.
    """
    leaf = ",".join(_kernelize(name, kernel) for name in AIG_LEAF_PASSES)
    wide = ",".join(
        _kernelize(spec, kernel) for spec in KERNEL_PIPELINE_SPECS
    )
    return {
        "leaf": PassManager.parse(leaf),
        "kernel": PassManager.parse(wide),
        "optimize": PassManager.parse("optimize"),
        "full": PassManager.parse(FULL_FLOW_SPEC),
        "fsm_lower": PassManager.parse("fsm_encode{realize=case}"),
        "table_lower": PassManager.parse("table_rom"),
        "sop_lower": PassManager.parse("table_minimize"),
        "useq_lower": PassManager.parse("microcode_pack,dispatch_rom"),
        "bind": PassManager.parse("pe_bind"),
    }


def frontend_inputs(seed: int = 0):
    """The controller IRs (and the pe_bind module/bindings pair) the
    frontend lowering passes are timed on."""
    from repro.controllers import (
        DispatchTable,
        FsmSpec,
        MicrocodeFormat,
        Program,
        SeqOp,
    )
    from repro.controllers.fsm_rtl import fsm_to_table_rtl, table_rows
    from repro.tables.truthtable import TruthTable

    fsm = FsmSpec(
        "bench_ctrl",
        num_inputs=2,
        num_outputs=3,
        num_states=5,
        reset_state=0,
        next_state=[
            [0, 1, 2, 1], [2, 2, 3, 3], [3, 4, 3, 4],
            [4, 0, 1, 0], [0, 0, 2, 2],
        ],
        output=[
            [0, 1, 2, 3], [4, 5, 6, 7], [0, 1, 2, 3],
            [4, 5, 6, 7], [1, 3, 5, 7],
        ],
    )
    table = TruthTable.random(6, 8, random.Random(seed))
    fmt = MicrocodeFormat.horizontal(("cmd", ["read", "write"]))
    dispatch = DispatchTable("dsp", opcode_bits=1, default="idle")
    dispatch.set(1, "work")
    program = Program(fmt, conditions=["busy"], dispatch=dispatch)
    program.label("idle")
    program.inst(seq=SeqOp.DISPATCH)
    program.label("work")
    program.inst(cmd="read")
    program.inst(cmd="write", seq=SeqOp.JUMP, target="idle")
    flexible = fsm_to_table_rtl(fsm, flexible=True)
    bindings = {
        "next_mem": table_rows(fsm, "next"),
        "out_mem": table_rows(fsm, "output"),
    }
    return fsm, table, program, flexible, bindings


def bench_result(
    contexts, seed: int = 0, kernel: str | None = None
) -> ExperimentResult:
    """Aggregate completed bench contexts into the stored result form.

    One assembly point for both entry points -- ``track record bench``
    and the pytest benchmark's ``REPRO_RUN_STORE`` hook -- so records
    from either diff cleanly against each other.
    """
    result = ExperimentResult(
        "Per-pass microbenchmark",
        "Every registered pass executed once (leaf passes in "
        "isolation, the optimize composite alone, the full flow on an "
        "annotated FSM, the frontend lowerings on their controller "
        "IRs); totals are per pass name.",
    )
    result.absorb_flow(contexts)
    result.meta["pipelines"] = {
        name: pm.spec() for name, pm in bench_pipelines().items()
    }
    result.meta["seed"] = seed
    result.meta["kernel"] = kernel or "auto"
    slowest = max(
        result.pass_totals.values(), key=lambda t: t.wall_time_s
    )
    result.notes.append(
        f"{len(result.pass_totals)} pass names timed; slowest: "
        f"{slowest.name} at {slowest.wall_time_s * 1e3:.1f} ms"
    )
    return result


def run_pass_bench(
    seed: int = 0, kernel: str | None = None
) -> ExperimentResult:
    """Execute every registered pass once and aggregate its timings.

    Args:
        seed: workload seed (all inputs are deterministic in it).
        kernel: truth-table backend pinned onto every kernel-aware
            pass (``pure``/``numpy``/``auto``); ``None`` leaves the
            usual resolution in force.  Byte-identical results across
            backends mean two records differing only in ``kernel``
            diff with zero structural deltas -- only wall times move.

    Returns:
        An :class:`ExperimentResult` named ``bench_passes`` whose
        ``pass_totals`` carry per-pass wall times, call counts, and
        AND-node deltas -- the payload ``track diff`` compares across
        commits.  The result has no figure points; bench records diff
        purely pass-by-pass.
    """
    from repro.synth.dc_options import StateAnnotation

    pipelines = bench_pipelines(kernel)
    table_aig = build_table_aig(seed=seed)
    wide_aig = build_wide_window_aig(seed=seed)
    module = annotated_fsm_module()
    annotations = [StateAnnotation("state", (0, 1, 2))]
    fsm, table, program, flexible, bindings = frontend_inputs(seed)

    contexts = [
        pipelines["leaf"].compile(aig=table_aig),
        pipelines["kernel"].compile(aig=wide_aig),
        pipelines["optimize"].compile(aig=table_aig),
        pipelines["full"].compile(module, annotations=annotations),
        pipelines["fsm_lower"].compile(ctrl=fsm),
        pipelines["table_lower"].compile(ctrl=table),
        pipelines["sop_lower"].compile(ctrl=table),
        pipelines["useq_lower"].compile(ctrl=program),
        pipelines["bind"].compile(flexible, bindings=bindings),
    ]
    return bench_result(contexts, seed, kernel)


def store_bench_record(
    contexts, store_dir, commit: str = "HEAD", seed=0, kernel=None
):
    """Persist bench contexts as this commit's ``bench_passes`` record.

    The record is shaped identically to what ``track record bench``
    stores (library hash included), so the pytest benchmark's
    ``REPRO_RUN_STORE`` hook and the CLI produce interchangeable
    baselines.

    Returns:
        The path written.
    """
    from repro.flow.store import RunRecord, RunStore, now
    from repro.synth.compiler import DesignCompiler
    from repro.track import resolve_ref

    record = RunRecord(
        figure=BENCH_FIGURE,
        commit=resolve_ref(commit),
        result=bench_result(contexts, seed, kernel),
        library=DesignCompiler().library.canonical_hash(),
        created_at=now(),
    )
    return RunStore(store_dir).put(record)
