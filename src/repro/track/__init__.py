"""``repro.track`` -- cross-commit regression tracking for flow runs.

This package is the command-line face of the run store
(:mod:`repro.flow.store`)::

    python -m repro.track record fig5 --scale small   # run + persist
    python -m repro.track list                        # what is stored
    python -m repro.track diff HEAD~1 HEAD            # compare commits
    python -m repro.track report --last 5             # sparkline trends
    python -m repro.track gc --max-bytes 500M         # compile-cache GC

``record`` runs a figure driver (or the per-pass benchmark) and
stores its complete :class:`~repro.expts.common.ExperimentResult` --
every figure point plus per-pass wall-time totals -- under the
resolved commit.  ``diff`` compares two stored commits point-by-point
and pass-by-pass and exits non-zero when a regression exceeds the
thresholds, which is what the CI gate runs.  Figure records inherit
the compile cache, so re-recording an unchanged commit performs zero
synthesis compiles and reproduces the stored timings exactly; bench
records always execute (their wall times are the payload).

See ``docs/cli.md`` for the full command reference.
"""

from __future__ import annotations

import argparse
import datetime
import subprocess
import sys
import time

from repro.flow import CompileCache, default_workers, diff_runs
from repro.flow.store import DEFAULT_STORE_DIR, RunRecord, RunStore, StoreError
from repro.track.bench import BENCH_FIGURE, run_pass_bench
from repro.track.report import build_report, cmd_report

#: Figure drivers the ``record`` subcommand can run, in run order.
FIGURE_NAMES = (
    "fig5", "fig6", "fig8", "fig9", "techsweep", "replay", "prefixgrid",
)

#: Default regression thresholds: areas are deterministic, so any
#: growth beyond rounding is suspect; wall clocks are noisy, so only
#: large relative slowdowns of non-trivial passes trip the gate.
DEFAULT_AREA_PCT = 1.0
DEFAULT_TIME_PCT = 50.0
DEFAULT_MIN_TIME_S = 0.05


def resolve_ref(ref: str) -> str:
    """Resolve a git ref to a full commit sha via ``git rev-parse``.

    Outside a git checkout (or for a label like ``worktree`` that
    names no commit), the ref is returned unchanged -- the store keys
    on strings, not on git objects, so labelled runs still work.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--verify", "--quiet", f"{ref}^{{commit}}"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return ref
    resolved = proc.stdout.strip()
    return resolved if proc.returncode == 0 and resolved else ref


def worktree_dirty() -> bool:
    """Does the current checkout carry uncommitted *tracked* changes?

    Untracked files are ignored deliberately: the run store and the
    compile cache themselves appear as untracked directories on a
    perfectly clean checkout, and untracked files cannot change what
    committed code computes.  Best effort: outside a git checkout (or
    when git itself fails) the answer is False -- callers use this to
    *label* records, never to gate them.
    """
    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=no"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return False
    return proc.returncode == 0 and bool(proc.stdout.strip())


def _figures_for(names: list[str]) -> list[str]:
    expanded: list[str] = []
    for name in names:
        targets = (
            list(FIGURE_NAMES) + [BENCH_FIGURE] if name == "all" else [name]
        )
        for target in targets:
            if target not in expanded:
                expanded.append(target)
    return expanded


def _run_figure(name: str, scale: str, workers: int, cache) -> "object":
    # Imported here so ``track list``/``diff``/``gc`` stay fast.
    from repro.expts import (
        run_fig5,
        run_fig6,
        run_fig8,
        run_fig9,
        run_prefixgrid,
        run_replay,
        run_techsweep,
    )

    runners = {
        "fig5": run_fig5, "fig6": run_fig6,
        "fig8": run_fig8, "fig9": run_fig9,
        "techsweep": run_techsweep, "replay": run_replay,
        "prefixgrid": run_prefixgrid,
    }
    return runners[name](scale=scale, workers=workers, cache=cache)


def cmd_record(args) -> int:
    """Run figure/bench sweeps and persist them under one commit."""
    from repro.flow.store import now
    from repro.synth.compiler import DesignCompiler

    store = RunStore(args.store_dir)
    commit = resolve_ref(args.commit)
    if args.commit == "HEAD" and commit != args.commit and worktree_dirty():
        # Not a hard stop -- docs tell users to record from clean
        # checkouts, and tests record under explicit labels -- but a
        # record silently keyed to a sha its tree does not match is
        # exactly the misread `track diff` exists to prevent.
        print(
            f"warning: recording HEAD ({commit[:12]}) from a dirty "
            f"worktree; uncommitted changes will be stored under the "
            f"clean commit sha (use --commit LABEL to key them apart)"
        )
    workers = args.jobs if args.jobs > 0 else default_workers()
    cache = None if args.no_cache else CompileCache(args.cache_dir)
    library_hash = DesignCompiler().library.canonical_hash()

    for name in _figures_for(args.figures):
        started = time.time()
        if name == BENCH_FIGURE:
            # Always executed, never cached: the timings are the point.
            result = run_pass_bench(kernel=args.kernel)
            scale = ""
        else:
            result = _run_figure(name, args.scale, workers, cache)
            scale = args.scale
        result.meta.setdefault("scale", scale)
        if name in ("techsweep", "replay", "prefixgrid"):
            # These sweeps map against every registered library; their
            # records must guard on all of them, not just the default.
            from repro.expts.techsweep import swept_libraries_hash

            figure_library = swept_libraries_hash(
                tuple(result.meta["libraries"])
            )
        else:
            figure_library = library_hash
        record = RunRecord(
            figure=name,
            commit=commit,
            result=result,
            scale=scale,
            library=figure_library,
            created_at=now(),
        )
        path = store.put(record)
        print(
            f"[{name}] recorded {len(result.points)} point(s), "
            f"{len(result.pass_totals)} pass total(s) at commit "
            f"{commit[:12]} in {time.time() - started:.1f}s -> {path}"
        )
        if cache is not None and name != BENCH_FIGURE:
            print(f"[{name}] {cache.stats_line()}")
    return 0


def cmd_list(args) -> int:
    """Print every stored record, oldest commit first."""
    store = RunStore(args.store_dir)
    rows = list(store.entries())
    if not rows:
        print(f"run store {store.root} is empty")
        return 0
    for record in rows:
        stamp = datetime.datetime.fromtimestamp(
            record.created_at
        ).strftime("%Y-%m-%d %H:%M:%S")
        scale = f" scale={record.scale}" if record.scale else ""
        print(
            f"{record.commit[:12]}  {record.figure:<12} {stamp}{scale}  "
            f"{len(record.result.points)} point(s), "
            f"{len(record.result.pass_totals)} pass total(s)"
        )
    return 0


def cmd_diff(args) -> int:
    """Compare two commits' stored runs; non-zero exit on regression."""
    store = RunStore(args.store_dir)
    ref_a = resolve_ref(args.ref_a)
    ref_b = resolve_ref(args.ref_b)
    figures = args.figure or sorted(
        set(store.figures(ref_a)) | set(store.figures(ref_b))
    )
    if not figures:
        print(
            f"no records for {args.ref_a} ({ref_a[:12]}) or "
            f"{args.ref_b} ({ref_b[:12]}) in {store.root}; "
            f"run `python -m repro.track record` first"
        )
        return 2 if args.strict else 0

    missing = False
    regressed = False
    for figure in figures:
        baseline = store.get(ref_a, figure)
        current = store.get(ref_b, figure)
        if baseline is None or current is None:
            side = args.ref_a if baseline is None else args.ref_b
            print(f"== {figure}: no record at {side} -- skipped ==")
            missing = True
            continue
        diff = diff_runs(baseline, current)
        print(
            diff.render(
                args.max_area_pct, args.max_time_pct, args.min_time_s,
                delay_threshold_pct=args.max_delay_pct,
            )
        )
        over = (
            diff.area_regressions(args.max_area_pct)
            or diff.time_regressions(args.max_time_pct, args.min_time_s)
            or (
                args.max_delay_pct is not None
                and diff.delay_regressions(args.max_delay_pct)
            )
        )
        if args.same_structure:
            # Byte-identity gate: the two runs must have done the
            # same *work* -- same figure points, same call/AND-delta
            # counters -- with only wall clocks free to move.  This is
            # how CI checks that kernel backends are result-invisible.
            drift = (
                diff.changed_points()
                or diff.structural_changes()
                or diff.incomplete
            )
            if drift:
                print(
                    f"!! --same-structure: {figure} did different work "
                    f"between {args.ref_a} and {args.ref_b}"
                )
                regressed = True
        if over:
            regressed = True
    if regressed and not args.warn_only:
        delay_clause = (
            ""
            if args.max_delay_pct is None
            else f", delay > {args.max_delay_pct}%"
        )
        print(
            f"REGRESSION: thresholds exceeded "
            f"(area > {args.max_area_pct}%, time > {args.max_time_pct}%"
            f"{delay_clause})"
        )
        return 1
    if missing and args.strict:
        return 2
    return 0


def _parse_size(text: str) -> int:
    """Parse a non-negative byte size with an optional K/M/G suffix
    (``500M``)."""
    scale = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    suffix = text[-1:].upper()
    try:
        if suffix in scale:
            size = int(float(text[:-1]) * scale[suffix])
        else:
            size = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid size {text!r} (want bytes or a K/M/G suffix)"
        ) from None
    if size < 0:
        raise argparse.ArgumentTypeError(f"size must be >= 0, got {text!r}")
    return size


def _parse_days(text: str) -> float:
    """Parse a non-negative day count."""
    try:
        days = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid day count {text!r}"
        ) from None
    if days < 0:
        raise argparse.ArgumentTypeError(
            f"day count must be >= 0, got {text!r}"
        )
    return days


def cmd_gc(args) -> int:
    """Sweep the compile cache by age and size budget."""
    if args.max_bytes is None and args.max_age_days is None:
        print("gc: nothing to do (give --max-bytes and/or --max-age-days)")
        return 2
    cache = CompileCache(args.cache_dir)
    stats = cache.sweep(
        max_bytes=args.max_bytes, max_age_days=args.max_age_days
    )
    print(f"{args.cache_dir}: {stats}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.track",
        description="Record, list, and diff flow runs across commits.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store_dir(p):
        p.add_argument(
            "--store-dir", default=DEFAULT_STORE_DIR, metavar="DIR",
            help="run store directory (default: %(default)s)",
        )

    record = sub.add_parser(
        "record", help="run figure/bench sweeps and store the results"
    )
    record.add_argument(
        "figures", nargs="+",
        choices=sorted(FIGURE_NAMES) + [BENCH_FIGURE, "bench", "all"],
        help="figure drivers and/or the per-pass benchmark",
    )
    record.add_argument(
        "--scale", default="small", choices=["small", "medium", "paper"],
        help="sweep size for the figure drivers (default: %(default)s)",
    )
    record.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (1: serial; 0: one per core)",
    )
    record.add_argument(
        "--commit", default="HEAD", metavar="REF",
        help="commit (or label) to store the run under; git refs are "
        "resolved to full shas (default: %(default)s)",
    )
    record.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="compile cache shared with python -m repro.expts "
        "(default: %(default)s)",
    )
    record.add_argument(
        "--no-cache", action="store_true",
        help="disable the compile cache for this record",
    )
    record.add_argument(
        "--kernel", default=None, choices=["pure", "numpy", "auto"],
        help="pin the truth-table kernel backend for the bench "
        "figure's kernel-aware passes (default: REPRO_KERNEL/auto "
        "resolution); results are byte-identical across backends, so "
        "two records differing only here diff with zero structural "
        "deltas",
    )
    add_store_dir(record)
    record.set_defaults(func=cmd_record)

    listing = sub.add_parser("list", help="list stored runs")
    add_store_dir(listing)
    listing.set_defaults(func=cmd_list)

    diff = sub.add_parser(
        "diff", help="compare two commits' stored runs"
    )
    diff.add_argument("ref_a", help="baseline commit (git ref or label)")
    diff.add_argument("ref_b", help="current commit (git ref or label)")
    diff.add_argument(
        "--figure", action="append", metavar="NAME",
        help="restrict to this figure (repeatable; default: every "
        "figure either commit recorded)",
    )
    diff.add_argument(
        "--max-area-pct", type=float, default=DEFAULT_AREA_PCT,
        metavar="PCT",
        help="flag figure points whose measured value grew more than "
        "this percentage (default: %(default)s)",
    )
    diff.add_argument(
        "--max-time-pct", type=float, default=DEFAULT_TIME_PCT,
        metavar="PCT",
        help="flag passes whose total wall time grew more than this "
        "percentage (default: %(default)s)",
    )
    diff.add_argument(
        "--max-delay-pct", type=float, default=None, metavar="PCT",
        help="additionally flag figure points whose achieved critical "
        "delay grew more than this percentage, or that stopped "
        "meeting their clock target (default: timing gate off; "
        "points recorded without timing are exempt)",
    )
    diff.add_argument(
        "--min-time-s", type=float, default=DEFAULT_MIN_TIME_S,
        metavar="SEC",
        help="ignore wall-time changes of passes faster than this on "
        "both sides (default: %(default)s)",
    )
    diff.add_argument(
        "--same-structure", action="store_true",
        help="additionally require the two runs to have done "
        "identical work (no figure-point changes, no pass call/AND "
        "count drift; wall times remain free) -- the byte-identity "
        "gate for kernel-backend records",
    )
    diff.add_argument(
        "--warn-only", action="store_true",
        help="report regressions but exit 0 (CI soft-launch mode)",
    )
    diff.add_argument(
        "--strict", action="store_true",
        help="exit 2 when a compared record is missing instead of "
        "skipping it",
    )
    add_store_dir(diff)
    diff.set_defaults(func=cmd_diff)

    report = sub.add_parser(
        "report",
        help="sparkline trends of stored runs across recent commits",
    )
    report.add_argument(
        "--last", type=int, default=5, metavar="N",
        help="cover the N most recent recorded commits "
        "(default: %(default)s)",
    )
    report.add_argument(
        "--figure", action="append", metavar="NAME",
        help="restrict to this figure (repeatable; default: every "
        "figure the covered commits recorded)",
    )
    report.add_argument(
        "--top", type=int, default=6, metavar="K",
        help="show the K heaviest passes per figure "
        "(default: %(default)s)",
    )
    report.add_argument(
        "--out", default=None, metavar="FILE",
        help="append the markdown report to this file instead of "
        "printing it",
    )
    add_store_dir(report)
    report.set_defaults(func=cmd_report)

    gc = sub.add_parser(
        "gc", help="evict old/oversized compile-cache entries"
    )
    gc.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="compile cache to sweep (default: %(default)s)",
    )
    gc.add_argument(
        "--max-bytes", type=_parse_size, default=None, metavar="SIZE",
        help="size budget (bytes, or with a K/M/G suffix: 500M)",
    )
    gc.add_argument(
        "--max-age-days", type=_parse_days, default=None, metavar="DAYS",
        help="evict entries older than this many days",
    )
    gc.set_defaults(func=cmd_gc)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # `bench` is an alias for the stored figure name, on both the
    # record targets and diff's --figure filters.
    for attr in ("figures", "figure"):
        names = getattr(args, attr, None)
        if names is not None:
            setattr(
                args,
                attr,
                [BENCH_FIGURE if n == "bench" else n for n in names],
            )
    try:
        return args.func(args)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


__all__ = [
    "BENCH_FIGURE",
    "FIGURE_NAMES",
    "build_parser",
    "build_report",
    "main",
    "resolve_ref",
    "run_pass_bench",
]
