"""Sparkline trend report over the run store.

``python -m repro.track report`` renders, as markdown, how the
stored runs moved across the last N recorded commits:

* per figure, each series' geomean y/x ratio (area ratios for the
  scatter figures, executed fraction for ``prefixgrid``);
* per figure, the total wall time of the heaviest passes;
* per figure, the prefix-resume counters a run recorded
  (``meta["prefix_hits"]``/``meta["prefix_passes_skipped"]``).

Each row is one eight-level Unicode sparkline, min-max normalised
*within the row* -- the shape of a trend, not an absolute scale; the
latest value is printed beside it in full precision.  Commits a
figure never recorded under render as ``·`` so gaps stay visible.
"""

from __future__ import annotations

import math

from repro.flow.store import RunStore

#: Eight-level bars, lowest to highest.
SPARK = "▁▂▃▄▅▆▇█"

#: Placeholder for commits with no value for a row.
GAP = "·"


def sparkline(values: "list[float | None]") -> str:
    """Render one row of values as a sparkline string.

    Values are min-max normalised across the row's *present* entries;
    a constant row renders as mid-level bars (no trend to show), and
    ``None`` entries (missing records) render as :data:`GAP`.
    """
    present = [v for v in values if v is not None and math.isfinite(v)]
    lo = min(present) if present else 0.0
    hi = max(present) if present else 0.0
    span = hi - lo
    cells = []
    for value in values:
        if value is None or not math.isfinite(value):
            cells.append(GAP)
        elif span <= 0:
            cells.append(SPARK[len(SPARK) // 2])
        else:
            level = int((value - lo) / span * (len(SPARK) - 1))
            cells.append(SPARK[level])
    return "".join(cells)


def _latest(values: "list[float | None]") -> "float | None":
    for value in reversed(values):
        if value is not None and math.isfinite(value):
            return value
    return None


def _geomean_rows(records: list) -> "dict[str, list[float | None]]":
    """Per-series geomean trend rows, series in first-seen order."""
    names: list[str] = []
    for record in records:
        if record is None:
            continue
        for name in record.result.series_names():
            if name not in names:
                names.append(name)
    rows = {}
    for name in names:
        row: "list[float | None]" = []
        for record in records:
            if record is None or name not in record.result.series_names():
                row.append(None)
            else:
                row.append(record.result.ratio_stats(name).geomean)
        rows[name] = row
    return rows


def _pass_rows(
    records: list, top: int
) -> "dict[str, list[float | None]]":
    """Wall-time trend rows for the ``top`` heaviest passes (ranked by
    their most recent recorded total)."""
    latest_by_pass: dict[str, float] = {}
    for record in records:  # later records win the ranking value
        if record is None:
            continue
        for name, totals in record.result.pass_totals.items():
            latest_by_pass[name] = totals.wall_time_s
    ranked = sorted(
        latest_by_pass, key=lambda name: -latest_by_pass[name]
    )[:top]
    rows = {}
    for name in ranked:
        rows[name] = [
            None
            if record is None or name not in record.result.pass_totals
            else record.result.pass_totals[name].wall_time_s
            for record in records
        ]
    return rows


def build_report(
    store: RunStore,
    last: int = 5,
    figures: "list[str] | None" = None,
    top: int = 6,
) -> str:
    """The full markdown report over ``store``'s most recent commits.

    Args:
        store: the run store to read.
        last: how many of the most recent commits to cover.
        figures: restrict to these figure names (default: every
            figure any covered commit recorded).
        top: how many passes to show per figure (heaviest first).
    """
    commits = store.commits()[-last:]
    if not commits:
        return f"run store {store.root} is empty -- nothing to report\n"
    available = sorted(
        {figure for commit in commits for figure in store.figures(commit)}
    )
    selected = [f for f in (figures or available) if f in available]

    lines = [
        f"# Run trends -- last {len(commits)} recorded commit(s)",
        "",
        "Commits, oldest to newest: "
        + ", ".join(f"`{commit[:12]}`" for commit in commits),
        "",
    ]
    if not selected:
        wanted = ", ".join(figures or [])
        lines += [f"no records for figure(s) {wanted} in these commits", ""]
        return "\n".join(lines)

    for figure in selected:
        records = [store.get(commit, figure) for commit in commits]
        lines += [f"## {figure}", ""]

        geomeans = _geomean_rows(records)
        if geomeans:
            lines += [
                "| series geomean (y/x) | trend | latest |",
                "|---|---|---|",
            ]
            for name, row in geomeans.items():
                latest = _latest(row)
                shown = "-" if latest is None else f"{latest:.3f}"
                lines.append(f"| {name} | {sparkline(row)} | {shown} |")
            lines.append("")

        passes = _pass_rows(records, top)
        if passes:
            lines += [
                "| pass wall time (s) | trend | latest |",
                "|---|---|---|",
            ]
            for name, row in passes.items():
                latest = _latest(row)
                shown = "-" if latest is None else f"{latest:.3f}"
                lines.append(f"| {name} | {sparkline(row)} | {shown} |")
            lines.append("")

        hits = [
            None
            if record is None
            else float(record.result.meta.get("prefix_hits", 0))
            for record in records
        ]
        if any(hit for hit in hits if hit):
            skipped = [
                None
                if record is None
                else float(
                    record.result.meta.get("prefix_passes_skipped", 0)
                )
                for record in records
            ]
            lines.append(
                f"prefix resumes: {sparkline(hits)} "
                f"(latest {int(_latest(hits) or 0)} compile(s) resumed, "
                f"{int(_latest(skipped) or 0)} pass(es) skipped)"
            )
            lines.append("")
    return "\n".join(lines)


def cmd_report(args) -> int:
    """Render the trend report; ``--out`` appends it to a file."""
    text = build_report(
        RunStore(args.store_dir),
        last=args.last,
        figures=args.figure,
        top=args.top,
    )
    if args.out:
        with open(args.out, "a", encoding="utf-8") as handle:
            handle.write(text)
            if not text.endswith("\n"):
                handle.write("\n")
        print(f"appended report to {args.out}")
    else:
        print(text)
    return 0
