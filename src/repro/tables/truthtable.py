"""Multi-output truth tables.

A :class:`TruthTable` is the project's canonical description of a
combinational function: ``num_inputs`` address bits select a row, and
each of the ``num_outputs`` columns is stored as an independent
truth-table int.  This is exactly the "table of bits" the paper argues
a chip generator should emit, so the same object doubles as:

* the contents of a configuration memory in the flexible designs, and
* the specification that the direct (SOP / case-statement)
  implementations are generated from.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.tables.bits import all_ones, popcount, tt_support


@dataclass(frozen=True, slots=True)
class TruthTable:
    """An ``num_inputs``-input, ``num_outputs``-output Boolean function.

    Attributes:
        num_inputs: number of address (input) bits.
        columns: one truth-table int per output, LSB-first outputs.
    """

    num_inputs: int
    columns: tuple[int, ...]

    def __post_init__(self) -> None:
        universe = all_ones(self.num_inputs)
        for index, column in enumerate(self.columns):
            if column < 0 or column & ~universe:
                raise ValueError(f"column {index} exceeds 2^{1 << self.num_inputs} bits")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_rows(cls, num_inputs: int, rows: list[int], width: int) -> TruthTable:
        """Build from a row-per-address list of ``width``-bit words.

        ``rows[i]`` is the output word for input value ``i``.  Missing
        rows (when ``len(rows) < 2**num_inputs``) default to zero.
        """
        depth = 1 << num_inputs
        if len(rows) > depth:
            raise ValueError(f"{len(rows)} rows exceed table depth {depth}")
        columns = [0] * width
        word_mask = (1 << width) - 1
        for address, word in enumerate(rows):
            if word & ~word_mask:
                raise ValueError(f"row {address} wider than {width} bits")
            for bit in range(width):
                if word >> bit & 1:
                    columns[bit] |= 1 << address
        return cls(num_inputs, tuple(columns))

    @classmethod
    def from_function(cls, num_inputs: int, width: int, func) -> TruthTable:
        """Build by evaluating ``func(address) -> int`` on every row."""
        rows = [func(address) for address in range(1 << num_inputs)]
        return cls.from_rows(num_inputs, rows, width)

    @classmethod
    def random(cls, num_inputs: int, num_outputs: int, rng: random.Random) -> TruthTable:
        """A uniformly random function (each output bit is a coin flip)."""
        depth_bits = 1 << num_inputs
        columns = tuple(rng.getrandbits(depth_bits) for _ in range(num_outputs))
        return cls(num_inputs, columns)

    @classmethod
    def random_sparse(
        cls,
        num_inputs: int,
        num_outputs: int,
        ones_fraction: float,
        rng: random.Random,
    ) -> TruthTable:
        """A random function where each output bit is 1 with the given bias.

        Sparse tables model realistic control tables, which assert few
        signals per row, unlike the dense coin-flip tables.
        """
        if not 0.0 <= ones_fraction <= 1.0:
            raise ValueError("ones_fraction must lie in [0, 1]")
        depth = 1 << num_inputs
        columns = []
        for _ in range(num_outputs):
            column = 0
            for address in range(depth):
                if rng.random() < ones_fraction:
                    column |= 1 << address
            columns.append(column)
        return cls(num_inputs, tuple(columns))

    # ------------------------------------------------------------------
    # The ControllerIR protocol (repro.flow.core)
    # ------------------------------------------------------------------
    def ir_hash(self) -> str:
        """Stable content hash (the table *is* its own content)."""
        digest = hashlib.sha256()
        digest.update(repr(("table", self.num_inputs, self.columns)).encode())
        return digest.hexdigest()

    def ir_stats(self) -> dict:
        """Cheap stats for frontend instrumentation (``CtrlStats``)."""
        return {
            "kind": "table",
            "items": self.depth,
            "bits": self.num_outputs,
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_outputs(self) -> int:
        return len(self.columns)

    @property
    def depth(self) -> int:
        """Number of rows (2**num_inputs)."""
        return 1 << self.num_inputs

    def row(self, address: int) -> int:
        """The output word stored at ``address``."""
        if not 0 <= address < self.depth:
            raise IndexError(f"address {address} out of range")
        word = 0
        for bit, column in enumerate(self.columns):
            if column >> address & 1:
                word |= 1 << bit
        return word

    def rows(self) -> list[int]:
        """All rows, index = address."""
        return [self.row(address) for address in range(self.depth)]

    def evaluate(self, address: int) -> int:
        """Alias of :meth:`row` to emphasise functional reading."""
        return self.row(address)

    def column_ones(self, output: int) -> int:
        """Number of ON minterms of one output."""
        return popcount(self.columns[output])

    def support(self, output: int) -> tuple[int, ...]:
        """Input variables output ``output`` actually depends on."""
        return tt_support(self.columns[output], self.num_inputs)

    def is_constant(self, output: int) -> bool:
        column = self.columns[output]
        return column == 0 or column == all_ones(self.num_inputs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return self.num_inputs == other.num_inputs and self.columns == other.columns

    def __hash__(self) -> int:
        return hash((self.num_inputs, self.columns))

    def __str__(self) -> str:
        lines = [f"TruthTable({self.num_inputs} in, {self.num_outputs} out)"]
        if self.num_inputs <= 5:
            for address in range(self.depth):
                bits = format(address, f"0{self.num_inputs}b")
                word = format(self.row(address), f"0{self.num_outputs}b")
                lines.append(f"  {bits} -> {word}")
        return "\n".join(lines)
