"""Bit-twiddling helpers for integer-encoded truth tables.

A truth table over ``n`` variables is an int with ``2**n`` bits; bit
``i`` is the function value for the input minterm ``i``.  These helpers
implement the standard cofactor/support algebra on that encoding.
"""

from functools import lru_cache

_WORD = (1 << 64) - 1


def popcount(x: int) -> int:
    """Number of set bits in ``x`` (x must be non-negative)."""
    return x.bit_count()


def all_ones(num_vars: int) -> int:
    """The constant-1 truth table over ``num_vars`` variables."""
    return (1 << (1 << num_vars)) - 1


@lru_cache(maxsize=None)
def var_mask(var: int, num_vars: int) -> int:
    """Truth table of the projection function ``x_var`` over ``num_vars``.

    Bit ``i`` of the result is 1 exactly when bit ``var`` of ``i`` is 1.
    """
    if not 0 <= var < num_vars:
        raise ValueError(f"var {var} out of range for {num_vars} variables")
    block = 1 << var  # run length of zeros, then of ones
    ones = ((1 << block) - 1) << block  # e.g. 0b1100 for var=1
    pattern = 0
    total_bits = 1 << num_vars
    stride = block * 2
    for offset in range(0, total_bits, stride):
        pattern |= ones << offset
    return pattern


def cofactor1(table: int, var: int, num_vars: int) -> int:
    """Positive cofactor: the table with ``x_var`` fixed to 1.

    The result is still expressed over all ``num_vars`` variables; the
    cofactored variable simply no longer matters.
    """
    mask = var_mask(var, num_vars)
    hi = table & mask
    return hi | (hi >> (1 << var))


def cofactor0(table: int, var: int, num_vars: int) -> int:
    """Negative cofactor: the table with ``x_var`` fixed to 0."""
    mask = var_mask(var, num_vars)
    lo = table & ~mask
    return lo | (lo << (1 << var))


def tt_depends_on(table: int, var: int, num_vars: int) -> bool:
    """True when the function actually depends on ``x_var``."""
    return cofactor0(table, var, num_vars) != cofactor1(table, var, num_vars)


def tt_support(table: int, num_vars: int) -> tuple[int, ...]:
    """Indices of the variables the function depends on, ascending."""
    return tuple(
        var for var in range(num_vars) if tt_depends_on(table, var, num_vars)
    )


def minterm_iter(table: int):
    """Yield the indices of set bits of ``table``, ascending."""
    while table:
        low = table & -table
        yield low.bit_length() - 1
        table ^= low
