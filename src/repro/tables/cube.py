"""Product terms (cubes) over a fixed set of Boolean variables.

A cube fixes some subset of the variables to constants and leaves the
rest free.  It is stored as a ``(mask, value)`` pair of ints: bit ``i``
of ``mask`` is 1 when variable ``i`` is bound, in which case bit ``i``
of ``value`` gives the required polarity.  Unbound positions of
``value`` are kept at 0 so that equal cubes compare equal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tables.bits import all_ones, var_mask


@dataclass(frozen=True, slots=True)
class Cube:
    """An implicant: a conjunction of literals.

    Attributes:
        num_vars: size of the variable universe the cube lives in.
        mask: bound-variable bitmap.
        value: polarity bitmap (subset of ``mask``).
    """

    num_vars: int
    mask: int
    value: int

    def __post_init__(self) -> None:
        universe = (1 << self.num_vars) - 1
        if self.mask & ~universe:
            raise ValueError("cube mask uses variables outside the universe")
        if self.value & ~self.mask:
            raise ValueError("cube value sets bits outside its mask")

    @classmethod
    def universal(cls, num_vars: int) -> Cube:
        """The cube with no literals (covers everything)."""
        return cls(num_vars, 0, 0)

    @classmethod
    def from_string(cls, text: str) -> Cube:
        """Parse a PLA-style cube string, e.g. ``"1-0"``.

        The leftmost character is the highest-numbered variable, matching
        the way binary numbers are written.
        """
        num_vars = len(text)
        mask = 0
        value = 0
        for position, char in enumerate(text):
            var = num_vars - 1 - position
            if char == "1":
                mask |= 1 << var
                value |= 1 << var
            elif char == "0":
                mask |= 1 << var
            elif char != "-":
                raise ValueError(f"bad cube character {char!r}")
        return cls(num_vars, mask, value)

    @classmethod
    def of_minterm(cls, num_vars: int, minterm: int) -> Cube:
        """The full cube selecting exactly one minterm."""
        universe = (1 << num_vars) - 1
        return cls(num_vars, universe, minterm & universe)

    def num_literals(self) -> int:
        """Number of bound variables (the cube's literal count)."""
        return self.mask.bit_count()

    def literals(self) -> tuple[tuple[int, bool], ...]:
        """The cube as ``(variable, polarity)`` pairs, ascending by var."""
        pairs = []
        for var in range(self.num_vars):
            bit = 1 << var
            if self.mask & bit:
                pairs.append((var, bool(self.value & bit)))
        return tuple(pairs)

    def contains(self, minterm: int) -> bool:
        """True when the cube covers the given minterm."""
        return (minterm & self.mask) == self.value

    def with_literal(self, var: int, polarity: bool) -> Cube:
        """A copy of the cube with one more literal bound."""
        bit = 1 << var
        if self.mask & bit:
            raise ValueError(f"variable {var} already bound in cube")
        value = self.value | bit if polarity else self.value
        return Cube(self.num_vars, self.mask | bit, value)

    def without_literal(self, var: int) -> Cube:
        """A copy of the cube with variable ``var`` freed."""
        bit = 1 << var
        if not self.mask & bit:
            raise ValueError(f"variable {var} not bound in cube")
        return Cube(self.num_vars, self.mask & ~bit, self.value & ~bit)

    def implies(self, other: Cube) -> bool:
        """True when this cube is contained in ``other``."""
        if other.mask & ~self.mask:
            return False
        return (self.value & other.mask) == other.value

    def intersects(self, other: Cube) -> bool:
        """True when the two cubes share at least one minterm."""
        common = self.mask & other.mask
        return (self.value & common) == (other.value & common)

    def truth_table(self) -> int:
        """The cube's characteristic function as a truth-table int."""
        table = all_ones(self.num_vars)
        for var in range(self.num_vars):
            bit = 1 << var
            if self.mask & bit:
                pattern = var_mask(var, self.num_vars)
                table &= pattern if self.value & bit else ~pattern
        return table

    def __str__(self) -> str:
        chars = []
        for position in range(self.num_vars - 1, -1, -1):
            bit = 1 << position
            if not self.mask & bit:
                chars.append("-")
            elif self.value & bit:
                chars.append("1")
            else:
                chars.append("0")
        return "".join(chars) if chars else "(true)"


def cover_truth_table(cubes, num_vars: int) -> int:
    """Union of the characteristic functions of ``cubes``."""
    table = 0
    for cube in cubes:
        table |= cube.truth_table()
    return table
