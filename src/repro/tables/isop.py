"""Irredundant sum-of-products covers via the Minato-Morreale procedure.

Given an ON-set ``on`` and a DC-set ``dc`` (as truth-table ints), the
:func:`isop` routine returns a list of :class:`~repro.tables.cube.Cube`
whose union covers every ON minterm, touches no OFF minterm, and in
which no cube is redundant.  This is the workhorse two-level minimizer
of the project: it is what the "direct sum-of-products" implementations
in the Fig. 5/Fig. 6 experiments are generated from, and it is also used
by the AIG rewriting pass to re-express small logic cones.

The recursion is the classic one: split on a variable, compute the
cubes needed exclusively in each half, then cover what remains with
cubes that do not mention the split variable at all.
"""

from __future__ import annotations

from repro.tables.bits import all_ones, cofactor0, cofactor1, var_mask
from repro.tables.cube import Cube


def isop(on: int, dc: int, num_vars: int) -> list[Cube]:
    """Compute an irredundant SOP cover of ``on`` using ``dc`` freely.

    Args:
        on: truth table of minterms that must be covered.
        dc: truth table of minterms that may be covered.
        num_vars: variable universe size.

    Returns:
        Cubes whose union ``f`` satisfies ``on <= f <= on | dc``.

    Raises:
        ValueError: if ``on`` and ``dc`` overlap or exceed the universe.
    """
    universe = all_ones(num_vars)
    if on & ~universe or dc & ~universe:
        raise ValueError("truth table wider than the variable universe")
    if on & dc:
        raise ValueError("ON-set and DC-set overlap")
    cubes, _ = _isop(on, on | dc, num_vars, num_vars)
    return cubes


def _isop(lower: int, upper: int, top: int, num_vars: int) -> tuple[list[Cube], int]:
    """Recursive core: cover ``lower`` within ``upper``.

    ``top`` bounds the variables that may still be split on (all
    variables >= top are known to not matter).  Returns the cover and
    its characteristic function.
    """
    if lower == 0:
        return [], 0
    if upper == all_ones(num_vars):
        return [Cube.universal(num_vars)], all_ones(num_vars)

    # Find the highest variable on which either bound still depends.
    split = -1
    for var in range(top - 1, -1, -1):
        if (
            cofactor0(lower, var, num_vars) != cofactor1(lower, var, num_vars)
            or cofactor0(upper, var, num_vars) != cofactor1(upper, var, num_vars)
        ):
            split = var
            break
    if split < 0:
        # Neither bound depends on any remaining variable; lower != 0 and
        # upper != 1 cannot both hold for constant tables with lower<=upper.
        # lower != 0 means lower == upper == all ones, handled above.
        raise AssertionError("unreachable: constant bounds not caught")

    lower0 = cofactor0(lower, split, num_vars)
    lower1 = cofactor1(lower, split, num_vars)
    upper0 = cofactor0(upper, split, num_vars)
    upper1 = cofactor1(upper, split, num_vars)

    # Cubes that must carry a negative literal on the split variable:
    # ON minterms of the 0-half that the 1-half's upper bound excludes.
    cubes0, cover0 = _isop(lower0 & ~upper1, upper0, split, num_vars)
    # Symmetrically for the positive literal.
    cubes1, cover1 = _isop(lower1 & ~upper0, upper1, split, num_vars)

    # Whatever ON minterms remain can be covered without the variable.
    remaining = (lower0 & ~cover0) | (lower1 & ~cover1)
    cubes_both, cover_both = _isop(remaining, upper0 & upper1, split, num_vars)

    cubes = [cube.with_literal(split, False) for cube in cubes0]
    cubes += [cube.with_literal(split, True) for cube in cubes1]
    cubes += cubes_both

    pattern = var_mask(split, num_vars)
    cover = (cover0 & ~pattern) | (cover1 & pattern) | cover_both
    return cubes, cover
