"""RTL realisations of truth tables: the two styles Fig. 5 compares.

A :class:`~repro.tables.truthtable.TruthTable` is the controller IR of
a combinational function; this module holds its lowerings to RTL:

* :func:`table_to_rom_rtl` -- the *flexible* style, bound: the
  function as a ROM read (what a generator emits; elaboration
  partially evaluates the ROM into logic by construction);
* :func:`table_to_sop_rtl` -- the *direct* style: per-output two-level
  sum-of-products assignments (what a designer would hand-write),
  minimized by a selectable engine.

These used to live inside the Fig. 5 driver; they moved here when the
frontend became passes, so ``table_rom`` / ``table_minimize`` pipeline
stages and the drivers share one definition.
"""

from __future__ import annotations

from repro.rtl.ast import Const, Expr
from repro.rtl.builder import ModuleBuilder, cat
from repro.rtl.module import Module
from repro.tables.cube import Cube
from repro.tables.espresso import improve_cover
from repro.tables.isop import isop
from repro.tables.qm import minimize_exact
from repro.tables.truthtable import TruthTable

#: The two-level minimizers ``table_to_sop_rtl`` can drive.  ``isop``
#: (Minato-Morreale) is the historical default the Fig. 5 experiments
#: use; ``qm`` is the exact reference; ``espresso`` post-improves the
#: ISOP cover with EXPAND + IRREDUNDANT.
SOP_ENGINES = ("isop", "qm", "espresso")


def table_to_rom_rtl(table: TruthTable, name: str = "table") -> Module:
    """The flexible style, bound: a ROM read."""
    b = ModuleBuilder(name)
    addr = b.input("addr", table.num_inputs)
    rom = b.rom("table", table.num_outputs, table.depth, table.rows())
    b.output("out", rom.read(addr))
    return b.build()


def sop_cover(
    on_set: int, num_inputs: int, engine: str = "isop", dc_set: int = 0
) -> list[Cube]:
    """A two-level cover of one output column via the given engine.

    ``dc_set`` marks rows the cover may treat freely (never-presented
    addresses, from a ``table-dontcare`` fact); every engine already
    accepts an interval ``on <= g <= on | dc``, so the default
    ``dc_set=0`` path is byte-identical to the historical behaviour.
    """
    on = on_set & ~dc_set
    if engine == "isop":
        return isop(on, dc_set, num_inputs)
    if engine == "qm":
        return minimize_exact(on, dc_set, num_inputs)
    if engine == "espresso":
        cubes = isop(on, dc_set, num_inputs)
        return improve_cover(cubes, on, dc_set, num_inputs)
    raise ValueError(
        f"unknown SOP engine {engine!r}; known: {', '.join(SOP_ENGINES)}"
    )


def table_to_sop_rtl(
    table: TruthTable,
    name: str = "sop",
    engine: str = "isop",
    dc_set: int = 0,
) -> Module:
    """The direct style: sum-of-products assignments per output bit.

    ``dc_set`` relaxes every output column at the given row addresses;
    the result is only guaranteed to match the table on rows outside
    ``dc_set`` (the caller owns the claim that the rest never occur).
    """
    b = ModuleBuilder(name)
    addr = b.input("addr", table.num_inputs)
    bits: list[Expr] = []
    for output in range(table.num_outputs):
        bits.append(
            _sop_expr(
                addr, table.columns[output], table.num_inputs, engine, dc_set
            )
        )
    b.output("out", cat(*bits) if len(bits) > 1 else bits[0])
    return b.build()


def _sop_expr(
    addr, on_set: int, num_inputs: int, engine: str, dc_set: int = 0
) -> Expr:
    if on_set & ~dc_set == 0:
        return Const(0, 1)
    terms: list[Expr] = []
    for cube in sop_cover(on_set, num_inputs, engine, dc_set):
        literals = [
            addr[var : var + 1] if polarity else ~addr[var : var + 1]
            for var, polarity in cube.literals()
        ]
        if not literals:
            return Const(1, 1)
        term = literals[0]
        for lit in literals[1:]:
            term = term & lit
        terms.append(term)
    result = terms[0]
    for term in terms[1:]:
        result = result | term
    return result
