"""Two-level logic substrate: truth tables, cubes, and SOP minimization.

Truth tables for functions of ``n`` inputs are stored as Python integers
with ``2**n`` bits: bit ``i`` holds the function value on the input
assignment whose binary encoding is ``i`` (input 0 is the least
significant address bit).  Python's arbitrary-precision integers make
bitwise set algebra over these tables both compact and fast for the
input counts used anywhere in this project (n <= ~16).

Public API
----------
- :class:`~repro.tables.truthtable.TruthTable` -- multi-output function.
- :class:`~repro.tables.cube.Cube` -- a product term (implicant).
- :class:`~repro.tables.sop.SopCover` -- a sum-of-products cover.
- :func:`~repro.tables.isop.isop` -- Minato-Morreale irredundant SOP.
- :func:`~repro.tables.qm.minimize_exact` -- Quine-McCluskey minimizer.
"""

from repro.tables.bits import (
    all_ones,
    cofactor0,
    cofactor1,
    popcount,
    tt_depends_on,
    tt_support,
    var_mask,
)
from repro.tables.cube import Cube
from repro.tables.espresso import improve_cover
from repro.tables.isop import isop
from repro.tables.qm import minimize_exact
from repro.tables.rtl import SOP_ENGINES, table_to_rom_rtl, table_to_sop_rtl
from repro.tables.sop import SopCover
from repro.tables.truthtable import TruthTable

__all__ = [
    "Cube",
    "improve_cover",
    "SOP_ENGINES",
    "SopCover",
    "TruthTable",
    "table_to_rom_rtl",
    "table_to_sop_rtl",
    "all_ones",
    "cofactor0",
    "cofactor1",
    "isop",
    "minimize_exact",
    "popcount",
    "tt_depends_on",
    "tt_support",
    "var_mask",
]
