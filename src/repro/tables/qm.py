"""Quine-McCluskey exact two-level minimization.

Exact minimization is exponential, so this module is the *reference*
minimizer: the tests use it (and brute force) to validate the much
faster ISOP heuristic, and the synthesis flow uses it only for small
cones.  It computes all prime implicants by iterated merging and then
solves the unate covering problem exactly (branch-and-bound) up to a
configurable size, falling back to a greedy cover above it.
"""

from __future__ import annotations

from repro.tables.bits import all_ones, minterm_iter
from repro.tables.cube import Cube

_EXACT_COVER_LIMIT = 24


def prime_implicants(on: int, dc: int, num_vars: int) -> list[Cube]:
    """All prime implicants of the (ON | DC) set.

    Classic tabular method: start from minterm cubes, repeatedly merge
    cubes differing in one bound literal, and keep the unmerged ones.
    """
    care = on | dc
    if care == 0:
        return []
    if care == all_ones(num_vars):
        return [Cube.universal(num_vars)]

    current: set[tuple[int, int]] = {
        ((1 << num_vars) - 1, m) for m in minterm_iter(care)
    }
    primes: set[tuple[int, int]] = set()
    while current:
        merged: set[tuple[int, int]] = set()
        used: set[tuple[int, int]] = set()
        by_mask: dict[int, list[int]] = {}
        for mask, value in current:
            by_mask.setdefault(mask, []).append(value)
        for mask, values in by_mask.items():
            value_set = set(values)
            for value in values:
                for var in range(num_vars):
                    bit = 1 << var
                    if not mask & bit or value & bit:
                        continue
                    partner = value | bit
                    if partner in value_set:
                        merged.add((mask & ~bit, value))
                        used.add((mask, value))
                        used.add((mask, partner))
        primes |= current - used
        current = merged
    return [Cube(num_vars, mask, value) for mask, value in sorted(primes)]


def minimize_exact(on: int, dc: int, num_vars: int) -> list[Cube]:
    """Minimum-cube SOP cover of ``on`` (ties broken by literal count).

    Args:
        on: ON-set truth table (must be covered).
        dc: DC-set truth table (may be covered).
        num_vars: variable universe size.

    Returns:
        A list of prime-implicant cubes covering exactly ``on`` modulo
        don't-cares.  Exact for up to ``_EXACT_COVER_LIMIT`` ON
        minterms; greedy beyond that.
    """
    if on & dc:
        raise ValueError("ON-set and DC-set overlap")
    if on == 0:
        return []
    primes = prime_implicants(on, dc, num_vars)
    targets = list(minterm_iter(on))
    coverage = [
        frozenset(i for i, m in enumerate(targets) if prime.contains(m))
        for prime in primes
    ]
    if len(targets) <= _EXACT_COVER_LIMIT:
        chosen = _exact_cover(coverage, len(targets), primes)
    else:
        chosen = _greedy_cover(coverage, len(targets))
    return [primes[i] for i in chosen]


def _essential_primes(coverage: list[frozenset[int]], num_targets: int) -> set[int]:
    """Primes that are the sole cover of some minterm."""
    owners: dict[int, list[int]] = {t: [] for t in range(num_targets)}
    for index, covered in enumerate(coverage):
        for target in covered:
            owners[target].append(index)
    return {
        indices[0] for indices in owners.values() if len(indices) == 1
    }


def _exact_cover(
    coverage: list[frozenset[int]], num_targets: int, primes: list[Cube]
) -> list[int]:
    """Branch-and-bound minimum unate cover."""
    essentials = _essential_primes(coverage, num_targets)
    covered = set()
    for index in essentials:
        covered |= coverage[index]
    remaining = frozenset(range(num_targets)) - covered
    candidates = [
        i for i in range(len(coverage)) if i not in essentials and coverage[i] & remaining
    ]
    # Order candidates by decreasing usefulness to tighten the bound early.
    candidates.sort(key=lambda i: (-len(coverage[i] & remaining), primes[i].num_literals()))

    best: list[list[int]] = [list(range(len(coverage)))]  # sentinel: everything

    def cost(selection: list[int]) -> tuple[int, int]:
        return (len(selection), sum(primes[i].num_literals() for i in selection))

    def search(selection: list[int], uncovered: frozenset[int], start: int) -> None:
        if cost(selection) >= cost(best[0]):
            return
        if not uncovered:
            best[0] = list(selection)
            return
        target = min(uncovered)
        for position in range(start, len(candidates)):
            index = candidates[position]
            if target not in coverage[index]:
                continue
            selection.append(index)
            search(selection, uncovered - coverage[index], 0)
            selection.pop()

    search([], remaining, 0)
    return sorted(essentials | set(best[0]))


def _greedy_cover(coverage: list[frozenset[int]], num_targets: int) -> list[int]:
    """Standard greedy set cover: largest marginal coverage first."""
    uncovered = set(range(num_targets))
    chosen: list[int] = []
    while uncovered:
        best_index = max(
            range(len(coverage)), key=lambda i: len(coverage[i] & uncovered)
        )
        gained = coverage[best_index] & uncovered
        if not gained:
            raise AssertionError("primes fail to cover the ON-set")
        chosen.append(best_index)
        uncovered -= gained
    return chosen
