"""Espresso-style cover improvement: EXPAND + IRREDUNDANT.

Not the full Espresso loop -- a post-pass over an existing valid cover
(usually ISOP's output) that applies its two cheapest, always-profitable
steps:

* **expand**: grow each cube by freeing literals while it stays clear
  of the OFF-set, making cubes prime (bigger cubes subsume more and
  cost fewer literals);
* **irredundant**: drop cubes whose ON minterms the rest of the cover
  already handles.

Both steps only ever remove literals or cubes, so the result is never
worse than the input under the (cubes, literals) cost model.  The
direct sum-of-products generators use it when squeezing matters.
"""

from __future__ import annotations

from repro.tables.bits import all_ones
from repro.tables.cube import Cube, cover_truth_table


def expand_cubes(cubes: list[Cube], off: int, num_vars: int) -> list[Cube]:
    """Make every cube prime against the OFF-set.

    Literals are tried highest-variable-first; a literal is freed when
    the grown cube still avoids every OFF minterm.  Cubes that become
    subsumed by an earlier expanded cube are dropped on the fly.
    """
    expanded: list[Cube] = []
    for cube in cubes:
        for var in range(num_vars - 1, -1, -1):
            if not cube.mask >> var & 1:
                continue
            grown = cube.without_literal(var)
            if grown.truth_table() & off == 0:
                cube = grown
        if not any(cube.implies(prior) for prior in expanded):
            expanded.append(cube)
    return expanded


def irredundant_cubes(cubes: list[Cube], on: int, num_vars: int) -> list[Cube]:
    """Remove cubes not needed to cover the ON-set.

    Greedy: cubes are considered smallest-coverage-first, so large
    cubes survive and small patch cubes go first when possible.
    """
    ordered = sorted(
        range(len(cubes)),
        key=lambda i: cubes[i].truth_table().bit_count(),
    )
    keep = set(range(len(cubes)))
    for index in ordered:
        others = [cubes[i] for i in keep if i != index]
        if on & ~cover_truth_table(others, num_vars) == 0:
            keep.discard(index)
    return [cubes[i] for i in sorted(keep)]


def improve_cover(
    cubes: list[Cube], on: int, dc: int, num_vars: int
) -> list[Cube]:
    """EXPAND then IRREDUNDANT; validates the input cover first.

    Args:
        cubes: a cover with ``on <= cover <= on | dc``.
        on: ON-set truth table.
        dc: DC-set truth table.
        num_vars: variable universe size.

    Returns:
        An equally valid cover with no more cubes and no more literals.
    """
    universe = all_ones(num_vars)
    table = cover_truth_table(cubes, num_vars)
    if on & ~table:
        raise ValueError("input cover misses ON minterms")
    if table & ~(on | dc):
        raise ValueError("input cover touches OFF minterms")
    off = universe & ~(on | dc)
    expanded = expand_cubes(cubes, off, num_vars)
    return irredundant_cubes(expanded, on, num_vars)
