"""Sum-of-products covers and their cost model.

A :class:`SopCover` bundles the cubes of one output together with the
bookkeeping the rest of the flow needs: verification against the
specification, literal/cube counting (the classic two-level cost
model), and evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tables.bits import all_ones
from repro.tables.cube import Cube, cover_truth_table
from repro.tables.isop import isop
from repro.tables.qm import minimize_exact

_EXACT_INPUT_LIMIT = 6


@dataclass(frozen=True, slots=True)
class SopCover:
    """A two-level cover of a single-output function."""

    num_vars: int
    cubes: tuple[Cube, ...]

    @classmethod
    def from_truth_table(
        cls, on: int, dc: int, num_vars: int, exact: bool | None = None
    ) -> SopCover:
        """Minimize ``on`` (with don't-cares ``dc``) into a cover.

        ``exact=None`` picks QM for small universes and ISOP otherwise,
        mirroring how a synthesis tool chooses effort by cone size.
        """
        if exact is None:
            exact = num_vars <= _EXACT_INPUT_LIMIT
        if exact:
            cubes = minimize_exact(on, dc, num_vars)
        else:
            cubes = isop(on, dc, num_vars)
        return cls(num_vars, tuple(cubes))

    def truth_table(self) -> int:
        """Characteristic function of the cover."""
        return cover_truth_table(self.cubes, self.num_vars)

    def verify(self, on: int, dc: int) -> bool:
        """Check ``on <= cover <= on | dc``."""
        table = self.truth_table()
        return (on & ~table) == 0 and (table & ~(on | dc)) == 0

    def evaluate(self, minterm: int) -> bool:
        return any(cube.contains(minterm) for cube in self.cubes)

    @property
    def num_cubes(self) -> int:
        return len(self.cubes)

    @property
    def num_literals(self) -> int:
        return sum(cube.num_literals() for cube in self.cubes)

    def is_constant_false(self) -> bool:
        return not self.cubes

    def is_constant_true(self) -> bool:
        return self.truth_table() == all_ones(self.num_vars)

    def __str__(self) -> str:
        if not self.cubes:
            return "0"
        return " + ".join(str(cube) for cube in self.cubes)
