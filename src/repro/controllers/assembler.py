"""The microprogram assembler.

Programs are written symbolically -- labels, field assignments,
sequencing directives -- and assembled into the bit tables the
generator hands to synthesis.  This is the paper's thesis in code: the
*intermediate representation* between the high-level controller
description and hardware is just these tables.

Example::

    prog = Program(fmt)
    prog.label("idle")
    prog.inst(seq=SeqOp.DISPATCH)
    prog.label("rd0")
    prog.inst(cmd="read", unit="pipe0")
    prog.inst(cmd="read", unit="pipe1", seq=SeqOp.JUMP, target="idle")
    image = prog.assemble(addr_bits=5, dispatch=table)

The assembled image also exposes program-level **reachability**
(:meth:`AssembledProgram.reachable_addresses`), which is how a
generator derives state annotations and how the "Manual"
unreachable-state elimination knows what a pinned configuration can
never execute.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.controllers.dispatch import DispatchTable
from repro.controllers.microcode import MicrocodeFormat, SeqOp


def _format_key(format: MicrocodeFormat) -> tuple:
    """A stable, hashable content key for a microcode format."""
    return tuple(
        (
            f.name,
            f.width,
            None if f.values is None else tuple(sorted(f.values.items())),
            f.onehot,
        )
        for f in format.fields
    )


@dataclass
class Instruction:
    """One symbolic microinstruction (pre-assembly)."""

    fields: dict[str, object]
    seq: SeqOp = SeqOp.NEXT
    target: str | int | None = None
    condition: int | str = 0


@dataclass
class AssembledProgram:
    """The bit-level image of a microprogram."""

    format: MicrocodeFormat
    addr_bits: int
    cond_bits: int
    control_words: list[int]
    seq_words: list[tuple[int, int, int]]  # (seq_op, cond_sel, target)
    labels: dict[str, int]
    dispatch: DispatchTable | None = None
    condition_names: dict[str, int] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        return 1 << self.addr_bits

    @property
    def length(self) -> int:
        return len(self.control_words)

    def instruction_words(self) -> list[int]:
        """Full packed words: control ++ seq_op ++ cond_sel ++ target."""
        words = []
        control_width = self.format.width
        for control, (seq_op, cond, target) in zip(
            self.control_words, self.seq_words
        ):
            word = control
            word |= seq_op << control_width
            word |= cond << (control_width + 2)
            word |= target << (control_width + 2 + self.cond_bits)
            words.append(word)
        return words

    @property
    def word_width(self) -> int:
        return self.format.width + 2 + self.cond_bits + self.addr_bits

    def dispatch_rows(self) -> list[int]:
        if self.dispatch is None:
            raise ValueError("program has no dispatch table")
        return self.dispatch.resolve(self.labels)

    # -- the ControllerIR protocol (repro.flow.core) -------------------
    def ir_hash(self) -> str:
        """Stable content hash over the assembled image (words, labels,
        and the attached dispatch table)."""
        digest = hashlib.sha256()
        digest.update(
            repr(
                (
                    "microcode",
                    _format_key(self.format),
                    self.addr_bits,
                    self.cond_bits,
                    tuple(self.control_words),
                    tuple(self.seq_words),
                    tuple(sorted(self.labels.items())),
                    None if self.dispatch is None else self.dispatch.ir_hash(),
                    tuple(sorted(self.condition_names.items())),
                )
            ).encode()
        )
        return digest.hexdigest()

    def ir_stats(self) -> dict:
        """Cheap stats for frontend instrumentation (``CtrlStats``)."""
        return {
            "kind": "microcode",
            "items": self.length,
            "bits": self.word_width,
        }

    def reachable_addresses(
        self, entry_labels: list[str] | None = None, opcodes=None
    ) -> tuple[int, ...]:
        """Microprogram addresses reachable from the entry points.

        Args:
            entry_labels: starting labels (default: address 0).
            opcodes: restrict dispatch successors to these request
                codes -- the "Manual" mode-pinning hook.
        """
        starts = {0}
        if entry_labels:
            starts = {self.labels[name] for name in entry_labels}
        dispatch_targets: set[int] = set()
        if self.dispatch is not None:
            dispatch_targets = self.dispatch.targets(self.labels, opcodes)

        seen: set[int] = set()
        frontier = list(starts)
        while frontier:
            addr = frontier.pop()
            if addr in seen or addr >= self.length:
                continue
            seen.add(addr)
            seq_op, _, target = self.seq_words[addr]
            succ: set[int] = set()
            if seq_op == SeqOp.NEXT:
                succ.add((addr + 1) % self.depth)
            elif seq_op == SeqOp.JUMP:
                succ.add(target)
            elif seq_op == SeqOp.BRANCH:
                succ.add(target)
                succ.add((addr + 1) % self.depth)
            elif seq_op == SeqOp.DISPATCH:
                succ |= dispatch_targets
            frontier.extend(succ - seen)
        return tuple(sorted(seen))

    def listing(self) -> str:
        """Assembler-style listing for documentation and debugging."""
        by_addr: dict[int, list[str]] = {}
        for name, addr in self.labels.items():
            by_addr.setdefault(addr, []).append(name)
        lines = []
        for addr, (control, (seq_op, cond, target)) in enumerate(
            zip(self.control_words, self.seq_words)
        ):
            for name in by_addr.get(addr, []):
                lines.append(f"{name}:")
            seq_text = SeqOp(seq_op).name
            if seq_op in (SeqOp.JUMP, SeqOp.BRANCH):
                seq_text += f" -> {target}"
            if seq_op == SeqOp.BRANCH:
                seq_text += f" if c{cond}"
            lines.append(
                f"  {addr:3d}: {self.format.describe(control)}  [{seq_text}]"
            )
        return "\n".join(lines)


class Program:
    """Incremental symbolic microprogram builder."""

    def __init__(
        self,
        format: MicrocodeFormat,
        conditions: list[str] | None = None,
        dispatch: DispatchTable | None = None,
    ) -> None:
        self.format = format
        self.instructions: list[Instruction] = []
        self.labels: dict[str, int] = {}
        self.condition_names = {
            name: index for index, name in enumerate(conditions or [])
        }
        #: Default dispatch table for :meth:`assemble` (what the
        #: ``microcode_pack`` flow pass resolves against); an explicit
        #: ``assemble(dispatch=...)`` argument overrides it.
        self.dispatch = dispatch

    # -- the ControllerIR protocol (repro.flow.core) -------------------
    def ir_hash(self) -> str:
        """Stable content hash over the symbolic program."""
        digest = hashlib.sha256()
        digest.update(
            repr(
                (
                    "program",
                    _format_key(self.format),
                    tuple(
                        (
                            tuple(sorted(i.fields.items())),
                            int(i.seq),
                            i.target,
                            i.condition,
                        )
                        for i in self.instructions
                    ),
                    tuple(sorted(self.labels.items())),
                    tuple(sorted(self.condition_names.items())),
                    None if self.dispatch is None else self.dispatch.ir_hash(),
                )
            ).encode()
        )
        return digest.hexdigest()

    def ir_stats(self) -> dict:
        """Cheap stats for frontend instrumentation (``CtrlStats``)."""
        return {
            "kind": "program",
            "items": len(self.instructions),
            "bits": self.format.width,
        }

    def label(self, name: str) -> None:
        if name in self.labels:
            raise ValueError(f"duplicate label {name!r}")
        self.labels[name] = len(self.instructions)

    def inst(
        self,
        seq: SeqOp = SeqOp.NEXT,
        target: str | int | None = None,
        condition: int | str = 0,
        **fields,
    ) -> None:
        """Append one microinstruction."""
        if seq in (SeqOp.JUMP, SeqOp.BRANCH) and target is None:
            raise ValueError(f"{seq.name} needs a target")
        if seq in (SeqOp.NEXT, SeqOp.DISPATCH) and target is not None:
            raise ValueError(f"{seq.name} takes no target")
        self.instructions.append(Instruction(fields, seq, target, condition))

    def assemble(
        self,
        addr_bits: int | None = None,
        cond_bits: int = 2,
        dispatch: DispatchTable | None = None,
    ) -> AssembledProgram:
        """Resolve labels and pack every instruction.

        ``dispatch`` defaults to the table attached at construction
        time (``Program(fmt, dispatch=...)``).
        """
        if dispatch is None:
            dispatch = self.dispatch
        length = len(self.instructions)
        if length == 0:
            raise ValueError("empty program")
        needed = max(1, (length - 1).bit_length())
        if addr_bits is None:
            addr_bits = needed
        if length > (1 << addr_bits):
            raise ValueError(
                f"{length} instructions exceed {addr_bits} address bits"
            )

        control_words = []
        seq_words = []
        for index, inst in enumerate(self.instructions):
            control_words.append(self.format.pack(**inst.fields))
            target = 0
            if inst.target is not None:
                if isinstance(inst.target, str):
                    if inst.target not in self.labels:
                        raise KeyError(f"undefined label {inst.target!r}")
                    target = self.labels[inst.target]
                else:
                    target = int(inst.target)
                if not 0 <= target < (1 << addr_bits):
                    raise ValueError(f"target {target} exceeds address space")
            condition = inst.condition
            if isinstance(condition, str):
                if condition not in self.condition_names:
                    raise KeyError(f"unknown condition {condition!r}")
                condition = self.condition_names[condition]
            if not 0 <= condition < (1 << cond_bits):
                raise ValueError(f"condition select {condition} too wide")
            seq_words.append((int(inst.seq), condition, target))

        return AssembledProgram(
            format=self.format,
            addr_bits=addr_bits,
            cond_bits=cond_bits,
            control_words=control_words,
            seq_words=seq_words,
            labels=dict(self.labels),
            dispatch=dispatch,
            condition_names=dict(self.condition_names),
        )
