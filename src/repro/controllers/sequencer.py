"""The microcode sequencer generator (the paper's Fig. 3).

Generates RTL for a sequencer built from:

* a microprogram counter (uPC);
* a microcode memory addressed by the uPC, whose word is
  ``{control fields, seq_op, cond_sel, target}``;
* a condition-select mux over external condition inputs;
* an optional dispatch table translating request opcodes to entry
  addresses.

``flexible=True`` emits programmable memories (the reconfigurable
design with its storage overhead); ``flexible=False`` binds an
assembled program into ROMs -- the input partial evaluation turns into
fixed logic.  For bound programs the generator also derives the uPC
*state annotation* from program reachability, which is exactly the
paper's "straightforward for a generator to produce these annotations
if it has the controller microcode".
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.controllers.assembler import AssembledProgram, _format_key
from repro.controllers.microcode import MicrocodeFormat, SeqOp
from repro.rtl.ast import Const, Expr
from repro.rtl.builder import ModuleBuilder, mux
from repro.rtl.module import Module
from repro.synth.dc_options import StateAnnotation


@dataclass(frozen=True)
class SequencerSpec:
    """Structural parameters of a sequencer instance."""

    name: str
    format: MicrocodeFormat
    addr_bits: int
    cond_bits: int = 2
    num_conditions: int = 1
    opcode_bits: int = 0
    flexible: bool = False
    expose_upc: bool = False
    expose_seq_op: bool = False

    def __post_init__(self) -> None:
        if self.addr_bits <= 0:
            raise ValueError("addr_bits must be positive")
        if self.num_conditions < 1:
            raise ValueError("need at least one condition input")
        if self.num_conditions > (1 << self.cond_bits):
            raise ValueError("cond_bits too small for the condition count")

    @property
    def word_width(self) -> int:
        return self.format.width + 2 + self.cond_bits + self.addr_bits

    # -- the ControllerIR protocol (repro.flow.core) -------------------
    def ir_hash(self) -> str:
        """Stable content hash over the structural parameters."""
        digest = hashlib.sha256()
        digest.update(
            repr(
                (
                    "sequencer",
                    self.name,
                    _format_key(self.format),
                    self.addr_bits,
                    self.cond_bits,
                    self.num_conditions,
                    self.opcode_bits,
                    self.flexible,
                    self.expose_upc,
                    self.expose_seq_op,
                )
            ).encode()
        )
        return digest.hexdigest()

    def ir_stats(self) -> dict:
        """Cheap stats for frontend instrumentation (``CtrlStats``)."""
        return {
            "kind": "sequencer",
            "items": 1 << self.addr_bits,
            "bits": self.word_width,
        }


@dataclass
class GeneratedSequencer:
    """A generated sequencer module plus generator-side knowledge."""

    spec: SequencerSpec
    module: Module
    upc_annotation: StateAnnotation | None
    program: AssembledProgram | None


def generate_sequencer(
    spec: SequencerSpec,
    program: AssembledProgram | None = None,
    annotation_opcodes=None,
) -> GeneratedSequencer:
    """Emit the sequencer RTL.

    Args:
        spec: structural parameters.
        program: required when ``spec.flexible`` is False; its words
            become the ROM contents and its reachability becomes the
            uPC annotation.
        annotation_opcodes: restrict the reachability used for the
            annotation to these dispatch opcodes (mode pinning -- the
            "Manual" optimization).  Ignored for flexible designs.
    """
    if not spec.flexible and program is None:
        raise ValueError("a bound sequencer needs a program")
    if program is not None:
        if program.addr_bits != spec.addr_bits:
            raise ValueError("program and spec disagree on addr_bits")
        if program.cond_bits != spec.cond_bits:
            raise ValueError("program and spec disagree on cond_bits")
        if program.format.width != spec.format.width:
            raise ValueError("program and spec disagree on the format")

    b = ModuleBuilder(spec.name)
    cond = b.input("cond", spec.num_conditions)
    op = b.input("op", spec.opcode_bits) if spec.opcode_bits else None
    upc = b.reg("upc", spec.addr_bits, reset_value=0)

    depth = 1 << spec.addr_bits
    if spec.flexible:
        ucode = b.config_mem("ucode", spec.word_width, depth)
    else:
        assert program is not None
        words = program.instruction_words()
        ucode = b.rom("ucode", spec.word_width, depth, words)
    word = ucode.read(upc)

    # Control field outputs.
    position = 0
    for fld in spec.format.fields:
        b.output(f"ctl_{fld.name}", word[position : position + fld.width])
        position += fld.width
    seq_op = word[position : position + 2]
    position += 2
    cond_sel = word[position : position + spec.cond_bits]
    position += spec.cond_bits
    target = word[position : position + spec.addr_bits]

    selected = _condition_mux(b, cond_sel, cond, spec)
    increment = upc + Const(1, spec.addr_bits)

    if spec.opcode_bits:
        if spec.flexible:
            dispatch_mem = b.config_mem(
                "dispatch", spec.addr_bits, 1 << spec.opcode_bits
            )
        else:
            assert program is not None
            rows = program.dispatch_rows()
            dispatch_mem = b.rom(
                "dispatch", spec.addr_bits, 1 << spec.opcode_bits, rows
            )
        assert op is not None
        dispatch_target: Expr = dispatch_mem.read(op)
    else:
        dispatch_target = increment  # DISPATCH degenerates to NEXT

    next_upc = b.case(
        seq_op,
        {
            int(SeqOp.NEXT): increment,
            int(SeqOp.JUMP): target,
            int(SeqOp.BRANCH): mux(selected, target, increment),
            int(SeqOp.DISPATCH): dispatch_target,
        },
        increment,
    )
    b.drive(upc, next_upc)
    if spec.expose_upc:
        b.output("upc_out", upc)
    if spec.expose_seq_op:
        b.output("seq_op_out", seq_op)

    module = b.build()
    annotation = None
    if not spec.flexible:
        assert program is not None
        reachable = program.reachable_addresses(opcodes=annotation_opcodes)
        annotation = StateAnnotation("upc", reachable)
    return GeneratedSequencer(spec, module, annotation, program)


def _condition_mux(
    b: ModuleBuilder, cond_sel: Expr, cond: Expr, spec: SequencerSpec
) -> Expr:
    """Select one external condition bit (Fig. 3's branch input)."""
    if spec.num_conditions == 1:
        return cond[0]
    arms = {
        index: cond[index] for index in range(spec.num_conditions)
    }
    return b.case(cond_sel, arms, Const(0, 1))
