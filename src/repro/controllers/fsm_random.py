"""Random FSM generation for the Fig. 5/6 style experiments.

The paper's methodology: "Python scripts then generated random
configuration parameters for these reconfigurable designs".  We do the
same, with one structural guarantee: every state is reachable from
reset (enforced with a random spanning tree), so reachability-derived
annotations recover exactly the intended state count.
"""

from __future__ import annotations

import random

from repro.controllers.fsm import FsmSpec


def random_fsm(
    num_inputs: int,
    num_outputs: int,
    num_states: int,
    rng: random.Random,
    name: str | None = None,
) -> FsmSpec:
    """A uniformly random, fully-reachable Mealy machine.

    Args:
        num_inputs: input bit count (the paper uses m in {2, 8}).
        num_outputs: output bit count (n in {2, 8, 16}).
        num_states: state count (s in {2, 3, 8, 16, 17}).
        rng: seeded random source.
        name: optional diagnostic name.
    """
    if num_states < 2:
        raise ValueError("need at least two states")
    combos = 1 << num_inputs
    next_state = [
        [rng.randrange(num_states) for _ in range(combos)]
        for _ in range(num_states)
    ]
    output = [
        [rng.getrandbits(num_outputs) for _ in range(combos)]
        for _ in range(num_states)
    ]

    # Spanning tree from state 0: state k gets an incoming edge from a
    # random earlier state on a random *unused* input word, so the tree
    # edges never clobber each other and reachability of every state
    # from reset is guaranteed regardless of the random entries above.
    order = list(range(1, num_states))
    rng.shuffle(order)
    reachable = [0]
    used_words: dict[int, set[int]] = {0: set()}
    for state in order:
        candidates = [
            parent for parent in reachable if len(used_words[parent]) < combos
        ]
        if not candidates:
            raise ValueError(
                f"cannot connect {num_states} states with {combos} input words"
            )
        parent = rng.choice(candidates)
        free = [w for w in range(combos) if w not in used_words[parent]]
        word = rng.choice(free)
        used_words[parent].add(word)
        next_state[parent][word] = state
        reachable.append(state)
        used_words[state] = set()

    spec = FsmSpec(
        name or f"rand_m{num_inputs}_n{num_outputs}_s{num_states}",
        num_inputs,
        num_outputs,
        num_states,
        reset_state=0,
        next_state=next_state,
        output=output,
    )
    assert len(spec.reachable_states()) == num_states
    return spec
