"""Finite state machine specifications.

An :class:`FsmSpec` is the abstract controller: ``s`` states, ``m``
input bits, ``n`` output bits, with Mealy semantics (outputs may
depend on inputs, matching the paper's Fig. 2 where the output memory
is addressed by state *and* inputs).  The tables are stored exactly as
a generator would emit them: one next-state row and one output row per
(state, input-word) pair.

The spec carries its own reference simulator, which every RTL
realisation is validated against.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass
class FsmSpec:
    """A tabular Mealy machine.

    Attributes:
        name: diagnostic name.
        num_inputs: input bit count ``m``.
        num_outputs: output bit count ``n``.
        num_states: state count ``s`` (states are 0..s-1).
        reset_state: initial state.
        next_state: ``next_state[state][input_word]`` -> state.
        output: ``output[state][input_word]`` -> n-bit word.
    """

    name: str
    num_inputs: int
    num_outputs: int
    num_states: int
    reset_state: int
    next_state: list[list[int]]
    output: list[list[int]]

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.num_states < 2:
            raise ValueError("an FSM needs at least two states")
        if not 0 <= self.reset_state < self.num_states:
            raise ValueError("reset state out of range")
        combos = 1 << self.num_inputs
        for table, kind, limit in (
            (self.next_state, "next_state", self.num_states),
            (self.output, "output", 1 << self.num_outputs),
        ):
            if len(table) != self.num_states:
                raise ValueError(f"{kind} table must have one row per state")
            for state, row in enumerate(table):
                if len(row) != combos:
                    raise ValueError(
                        f"{kind}[{state}] must have {combos} entries"
                    )
                for value in row:
                    if not 0 <= value < limit:
                        raise ValueError(
                            f"{kind}[{state}] entry {value} out of range"
                        )

    # ------------------------------------------------------------------
    # The ControllerIR protocol (repro.flow.core)
    # ------------------------------------------------------------------
    def ir_hash(self) -> str:
        """Stable content hash over everything a lowering depends on
        (the name included -- it becomes the RTL module name)."""
        digest = hashlib.sha256()
        digest.update(
            repr(
                (
                    "fsm",
                    self.name,
                    self.num_inputs,
                    self.num_outputs,
                    self.num_states,
                    self.reset_state,
                    tuple(tuple(row) for row in self.next_state),
                    tuple(tuple(row) for row in self.output),
                )
            ).encode()
        )
        return digest.hexdigest()

    def ir_stats(self) -> dict:
        """Cheap stats for frontend instrumentation (``CtrlStats``)."""
        return {
            "kind": "fsm",
            "items": self.num_states,
            "bits": self.num_inputs + self.num_outputs,
        }

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def state_bits(self) -> int:
        """Bits of the binary state register (ceil(log2 s), min 1)."""
        return max(1, (self.num_states - 1).bit_length())

    @property
    def table_address_bits(self) -> int:
        """Address bits of the Fig. 2 memories: state bits + m."""
        return self.state_bits + self.num_inputs

    def reachable_states(
        self, allowed_inputs: list[int] | None = None
    ) -> tuple[int, ...]:
        """States reachable from reset.

        ``allowed_inputs`` restricts the input words considered -- the
        generator-side analysis behind mode-pinned ("Manual")
        unreachable-state elimination: if a configuration can never
        produce an input word, transitions on it never fire.
        """
        words = (
            range(1 << self.num_inputs)
            if allowed_inputs is None
            else allowed_inputs
        )
        seen = {self.reset_state}
        frontier = [self.reset_state]
        while frontier:
            state = frontier.pop()
            for word in words:
                target = self.next_state[state][word]
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return tuple(sorted(seen))

    # ------------------------------------------------------------------
    # Reference semantics
    # ------------------------------------------------------------------
    def step(self, state: int, input_word: int) -> tuple[int, int]:
        """One transition; returns ``(next_state, output_word)``."""
        return (
            self.next_state[state][input_word],
            self.output[state][input_word],
        )

    def run(self, inputs: list[int]) -> list[int]:
        """Simulate from reset; returns the output trace."""
        state = self.reset_state
        outputs = []
        for word in inputs:
            state, out = self.step(state, word)
            outputs.append(out)
        return outputs

    def trace(self, inputs: list[int]) -> list[tuple[int, int]]:
        """Like :meth:`run` but returns (state-before, output) pairs."""
        state = self.reset_state
        result = []
        for word in inputs:
            nxt, out = self.step(state, word)
            result.append((state, out))
            state = nxt
        return result
