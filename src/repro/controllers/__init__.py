"""Controller intermediate representations.

This package is the paper's subject matter: *table-based controllers*
as the intermediate representation a chip generator emits.

- :mod:`repro.controllers.fsm` -- finite state machine specs (the
  table of Fig. 1/2) and reference semantics.
- :mod:`repro.controllers.fsm_rtl` -- the two RTL realisations the
  paper compares: vendor-style case statements ("direct") and
  table memories ("flexible").
- :mod:`repro.controllers.microcode` -- microinstruction formats
  (horizontal/vertical) and fields.
- :mod:`repro.controllers.assembler` -- symbolic microprograms
  assembled to bits, plus program-level reachability.
- :mod:`repro.controllers.sequencer` -- the Fig. 3 microcode
  sequencer generator (uPC, dispatch tables, condition select).
"""

from repro.controllers.assembler import AssembledProgram, Program
from repro.controllers.dispatch import DispatchTable
from repro.controllers.fsm import FsmSpec
from repro.controllers.fsm_random import random_fsm
from repro.controllers.fsm_rtl import fsm_to_case_rtl, fsm_to_table_rtl
from repro.controllers.microcode import Field, MicrocodeFormat, SeqOp
from repro.controllers.sequencer import SequencerSpec, generate_sequencer

__all__ = [
    "AssembledProgram",
    "DispatchTable",
    "Field",
    "FsmSpec",
    "MicrocodeFormat",
    "Program",
    "SeqOp",
    "SequencerSpec",
    "fsm_to_case_rtl",
    "fsm_to_table_rtl",
    "generate_sequencer",
    "random_fsm",
]
