"""RTL realisations of FSM specs: the two styles the paper compares.

*Direct* (:func:`fsm_to_case_rtl`): the vendor-recommended coding
style -- a case statement over the state register, with per-state
next-state and output logic expressed as two-level sum-of-products
over the inputs.  Synthesis FSM inference recognises this idiom.

*Table-based* (:func:`fsm_to_table_rtl`): the Fig. 2 structure -- a
next-state memory and an output memory, both addressed by
``{state, inputs}``.  ``flexible=True`` makes the memories
programmable (the reconfigurable controller with its area overheads);
``flexible=False`` binds the tables as ROMs, which is the input to
partial evaluation.  Table rows for state codes ``>= s`` hold zeros:
the flexible hardware really stores *something* there, and -- exactly
as the paper found for s in {3, 17} -- the unannotated tool must
honour those rows.
"""

from __future__ import annotations

from repro.controllers.fsm import FsmSpec
from repro.rtl.ast import Case, Concat, Const, Expr
from repro.rtl.builder import ModuleBuilder, cat
from repro.rtl.module import Module
from repro.tables.isop import isop
from repro.tables.truthtable import TruthTable


def fsm_to_case_rtl(spec: FsmSpec, name: str | None = None) -> Module:
    """The direct, case-statement implementation."""
    b = ModuleBuilder(name or f"{spec.name}_case")
    inputs = b.input("in", spec.num_inputs)
    state = b.reg("state", spec.state_bits, reset_value=spec.reset_state)

    next_arms: dict[int, Expr] = {}
    out_arms: dict[int, Expr] = {}
    for code in range(spec.num_states):
        next_arms[code] = _sop_word(
            b, inputs, spec.next_state[code], spec.num_inputs, spec.state_bits
        )
        out_arms[code] = _sop_word(
            b, inputs, spec.output[code], spec.num_inputs, spec.num_outputs
        )
    default_next = Const(spec.reset_state, spec.state_bits)
    default_out = Const(0, spec.num_outputs)
    b.drive(state, b.case(state, next_arms, default_next))
    b.output("out", b.case(state, out_arms, default_out))
    return b.build()


def _sop_word(
    b: ModuleBuilder, inputs, column: list[int], num_inputs: int, width: int
) -> Expr:
    """Per-state logic: each output bit as a sum-of-products expression."""
    table = TruthTable.from_rows(num_inputs, column, width)
    bits: list[Expr] = []
    for bit in range(width):
        bits.append(_sop_bit(inputs, table.columns[bit], num_inputs))
    return cat(*bits) if len(bits) > 1 else bits[0]


def _sop_bit(inputs, on_set: int, num_inputs: int) -> Expr:
    if on_set == 0:
        return Const(0, 1)
    cubes = isop(on_set, 0, num_inputs)
    terms: list[Expr] = []
    for cube in cubes:
        literals: list[Expr] = []
        for var, polarity in cube.literals():
            bit = inputs[var]
            literals.append(bit if polarity else ~bit)
        term = literals[0] if literals else Const(1, 1)
        for lit in literals[1:]:
            term = term & lit
        terms.append(term)
    result = terms[0]
    for term in terms[1:]:
        result = result | term
    return result


def fsm_to_table_rtl(
    spec: FsmSpec, flexible: bool = False, name: str | None = None
) -> Module:
    """The Fig. 2 table-based implementation.

    Args:
        spec: the machine.
        flexible: programmable memories (the runtime-reconfigurable
            controller) instead of bound ROMs.
        name: optional module name.
    """
    suffix = "flex" if flexible else "table"
    b = ModuleBuilder(name or f"{spec.name}_{suffix}")
    inputs = b.input("in", spec.num_inputs)
    state = b.reg("state", spec.state_bits, reset_value=spec.reset_state)
    depth = 1 << spec.table_address_bits

    if flexible:
        next_mem = b.config_mem("next_mem", spec.state_bits, depth)
        out_mem = b.config_mem("out_mem", spec.num_outputs, depth)
    else:
        next_mem = b.rom(
            "next_mem", spec.state_bits, depth, table_rows(spec, "next")
        )
        out_mem = b.rom(
            "out_mem", spec.num_outputs, depth, table_rows(spec, "output")
        )

    address = cat(inputs, state)  # state in the high bits, Fig. 2 style
    b.drive(state, next_mem.read(address))
    b.output("out", out_mem.read(address))
    return b.build()


def table_rows(spec: FsmSpec, which: str) -> list[int]:
    """Memory contents for the Fig. 2 tables.

    Address layout: ``{state, inputs}`` with the inputs in the low
    bits.  Rows whose state code exceeds ``s - 1`` read zero -- the
    storage exists in the flexible hardware whether or not the machine
    uses it.
    """
    if which not in ("next", "output"):
        raise ValueError("which must be 'next' or 'output'")
    source = spec.next_state if which == "next" else spec.output
    combos = 1 << spec.num_inputs
    rows = []
    for code in range(1 << spec.state_bits):
        for word in range(combos):
            if code < spec.num_states:
                rows.append(source[code][word])
            else:
                rows.append(0)
    return rows


def program_flexible_fsm(simulator, spec: FsmSpec) -> None:
    """Load an FSM's tables into a flexible realisation via simulation.

    Drives the configuration write ports of a
    :class:`repro.sim.rtlsim.Simulator` wrapping the flexible module;
    one cycle per row, the way software would program the real device.
    """
    for mem_name, which in (("next_mem", "next"), ("out_mem", "output")):
        for addr, word in enumerate(table_rows(spec, which)):
            simulator.step(
                {
                    f"{mem_name}_we": 1,
                    f"{mem_name}_waddr": addr,
                    f"{mem_name}_wdata": word,
                }
            )
    simulator.reset()
