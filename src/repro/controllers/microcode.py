"""Microinstruction formats and fields.

A :class:`MicrocodeFormat` describes the control portion of a
microinstruction as named fields.  Two packings are supported,
mirroring the paper's discussion of microcode styles:

* **horizontal** -- symbolic fields are stored one-hot ("inefficiently
  encoded but more readable", and decoder-free downstream); these are
  precisely the non-optimally-encoded signals that state folding
  recovers area from;
* **vertical** -- symbolic fields are stored binary-encoded
  ("efficiently encoded but difficult to read").

The sequencing portion of every instruction (operation, condition
select, target address) is fixed by the sequencer generator and lives
outside this format.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SeqOp(enum.IntEnum):
    """Sequencer operations (the Fig. 3 next-address modes)."""

    NEXT = 0  # the "trivial increment" default
    JUMP = 1  # unconditional branch to target
    BRANCH = 2  # branch to target when the selected condition is 1
    DISPATCH = 3  # next address from the dispatch table


@dataclass(frozen=True)
class Field:
    """One control field.

    ``values`` maps symbolic names to field values.  For one-hot
    (horizontal) fields every symbol owns one bit; value 0 (no symbol)
    is idle.  For binary (vertical) fields symbols are dense codes.
    """

    name: str
    width: int
    values: dict[str, int] | None = None
    onehot: bool = False

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError(f"field {self.name!r} must have positive width")
        if self.values is not None:
            for symbol, value in self.values.items():
                if not 0 <= value < (1 << self.width):
                    raise ValueError(
                        f"field {self.name!r} symbol {symbol!r} does not fit"
                    )

    def encode(self, value) -> int:
        """Accept an int, a symbol, or None (idle)."""
        if value is None:
            return 0
        if isinstance(value, str):
            if self.values is None or value not in self.values:
                raise KeyError(f"field {self.name!r} has no symbol {value!r}")
            return self.values[value]
        value = int(value)
        if not 0 <= value < (1 << self.width):
            raise ValueError(f"value {value} does not fit field {self.name!r}")
        return value

    def decode(self, bits: int) -> str | int:
        """Best-effort symbolic decode (for listings and debugging)."""
        if self.values:
            for symbol, value in self.values.items():
                if value == bits:
                    return symbol
        return bits


@dataclass(frozen=True)
class MicrocodeFormat:
    """An ordered set of control fields (LSB-first packing)."""

    fields: tuple[Field, ...]

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate field names")

    @classmethod
    def horizontal(cls, *specs: tuple[str, list[str]]) -> "MicrocodeFormat":
        """Symbolic fields stored one-hot: ``(name, [symbols...])``."""
        fields = []
        for name, symbols in specs:
            values = {s: 1 << i for i, s in enumerate(symbols)}
            fields.append(Field(name, len(symbols), values, onehot=True))
        return cls(tuple(fields))

    @classmethod
    def vertical(cls, *specs: tuple[str, list[str]]) -> "MicrocodeFormat":
        """Symbolic fields stored binary: symbol i gets code i+1.

        Code 0 is reserved for idle so that an all-zero word is a NOP
        in both packings.
        """
        fields = []
        for name, symbols in specs:
            width = max(1, len(symbols).bit_length())
            values = {s: i + 1 for i, s in enumerate(symbols)}
            fields.append(Field(name, width, values, onehot=False))
        return cls(tuple(fields))

    @property
    def width(self) -> int:
        return sum(f.width for f in self.fields)

    def field(self, name: str) -> Field:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"no field named {name!r}")

    def offset(self, name: str) -> int:
        """LSB position of a field inside the packed word."""
        position = 0
        for f in self.fields:
            if f.name == name:
                return position
            position += f.width
        raise KeyError(f"no field named {name!r}")

    def pack(self, **values) -> int:
        """Pack named field values into one control word."""
        word = 0
        remaining = dict(values)
        position = 0
        for f in self.fields:
            value = f.encode(remaining.pop(f.name, None))
            word |= value << position
            position += f.width
        if remaining:
            raise KeyError(f"unknown fields: {sorted(remaining)}")
        return word

    def unpack(self, word: int) -> dict[str, int]:
        """Split a control word back into raw field values."""
        out = {}
        position = 0
        for f in self.fields:
            out[f.name] = (word >> position) & ((1 << f.width) - 1)
            position += f.width
        return out

    def describe(self, word: int) -> str:
        """Human-readable rendering of a control word."""
        parts = []
        for name, bits in self.unpack(word).items():
            parts.append(f"{name}={self.field(name).decode(bits)}")
        return " ".join(parts)
