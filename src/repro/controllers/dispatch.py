"""Dispatch (jump) tables for microcode sequencers.

The paper: "Other state transitions (jumps) are flagged and handled by
dedicated dispatch tables, which tend to be small for many practical
designs."  A dispatch table maps an opcode (external request code) to
a microprogram entry address; the assembler resolves its entries from
labels.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass
class DispatchTable:
    """A symbolic opcode -> label mapping.

    Attributes:
        name: table name (becomes the memory name in hardware).
        opcode_bits: width of the opcode input.
        entries: opcode value -> target label.
        default: label used for unassigned opcodes.
    """

    name: str
    opcode_bits: int
    entries: dict[int, str] = field(default_factory=dict)
    default: str | None = None

    def __post_init__(self) -> None:
        for opcode in self.entries:
            if not 0 <= opcode < (1 << self.opcode_bits):
                raise ValueError(f"opcode {opcode} exceeds {self.opcode_bits} bits")

    @property
    def depth(self) -> int:
        return 1 << self.opcode_bits

    # -- the ControllerIR protocol (repro.flow.core) -------------------
    def ir_hash(self) -> str:
        """Stable content hash over the symbolic table."""
        digest = hashlib.sha256()
        digest.update(
            repr(
                (
                    "dispatch",
                    self.name,
                    self.opcode_bits,
                    tuple(sorted(self.entries.items())),
                    self.default,
                )
            ).encode()
        )
        return digest.hexdigest()

    def ir_stats(self) -> dict:
        """Cheap stats for frontend instrumentation (``CtrlStats``)."""
        return {
            "kind": "dispatch",
            "items": self.depth,
            "bits": self.opcode_bits,
        }

    def set(self, opcode: int, label: str) -> None:
        if not 0 <= opcode < self.depth:
            raise ValueError(f"opcode {opcode} exceeds {self.opcode_bits} bits")
        self.entries[opcode] = label

    def resolve(self, labels: dict[str, int]) -> list[int]:
        """Concrete table contents given assembled label addresses."""
        if self.default is not None and self.default not in labels:
            raise KeyError(f"dispatch default label {self.default!r} undefined")
        fallback = labels[self.default] if self.default is not None else 0
        rows = []
        for opcode in range(self.depth):
            label = self.entries.get(opcode)
            if label is None:
                rows.append(fallback)
                continue
            if label not in labels:
                raise KeyError(
                    f"dispatch table {self.name!r} references undefined "
                    f"label {label!r}"
                )
            rows.append(labels[label])
        return rows

    def targets(self, labels: dict[str, int], opcodes=None) -> set[int]:
        """Addresses reachable through the table.

        ``opcodes`` restricts the request codes considered -- the hook
        for mode-pinned ("Manual") reachability.
        """
        rows = self.resolve(labels)
        if opcodes is None:
            return set(rows)
        return {rows[opcode] for opcode in opcodes}
