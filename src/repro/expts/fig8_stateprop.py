"""Fig. 8: state propagation across flop boundaries.

For the Fig. 7 design at each bus width, compile the generic version
under three treatments -- Regular, Retimed, State annotated -- for each
flop style, and scatter generic area against the direct version's
area.  The paper's observations, all of which this driver reproduces
mechanically:

* purely combinational variants always reach the ideal (the tool's
  windowed sweeping *is* state propagation within combinational logic);
* flopped variants do not (value sets stop at registers);
* retiming helps when legal, and legality depends on the reset style
  (a one-hot decoder's all-zero reset vector has no pre-image);
* manual annotation recovers the ideal -- up to the tool's 32-bit
  state-vector cap, so n in {64, 128} stay unoptimized.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.expts.common import (
    ExperimentPoint,
    ExperimentResult,
    format_table,
    sizing_meta,
)
from repro.expts.fig7_design import FLOP_STYLES, build_fig7, onehot_values
from repro.expts.scatter import render_scatter
from repro.flow import (
    CompileJob,
    PassManager,
    compile_many,
    optimize_loop,
    retime_stage,
    state_folding,
)
from repro.flow.passes import (
    ElaboratePass,
    HonourAnnotationsPass,
    SizePass,
    TechMapPass,
)
from repro.synth.compiler import DesignCompiler
from repro.synth.dc_options import StateAnnotation

PAPER_WIDTHS = (2, 4, 8, 16, 32, 64, 128)


def treatment_specs(clock_period_ns: float = 20.0) -> "dict[str, str]":
    """The three treatment pipelines as spec strings (no FSM
    inference, no re-encoding -- the annotated treatment asserts value
    sets on the existing one-hot codes).  The object pipelines only
    exist to render the specs, which keeps every non-default parameter
    faithful; ``repro.check specs`` lints these without running the
    experiment, so :func:`run_fig8` must build its jobs from here."""

    def back_end():
        return [TechMapPass(), SizePass(clock_period_ns)]

    return {
        "regular": PassManager(
            [ElaboratePass(), optimize_loop(), *back_end()]
        ).spec(),
        "retimed": PassManager(
            [
                ElaboratePass(fold_sync_reset=True),
                optimize_loop(),
                retime_stage(),
                *back_end(),
            ]
        ).spec(),
        "annotated": PassManager(
            [
                HonourAnnotationsPass(),
                ElaboratePass(),
                optimize_loop(),
                state_folding(),
                *back_end(),
            ]
        ).spec(),
    }


@dataclass(frozen=True)
class Fig8Scale:
    widths: tuple[int, ...]

    @classmethod
    def named(cls, name: str) -> "Fig8Scale":
        if name == "small":
            return cls((2, 4, 8, 16))
        if name == "medium":
            return cls((2, 4, 8, 16, 32, 64))
        if name == "paper":
            return cls(PAPER_WIDTHS)
        raise ValueError(f"unknown scale {name!r}")


def run_fig8(
    scale: str = "small",
    compiler: DesignCompiler | None = None,
    clock_period_ns: float = 20.0,
    workers: int = 1,
    cache=None,
    server: "str | None" = None,
) -> ExperimentResult:
    """Run the Fig. 8 sweep at the given scale.

    ``workers``/``cache`` fan the independent compiles out across
    processes and skip fingerprint-identical jobs (see
    :func:`repro.flow.compile_many`); the result tables stay
    byte-identical to a cold serial run.
    """
    config = Fig8Scale.named(scale)
    library = (compiler or DesignCompiler()).library
    result = ExperimentResult(
        "Fig. 8 -- generic vs direct area for the Fig. 7 design",
        f"Bus widths {config.widths}; flop styles {FLOP_STYLES}; "
        f"treatments regular/retimed/annotated at a "
        f"{clock_period_ns} ns target.",
    )

    # Each treatment is its own explicit pipeline over the registry
    # (see treatment_specs).
    specs = treatment_specs(clock_period_ns)
    regular = specs["regular"]
    retimed = specs["retimed"]
    annotated = specs["annotated"]

    def treatments_for(n, style):
        treatments = {"regular": (regular, ())}
        if style != "comb":
            treatments["retimed"] = (retimed, ())
            treatments["annotated"] = (
                annotated,
                (StateAnnotation("y", onehot_values(n)),),
            )
        return treatments

    jobs = []
    for n in config.widths:
        for style in FLOP_STYLES:
            direct = build_fig7(n, style, direct=True)
            generic = build_fig7(n, style, direct=False)
            for treatment, (pipeline, annotations) in treatments_for(
                n, style
            ).items():
                # Both designs of a pair get identical settings, the
                # paper's methodology ("we synthesized these pairs of
                # designs ...").
                for role, module in (("direct", direct), ("generic", generic)):
                    jobs.append(
                        CompileJob(
                            (n, style, treatment, role), pipeline,
                            module=module, annotations=annotations,
                            library=library,
                        )
                    )
    with warnings.catch_warnings():
        # The >32-bit annotation warning is the point here.  Workers
        # inherit the filter under the fork start method; under spawn
        # they may still print it to stderr, which is harmless noise.
        warnings.simplefilter("ignore")
        compiled = compile_many(jobs, workers=workers, cache=cache, server=server)
    result.absorb_flow(compiled.values())
    result.meta["pipelines"] = {
        "regular": regular,
        "retimed": retimed,
        "annotated": annotated,
    }
    result.meta["clock_period_ns"] = clock_period_ns

    rows = []
    for n in config.widths:
        for style in FLOP_STYLES:
            for treatment in treatments_for(n, style):
                direct_area = compiled[(n, style, treatment, "direct")].area.total
                generic_ctx = compiled[(n, style, treatment, "generic")]
                generic_area = generic_ctx.area.total
                series = f"{style}/{treatment}"
                result.points.append(
                    ExperimentPoint(
                        series, direct_area, generic_area, f"n{n}",
                        {"n": n, "style": style, "treatment": treatment,
                         **sizing_meta(generic_ctx)},
                    )
                )
                rows.append(
                    [
                        str(n), style, treatment,
                        f"{direct_area:.1f}", f"{generic_area:.1f}",
                        f"{generic_area / direct_area:.3f}",
                    ]
                )
    result.tables["Area per variant (um^2)"] = format_table(
        ["n", "flop", "treatment", "direct", "generic", "ratio"], rows
    )
    result.tables["Scatter"] = render_scatter(
        result.points,
        title="Fig. 8: y=generic vs x=direct area (um^2)",
    )
    _add_shape_notes(result)
    return result


def _add_shape_notes(result: ExperimentResult) -> None:
    def ratios(style: str, treatment: str, predicate=lambda n: True):
        return [
            p.ratio
            for p in result.points
            if p.meta["style"] == style
            and p.meta["treatment"] == treatment
            and predicate(p.meta["n"])
        ]

    comb = ratios("comb", "regular")
    if comb:
        result.notes.append(
            f"no-flop regular: max ratio {max(comb):.3f} "
            f"(paper: combinational cases 'always synthesized to the "
            f"ideal case')"
        )
    plain_regular = ratios("plain", "regular")
    if plain_regular:
        result.notes.append(
            f"flopped regular: min ratio {min(plain_regular):.3f} "
            f"(paper: 'all of the synthesized designs failed to achieve "
            f"ideal areas')"
        )
    plain_retime = ratios("plain", "retimed")
    async_retime = ratios("async", "retimed")
    if plain_retime and async_retime:
        result.notes.append(
            f"retimed: plain-flop max ratio {max(plain_retime):.3f} vs "
            f"async-flop min ratio {min(async_retime):.3f} "
            f"(paper: retiming effect 'inconsistent', flop type matters)"
        )
    annotated_small = ratios("plain", "annotated", lambda n: n <= 32)
    annotated_big = ratios("plain", "annotated", lambda n: n > 32)
    if annotated_small:
        result.notes.append(
            f"annotated n<=32: max ratio {max(annotated_small):.3f} "
            f"(paper: 'manual state annotation allows synthesis to "
            f"perform the necessary optimizations in cases where n <= 32')"
        )
    if annotated_big:
        result.notes.append(
            f"annotated n>32: min ratio {min(annotated_big):.3f} "
            f"(annotation dropped by the state-vector cap)"
        )
