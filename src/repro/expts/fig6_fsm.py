"""Fig. 6: table-based FSMs vs case-statement FSMs.

For random Mealy machines over the paper's (m, n, s) grid, ship the
:class:`~repro.controllers.fsm.FsmSpec` controller IR into the flow
and lower it per treatment:

* ``fsm_encode{realize=case}`` -- the *direct* case-statement style
  (FSM inference re-encodes it),
* ``fsm_encode`` (table realisation) with no help ("Regular"), and
* the same lowering with ``set_fsm_state_vector`` /
  ``set_fsm_encoding`` supplied as seeded annotations
  ("State annotated"),

and scatter table-based areas against the case-statement areas.  The
paper's claims: Regular shows upward variance concentrated at
non-power-of-two state counts (s in {3, 17}), while annotated tables
synthesize nearly identically to the case style.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.controllers.fsm_random import random_fsm
from repro.expts.common import (
    ExperimentPoint,
    ExperimentResult,
    format_table,
    sizing_meta,
)
from repro.expts.scatter import render_scatter
from repro.flow import (
    CompileJob,
    PassManager,
    compile_many,
    optimize_loop,
    state_folding,
)
from repro.flow.passes import (
    ElaboratePass,
    EncodePass,
    FsmInferPass,
    HonourAnnotationsPass,
    SizePass,
    TechMapPass,
)
from repro.synth.compiler import DesignCompiler
from repro.synth.dc_options import StateAnnotation

PAPER_INPUTS = (2, 8)
PAPER_OUTPUTS = (2, 8, 16)
PAPER_STATES = (2, 3, 8, 16, 17)

#: The lowering prefix per treatment; ``run_fig6`` prepends one of
#: these to the shared RTL-onward body.
LOWERINGS = {
    "case": "fsm_encode{realize=case}",
    "table": "fsm_encode",
}


def default_body(clock_period_ns: float = 20.0) -> str:
    """The shared RTL-onward pipeline body of every Fig. 6 treatment,
    as a spec string (``repro.check specs`` lints this without running
    the experiment, so it must stay the exact pipeline
    :func:`run_fig6` builds)."""
    return PassManager(
        [
            FsmInferPass(),
            HonourAnnotationsPass(),
            EncodePass("binary"),
            ElaboratePass(),
            optimize_loop(),
            state_folding(),
            TechMapPass(),
            SizePass(clock_period_ns),
        ]
    ).spec()


@dataclass(frozen=True)
class Fig6Scale:
    inputs: tuple[int, ...]
    outputs: tuple[int, ...]
    states: tuple[int, ...]
    seeds: tuple[int, ...]

    @classmethod
    def named(cls, name: str) -> "Fig6Scale":
        if name == "small":
            return cls((2,), (2, 8), (2, 3, 8), (0,))
        if name == "medium":
            return cls((2,), PAPER_OUTPUTS, PAPER_STATES, (0, 1))
        if name == "paper":
            return cls(PAPER_INPUTS, PAPER_OUTPUTS, PAPER_STATES, (0, 1))
        raise ValueError(f"unknown scale {name!r}")


def run_fig6(
    scale: str = "small",
    compiler: DesignCompiler | None = None,
    clock_period_ns: float = 20.0,
    workers: int = 1,
    cache=None,
    pipeline: "PassManager | str | None" = None,
    server: "str | None" = None,
) -> ExperimentResult:
    """Run the Fig. 6 sweep at the given scale.

    ``workers`` fans the independent compiles out across processes and
    ``cache`` (a :class:`~repro.flow.CompileCache`) skips jobs whose
    fingerprints were already compiled; both leave the result tables
    byte-identical to a cold serial run.  ``pipeline`` (a spec string
    or a ready pipeline ending in map/size stages) replaces the default
    RTL-onward flow for every treatment -- the ROADMAP's pass-order
    ablations; the driver prepends each treatment's ``fsm_encode``
    lowering item.
    """
    config = Fig6Scale.named(scale)
    library = (compiler or DesignCompiler()).library
    result = ExperimentResult(
        "Fig. 6 -- FSM synthesis: table-based vs case-statement",
        f"Random FSMs, m in {config.inputs}, n in {config.outputs}, "
        f"s in {config.states}, seeds {config.seeds}; identical "
        f"relaxed timing target ({clock_period_ns} ns).",
    )
    # One RTL-onward body serves all three treatments: FSM inference
    # plus binary re-encoding of whatever annotations are present
    # (inferred for the case style, user-supplied for the annotated
    # treatment, none for the regular treatment).  The treatments
    # differ only in the lowering prefix and the seeded annotations.
    if pipeline is None:
        body = default_body(clock_period_ns)
    elif isinstance(pipeline, str):
        body = PassManager.parse(pipeline).spec()
    else:
        body = pipeline.spec()
    lowerings = LOWERINGS

    grid = [
        (m, n, s, seed)
        for m in config.inputs
        for n in config.outputs
        for s in config.states
        for seed in config.seeds
    ]
    jobs = []
    for m, n, s, seed in grid:
        rng = random.Random(hash((m, n, s, seed)) & 0xFFFFFFFF)
        spec = random_fsm(m, n, s, rng)
        label = f"m{m}n{n}s{s}x{seed}"
        jobs.append(
            CompileJob(
                (label, "case"), f"{lowerings['case']},{body}",
                ctrl=spec, library=library,
            )
        )
        jobs.append(
            CompileJob(
                (label, "regular"), f"{lowerings['table']},{body}",
                ctrl=spec, library=library,
            )
        )
        jobs.append(
            CompileJob(
                (label, "annotated"), f"{lowerings['table']},{body}",
                ctrl=spec,
                annotations=(StateAnnotation("state", tuple(range(s))),),
                library=library,
            )
        )
    compiled = compile_many(jobs, workers=workers, cache=cache, server=server)
    result.absorb_flow(compiled.values())
    result.meta["pipeline"] = body
    result.meta["lowerings"] = dict(lowerings)
    result.meta["clock_period_ns"] = clock_period_ns

    rows = []
    for m, n, s, seed in grid:
        label = f"m{m}n{n}s{s}x{seed}"
        case_area = compiled[(label, "case")].area.total
        regular_ctx = compiled[(label, "regular")]
        annotated_ctx = compiled[(label, "annotated")]
        regular_area = regular_ctx.area.total
        annotated_area = annotated_ctx.area.total
        result.points.append(
            ExperimentPoint(
                "regular", case_area, regular_area, label,
                {"m": m, "n": n, "s": s, **sizing_meta(regular_ctx)},
            )
        )
        result.points.append(
            ExperimentPoint(
                "state annotated", case_area, annotated_area,
                label, {"m": m, "n": n, "s": s, **sizing_meta(annotated_ctx)},
            )
        )
        rows.append(
            [
                str(m), str(n), str(s), str(seed),
                f"{case_area:.1f}",
                f"{regular_area:.1f}",
                f"{annotated_area:.1f}",
            ]
        )
    result.tables["Area per FSM (um^2)"] = format_table(
        ["m", "n", "s", "seed", "case", "table", "table+annot"], rows
    )
    result.tables["Scatter"] = render_scatter(
        result.points,
        title="Fig. 6: y=table-based vs x=case-statement area (um^2)",
    )
    regular = result.ratio_stats("regular")
    annotated = result.ratio_stats("state annotated")
    result.notes.append(
        f"regular geomean ratio {regular.geomean:.3f} "
        f"(spread {regular.log_spread:.3f}); annotated geomean "
        f"{annotated.geomean:.3f} (spread {annotated.log_spread:.3f}) -- "
        f"paper: annotation makes table-based 'nearly identical'"
    )
    odd = [
        p.ratio
        for p in result.series("regular")
        if p.meta["s"] in (3, 17)
    ]
    if odd:
        worst = max(odd)
        result.notes.append(
            f"worst regular ratio at s in {{3,17}}: {worst:.3f} "
            f"(paper: variance concentrates at non-power-of-two s)"
        )
    return result
