"""Traffic replay: the compile service under concurrent clients.

The ROADMAP's north star is serving heavy compile traffic from one
warm shared cache; this driver measures it.  A *trace* of N clients x
M jobs is sampled (with replacement, so concurrent duplicates exercise
single-flight dedup) from the techsweep job grid -- real figure-driver
work, controller IRs through lowering, optimization, mapping and
sizing -- and replayed against a compile server twice:

* **cold**: the server's cache starts however the caller left it
  (empty, for a fresh server), so this phase measures compile
  throughput plus whatever single-flight saves on duplicates;
* **warm**: the identical trace again -- every job must be a cache
  hit, zero compiles, which is the service's whole value proposition.

Each client is a thread submitting its jobs one request at a time
(closed-loop traffic); per-job latency is client-observed wall time.
The report carries p50/p99 latency and cache-hit rate per phase, and
the result persists as a run-store record (figure ``replay``) that
``python -m repro.track diff`` compares across commits like any other
figure.

With no ``--server`` URL the driver self-hosts: it starts an
in-process :class:`~repro.serve.server.CompileServer` on an ephemeral
port, replays against loopback HTTP (the full wire path, not a
shortcut), and shuts it down -- which is what the CI smoke job and
``python -m repro.track record replay`` use.
"""

from __future__ import annotations

import math
import random
import threading
import time

from repro.expts.common import ExperimentPoint, ExperimentResult
from repro.expts.techsweep import build_jobs, resolve_libraries
from repro.flow.cache import CompileCache
from repro.flow.parallel import CompileJob

#: The stored figure name (``repro.track record replay``).
REPLAY_FIGURE = "replay"


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in 0..100) of ``values``; NaN
    for an empty list."""
    if not values:
        return float("nan")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in 0..100, got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def build_trace(
    scale: str = "small",
    clients: int = 3,
    jobs_per_client: int = 6,
    seed: int = 2011,
) -> list[list[CompileJob]]:
    """One batch of jobs per client, sampled from the techsweep grid.

    Sampling is with replacement and seeded, so a trace is
    reproducible and *overlaps*: distinct clients requesting the same
    variant concurrently is the realistic case (every CI shard wants
    the same figure), and exactly what single-flight and the shared
    cache exist for.  Job keys are re-tagged ``(client, slot) +
    variant key`` to stay unique within and across batches.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    if jobs_per_client < 1:
        raise ValueError(
            f"jobs_per_client must be >= 1, got {jobs_per_client}"
        )
    population = build_jobs(scale)
    rng = random.Random(
        f"replay-trace/{scale}/{clients}x{jobs_per_client}/{seed}"
    )
    trace = []
    for client in range(clients):
        batch = []
        for slot in range(jobs_per_client):
            template = population[rng.randrange(len(population))]
            batch.append(
                CompileJob(
                    key=(client, slot) + template.key,
                    pipeline=template.pipeline,
                    ctrl=template.ctrl,
                    module=template.module,
                    aig=template.aig,
                    annotations=template.annotations,
                    bindings=template.bindings,
                    library=template.library,
                    seed=template.seed,
                )
            )
        trace.append(batch)
    return trace


class PhaseReport:
    """What one replay phase observed, aggregated over every client."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.latencies_ms: list[float] = []
        self.hits = 0
        self.deduped = 0
        self.errors = 0
        self.jobs = 0
        self.compiles = 0  # server-side delta over the phase
        self.wall_s = 0.0

    @property
    def hit_rate_pct(self) -> float:
        return 100.0 * self.hits / self.jobs if self.jobs else float("nan")

    def p(self, q: float) -> float:
        return percentile(self.latencies_ms, q)

    def line(self) -> str:
        """The grep-friendly one-liner (the CI smoke job matches the
        warm phase's ``hit rate 100.0% ... 0 compiles, 0 errors``)."""
        return (
            f"{self.name}: hit rate {self.hit_rate_pct:.1f}% "
            f"({self.hits}/{self.jobs}), {self.compiles} compiles, "
            f"{self.errors} errors, {self.deduped} deduped, "
            f"p50={self.p(50):.1f} ms p99={self.p(99):.1f} ms, "
            f"{self.wall_s:.2f} s wall"
        )


def _replay_phase(
    name: str, url: str, trace: list[list[CompileJob]]
) -> tuple[PhaseReport, dict]:
    """Replay every client batch concurrently; per-job results keyed
    by job key ride back for byte-identity checks and absorption."""
    from repro.serve.client import ServeClient, ServeError

    report = PhaseReport(name)
    contexts: dict = {}
    outputs: list = [None] * len(trace)

    def client_worker(index: int, batch: list[CompileJob]) -> None:
        client = ServeClient(url)
        observed = []
        try:
            for job in batch:
                started = time.perf_counter()
                result = client.compile_detailed([job])[0]
                latency_ms = (time.perf_counter() - started) * 1000.0
                observed.append((job, result, latency_ms))
        except ServeError as exc:
            outputs[index] = exc
            return
        outputs[index] = observed

    counters_before = ServeClient(url).stats()
    started = time.perf_counter()
    threads = [
        threading.Thread(
            target=client_worker, args=(i, batch), name=f"client-{i}"
        )
        for i, batch in enumerate(trace)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_s = time.perf_counter() - started
    counters_after = ServeClient(url).stats()
    report.compiles = counters_after.get("compiles", 0) - counters_before.get(
        "compiles", 0
    )

    for output in outputs:
        if isinstance(output, Exception):
            raise output  # a dead server fails the benchmark loudly
        for job, result, latency_ms in output:
            report.jobs += 1
            report.latencies_ms.append(latency_ms)
            if result.error is not None:
                report.errors += 1
                continue
            if result.cache_hit:
                report.hits += 1
            if result.deduped:
                report.deduped += 1
            contexts[job.key] = result.ctx
    return report, contexts


def run_replay(
    scale: str = "small",
    workers: int = 2,
    cache=None,
    clients: int = 3,
    jobs_per_client: int = 6,
    server: "str | None" = None,
    seed: int = 2011,
    store_dir=None,
    commit: str = "HEAD",
) -> ExperimentResult:
    """Replay a sampled trace cold then warm and report latencies.

    Args:
        scale: techsweep grid the trace samples from.
        workers: compile-pool bound of the self-hosted server (ignored
            with an external ``server``).
        cache: the self-hosted server's
            :class:`~repro.flow.CompileCache`; ``None`` serves from a
            fresh memory-only cache, which makes the cold phase
            genuinely cold.
        clients: concurrent client threads.
        jobs_per_client: jobs each client submits, one request at a
            time.
        server: base URL of an already-running compile server;
            ``None`` self-hosts on an ephemeral loopback port.
        seed: trace sampling seed.
        store_dir: when given, persist the result as run-store figure
            ``replay`` under ``commit``.
        commit: commit ref or label for the stored record.

    Returns:
        An :class:`ExperimentResult` whose points carry per-phase
        p50/p99 latency (``latency_cold_ms``/``latency_warm_ms``
        series) and cache-hit rates (``hit_rate`` series), with
        grep-friendly per-phase summary notes.
    """
    trace = build_trace(scale, clients, jobs_per_client, seed)
    total_jobs = sum(len(batch) for batch in trace)
    unique = len(
        {job.key[2:] for batch in trace for job in batch}
    )

    own = None
    if server is None:
        from repro.serve.server import CompileServer

        own = CompileServer(
            cache=cache if cache is not None else CompileCache(),
            workers=workers,
        ).start()
        url = own.url
    else:
        url = server

    try:
        cold, _ = _replay_phase("cold", url, trace)
        warm, warm_contexts = _replay_phase("warm", url, trace)
    finally:
        if own is not None:
            own.close()

    result = ExperimentResult(
        "Traffic replay -- compile service under concurrent clients",
        f"{clients} clients x {jobs_per_client} jobs sampled from the "
        f"techsweep grid at scale={scale} ({unique} unique variants in "
        f"{total_jobs} requests), replayed cold then warm against "
        + ("a self-hosted server." if own or server is None else f"{server}."),
    )
    for phase in (cold, warm):
        series = f"latency_{phase.name}_ms"
        for label, q in (("p50", 50.0), ("p99", 99.0)):
            result.points.append(
                ExperimentPoint(series, 1.0, phase.p(q), label)
            )
        result.points.append(
            ExperimentPoint(
                "hit_rate",
                100.0,
                phase.hit_rate_pct,
                phase.name,
                {
                    "hits": phase.hits,
                    "jobs": phase.jobs,
                    "compiles": phase.compiles,
                    "deduped": phase.deduped,
                    "errors": phase.errors,
                },
            )
        )
        result.notes.append(phase.line())
    # Warm contexts replay the cold run's records byte-identically, so
    # the absorbed totals are deterministic given a warm server cache.
    result.absorb_flow(warm_contexts.values())
    result.meta["clients"] = clients
    result.meta["jobs_per_client"] = jobs_per_client
    result.meta["unique_variants"] = unique
    result.meta["seed"] = seed
    result.meta["server"] = "self-hosted" if server is None else server
    result.meta["libraries"] = list(resolve_libraries(None))

    if store_dir is not None:
        _store(result, store_dir, commit, scale)
    return result


def _store(result: ExperimentResult, store_dir, commit: str, scale: str):
    from repro.expts.techsweep import swept_libraries_hash
    from repro.flow.store import RunRecord, RunStore, now
    from repro.track import resolve_ref, worktree_dirty

    result.meta.setdefault("scale", scale)
    resolved = resolve_ref(commit)
    if commit == "HEAD" and resolved != commit and worktree_dirty():
        resolved += "-dirty"
    record = RunRecord(
        figure=REPLAY_FIGURE,
        commit=resolved,
        result=result,
        scale=scale,
        library=swept_libraries_hash(tuple(result.meta["libraries"])),
        created_at=now(),
    )
    return RunStore(store_dir).put(record)
