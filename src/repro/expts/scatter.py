"""ASCII log-log scatter plots (the paper's Figs. 5, 6 and 8 axes)."""

from __future__ import annotations

import math

from repro.expts.common import ExperimentPoint

_MARKERS = "ox+*#@%&^~?$"


def render_scatter(
    points: list[ExperimentPoint],
    width: int = 64,
    height: int = 24,
    title: str = "",
) -> str:
    """Render points on log-log axes with the equal-area diagonal.

    Each series gets its own marker; the ``=`` diagonal is the paper's
    "equal-area line (intercept 0, slope 1)".
    """
    if not points:
        return "(no points)"
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    low = math.log10(max(min(xs + ys), 1e-3)) - 0.05
    high = math.log10(max(xs + ys)) + 0.05
    span = max(high - low, 1e-6)

    def to_col(value: float) -> int:
        return int((math.log10(value) - low) / span * (width - 1))

    def to_row(value: float) -> int:
        return height - 1 - int((math.log10(value) - low) / span * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    # Equal-area diagonal.
    for col in range(width):
        frac = col / (width - 1)
        row = height - 1 - int(frac * (height - 1))
        grid[row][col] = "="

    series_names: list[str] = []
    for point in points:
        if point.series not in series_names:
            series_names.append(point.series)
    marker_of = {
        name: _MARKERS[i % len(_MARKERS)] for i, name in enumerate(series_names)
    }
    for point in points:
        row = min(max(to_row(point.y), 0), height - 1)
        col = min(max(to_col(point.x), 0), width - 1)
        grid[row][col] = marker_of[point.series]

    lines = []
    if title:
        lines.append(title)
    lines += ["".join(row) for row in grid]
    low_value = 10 ** low
    high_value = 10 ** high
    lines.append(
        f"x: {low_value:.3g} .. {high_value:.3g} um^2 (log)   "
        f"y likewise; '=' is the equal-area line"
    )
    legend = "   ".join(
        f"{marker_of[name]} = {name}" for name in series_names
    )
    lines.append(legend)
    return "\n".join(lines)
