"""Experiment drivers: one per figure of the paper's evaluation.

Each driver produces an :class:`~repro.expts.common.ExperimentResult`
holding the raw points, a rendered table, an ASCII scatter (for the
scatter figures), and the shape checks that define "reproduced" for
that figure.  ``python -m repro.expts <figure>`` regenerates any of
them from the command line; the benchmark suite runs reduced-scale
versions of the same drivers.
"""

from repro.expts.common import ExperimentPoint, ExperimentResult
from repro.expts.fig5_tables import run_fig5
from repro.expts.fig6_fsm import run_fig6
from repro.expts.fig8_stateprop import run_fig8
from repro.expts.fig9_pctrl import run_fig9
from repro.expts.prefixgrid import run_prefixgrid
from repro.expts.replay import run_replay
from repro.expts.techsweep import run_techsweep

__all__ = [
    "ExperimentPoint",
    "ExperimentResult",
    "run_fig5",
    "run_fig6",
    "run_fig8",
    "run_fig9",
    "run_prefixgrid",
    "run_replay",
    "run_techsweep",
]
