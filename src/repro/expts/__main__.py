"""Command-line entry point: regenerate any figure of the paper.

Usage::

    python -m repro.expts fig5 [--scale small|medium|paper]
    python -m repro.expts all --scale medium --out EXPERIMENTS_RUN.md
    python -m repro.expts fig6 --jobs 4            # process fan-out
    python -m repro.expts fig6 --pipeline "fsm_infer,honour_annotations,encode,elaborate,optimize,map,size{clock_period_ns=20.0}"
    python -m repro.expts techsweep --jobs 2       # recipes x libraries
    python -m repro.expts replay --clients 4       # serve benchmark
    python -m repro.expts fig6 --server http://127.0.0.1:8731

Synthesis results are fingerprint-cached under ``--cache-dir``
(default ``.repro-cache``), so a repeated run of the same figure at
the same scale performs zero synthesis compiles; ``--no-cache``
disables this.  ``--server`` routes cache misses through a running
``python -m repro.serve`` compile server instead of compiling locally
(the local cache still fronts it); ``replay`` is the traffic-replay
benchmark against that service (self-hosting one when no ``--server``
is given).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.flow import CompileCache, default_workers
from repro.expts.fig5_tables import run_fig5
from repro.expts.fig6_fsm import run_fig6
from repro.expts.fig8_stateprop import run_fig8
from repro.expts.fig9_pctrl import run_fig9
from repro.expts.prefixgrid import run_prefixgrid
from repro.expts.replay import run_replay
from repro.expts.techsweep import run_techsweep

_RUNNERS = {
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "techsweep": run_techsweep,
    "replay": run_replay,
    "prefixgrid": run_prefixgrid,
}

#: Figures that persist a run-store record directly (the others
#: record through ``python -m repro.track``).
_STORED_FIGURES = ("techsweep", "replay", "prefixgrid")

#: Figures whose (single) default pipeline --pipeline may replace;
#: fig8/fig9 compare several flows per design, so an override would
#: not mean anything there.
_PIPELINE_FIGURES = ("fig5", "fig6")


def _cache_counters(cache):
    if cache is None:
        return (0, 0, 0, 0)
    return (cache.memory_hits, cache.disk_hits, cache.misses, cache.stores)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.expts",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "figure", choices=sorted(_RUNNERS) + ["all"],
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--scale", default="small", choices=["small", "medium", "paper"],
        help="sweep size (small: seconds-minutes; paper: full grid)",
    )
    parser.add_argument(
        "--out", default=None, help="append markdown output to this file"
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the synthesis sweeps "
        "(1: serial; 0: one per CPU core)",
    )
    parser.add_argument(
        "--pipeline", default=None, metavar="SPEC",
        help="pipeline spec replacing the figure's default flow, e.g. "
        "\"elaborate,optimize,map,size{clock_period_ns=20.0}\" "
        f"(only for {'/'.join(_PIPELINE_FIGURES)}; must end in "
        "map/size stages)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="on-disk compile cache shared across runs and workers "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the compile cache for this run",
    )
    parser.add_argument(
        "--no-snapshots", action="store_true",
        help="disable stage snapshots and prefix-resume for this run "
        "(sets REPRO_SNAPSHOTS=0 for the figure drivers and their "
        "workers; prefixgrid's pinned comparison is unaffected)",
    )
    parser.add_argument(
        "--store-dir", default=".repro-runs", metavar="DIR",
        help="run store the techsweep/replay drivers record into "
        "(default: %(default)s; other figures record via "
        "python -m repro.track)",
    )
    parser.add_argument(
        "--no-store", action="store_true",
        help="skip the techsweep/replay run-store record (e.g. when "
        "running from a dirty worktree whose results should not be "
        "keyed to the HEAD commit)",
    )
    parser.add_argument(
        "--server", default=None, metavar="URL",
        help="base URL of a running compile server (python -m "
        "repro.serve); cache misses compile there instead of locally, "
        "and replay benchmarks it instead of self-hosting",
    )
    parser.add_argument(
        "--clients", type=int, default=3, metavar="N",
        help="replay only: concurrent client threads (default: "
        "%(default)s)",
    )
    parser.add_argument(
        "--jobs-per-client", type=int, default=6, metavar="M",
        help="replay only: jobs each replay client submits (default: "
        "%(default)s)",
    )
    args = parser.parse_args(argv)

    names = sorted(_RUNNERS) if args.figure == "all" else [args.figure]
    if args.pipeline is not None:
        unsupported = [n for n in names if n not in _PIPELINE_FIGURES]
        if unsupported:
            parser.error(
                f"--pipeline is only supported for "
                f"{', '.join(_PIPELINE_FIGURES)} "
                f"(got figure {', '.join(unsupported)})"
            )
    if args.jobs < 0:
        parser.error(f"--jobs must be >= 0, got {args.jobs}")
    if args.clients < 1:
        parser.error(f"--clients must be >= 1, got {args.clients}")
    if args.jobs_per_client < 1:
        parser.error(
            f"--jobs-per-client must be >= 1, got {args.jobs_per_client}"
        )
    workers = args.jobs if args.jobs > 0 else default_workers()
    cache = None if args.no_cache else CompileCache(args.cache_dir)
    if args.no_snapshots:
        # Environment, not a kwarg: worker processes and the snapshot
        # policy default both read REPRO_SNAPSHOTS, so one knob covers
        # serial, pooled, and server-side compiles alike.
        os.environ["REPRO_SNAPSHOTS"] = "0"

    chunks = []
    for name in names:
        kwargs = {
            "scale": args.scale,
            "workers": workers,
            "cache": cache,
            "server": args.server,
        }
        if name in _PIPELINE_FIGURES and args.pipeline is not None:
            kwargs["pipeline"] = args.pipeline
        if name in _STORED_FIGURES:
            # These drivers' purpose is cross-run comparison, so they
            # persist their records directly (the other figures record
            # through python -m repro.track).
            kwargs["store_dir"] = None if args.no_store else args.store_dir
        if name == "replay":
            kwargs["clients"] = args.clients
            kwargs["jobs_per_client"] = args.jobs_per_client
        started = time.time()
        print(
            f"[{name}] running at scale={args.scale} "
            f"(jobs={workers}, cache={'off' if cache is None else args.cache_dir}) ...",
            flush=True,
        )
        before = _cache_counters(cache)
        result = _RUNNERS[name](**kwargs)
        elapsed = time.time() - started
        result.notes.append(f"runtime: {elapsed:.1f} s at scale={args.scale}")
        if cache is not None:
            # Per-figure deltas: the counters are cumulative across an
            # `all` run.
            after = _cache_counters(cache)
            memory, disk, misses, stores = (
                now - then for now, then in zip(after, before)
            )
            print(
                f"[{name}] cache: {memory} memory hits, {disk} disk hits, "
                f"{misses} misses, {stores} stores",
                flush=True,
            )
        text = result.to_markdown()
        chunks.append(text)
        print(text)
    if args.out:
        with open(args.out, "a", encoding="utf-8") as handle:
            handle.write("\n".join(chunks))
            handle.write("\n")
        print(f"appended to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
