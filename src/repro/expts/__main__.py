"""Command-line entry point: regenerate any figure of the paper.

Usage::

    python -m repro.expts fig5 [--scale small|medium|paper]
    python -m repro.expts all --scale medium --out EXPERIMENTS_RUN.md
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.expts.fig5_tables import run_fig5
from repro.expts.fig6_fsm import run_fig6
from repro.expts.fig8_stateprop import run_fig8
from repro.expts.fig9_pctrl import run_fig9

_RUNNERS = {
    "fig5": lambda scale: run_fig5(scale=scale),
    "fig6": lambda scale: run_fig6(scale=scale),
    "fig8": lambda scale: run_fig8(scale=scale),
    "fig9": lambda scale: run_fig9(scale=scale),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.expts",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "figure", choices=sorted(_RUNNERS) + ["all"],
        help="which figure to regenerate",
    )
    parser.add_argument(
        "--scale", default="small", choices=["small", "medium", "paper"],
        help="sweep size (small: seconds-minutes; paper: full grid)",
    )
    parser.add_argument(
        "--out", default=None, help="append markdown output to this file"
    )
    args = parser.parse_args(argv)

    names = sorted(_RUNNERS) if args.figure == "all" else [args.figure]
    chunks = []
    for name in names:
        started = time.time()
        print(f"[{name}] running at scale={args.scale} ...", flush=True)
        result = _RUNNERS[name](args.scale)
        elapsed = time.time() - started
        result.notes.append(f"runtime: {elapsed:.1f} s at scale={args.scale}")
        text = result.to_markdown()
        chunks.append(text)
        print(text)
    if args.out:
        with open(args.out, "a", encoding="utf-8") as handle:
            handle.write("\n".join(chunks))
            handle.write("\n")
        print(f"appended to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
