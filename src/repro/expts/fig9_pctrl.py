"""Fig. 9: Smart Memories PCtrl area, Full / Auto / Manual.

Compiles the flexible PCtrl once ("Full" -- the hardware is
configuration-independent), then the Auto and Manual specializations
for the Cached and Uncached configurations, and tabulates
combinational and sequential area per bar, exactly the axes of the
paper's figure.  A switched-capacitance proxy (area-weighted) stands
in for the paper's paired power claim.

Every job ships the *flexible* module plus its configuration data:
the Auto/Manual binding happens inside the flow (the ``pe_bind``
pass), so the whole run is spec strings over ``compile_many`` and the
binding is fingerprinted and cached with the synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.expts.common import ExperimentResult, format_table
from repro.flow import CompileJob, compile_many, default_pipeline
from repro.smartmem.config import (
    CACHED_CONFIG,
    UNCACHED_CONFIG,
    PCtrlConfig,
    PCtrlParams,
)
from repro.smartmem.flows import auto_job, full_job, manual_job
from repro.smartmem.pctrl import build_pctrl
from repro.synth.compiler import (
    CompileResult,
    DesignCompiler,
    result_from_context,
)


@dataclass(frozen=True)
class Fig9Scale:
    params: PCtrlParams

    @classmethod
    def named(cls, name: str) -> "Fig9Scale":
        if name == "small":
            # The microprograms address four pipes; shrink the datapath
            # (word width, queue) instead of the pipe count.
            return cls(
                PCtrlParams(
                    num_pipes=4,
                    word_bits=8,
                    max_line_words=8,
                    ucode_addr_bits=6,
                    queue_depth=2,
                )
            )
        if name in ("medium", "paper"):
            return cls(PCtrlParams())
        raise ValueError(f"unknown scale {name!r}")


def run_fig9(
    scale: str = "medium",
    compiler: DesignCompiler | None = None,
    workers: int = 1,
    cache=None,
    server: "str | None" = None,
) -> ExperimentResult:
    """Run the Full/Auto/Manual comparison.

    The five distinct syntheses (Full is configuration-independent;
    Auto and Manual exist per configuration) are independent jobs:
    ``workers`` fans them out across processes and ``cache`` skips
    fingerprint-identical reruns (see :func:`repro.flow.compile_many`).
    """
    params = Fig9Scale.named(scale).params
    compiler = compiler or DesignCompiler()
    design = build_pctrl(params)

    # The (module, bindings, annotations, options) tuples each flow
    # synthesizes, from their single definition in
    # repro.smartmem.flows.  Full runs the facade's default flow;
    # Auto/Manual prepend the pe_bind stage.
    inputs: dict[tuple[str, str], tuple] = {}
    inputs[("full", "any")] = full_job(design)
    for config, config_name in (
        (CACHED_CONFIG, "cached"),
        (UNCACHED_CONFIG, "uncached"),
    ):
        inputs[("auto", config_name)] = auto_job(design, config)
        inputs[("manual", config_name)] = manual_job(design, config)
    jobs = []
    for key, (module, bindings, annotations, options) in inputs.items():
        body = default_pipeline(options).spec()
        jobs.append(
            CompileJob(
                key,
                body if bindings is None else f"pe_bind,{body}",
                module=module,
                bindings=bindings,
                annotations=annotations,
                library=compiler.library,
            )
        )
    compiled = compile_many(jobs, workers=workers, cache=cache, server=server)

    runs: dict[tuple[str, str], CompileResult] = {}

    def packaged(key) -> CompileResult:
        _, _, annotations, options = inputs[key]
        return result_from_context(
            compiled[key],
            replace(options, state_annotations=list(annotations)),
        )

    full = packaged(("full", "any"))
    for config_name in ("cached", "uncached"):
        runs[("full", config_name)] = full
        for flow in ("auto", "manual"):
            runs[(flow, config_name)] = packaged((flow, config_name))

    result = ExperimentResult(
        "Fig. 9 -- PCtrl area: Full / Auto / Manual x Cached / Uncached",
        f"PCtrl model ({params.num_pipes} pipes, "
        f"{params.word_bits}-bit words, {params.max_line_words}-word "
        f"lines, {1 << params.ucode_addr_bits}-entry microcode); "
        f"5 ns clock, TSMC-90nm-class library.",
    )
    result.absorb_flow(compiled.values())
    result.meta["pipelines"] = {
        "/".join(job.key): (
            job.pipeline if isinstance(job.pipeline, str)
            else job.pipeline.spec()
        )
        for job in jobs
    }
    rows = []
    for config_name in ("cached", "uncached"):
        for flow in ("full", "auto", "manual"):
            area = runs[(flow, config_name)].area
            rows.append(
                [
                    config_name,
                    flow,
                    f"{area.combinational:.0f}",
                    f"{area.sequential:.0f}",
                    f"{area.total:.0f}",
                    f"{area.total * 1.0:.0f}",  # power proxy ~ area
                ]
            )
    result.tables["Area (um^2) and switched-cap power proxy"] = format_table(
        ["config", "flow", "comb", "seq", "total", "power~"], rows
    )

    def area(flow, config_name):
        return runs[(flow, config_name)].area

    for config_name in ("cached", "uncached"):
        full_area = area("full", config_name)
        auto_area = area("auto", config_name)
        result.notes.append(
            f"{config_name}: Auto/Full comb = "
            f"{auto_area.combinational / full_area.combinational:.2f}, "
            f"seq = {auto_area.sequential / full_area.sequential:.2f} "
            f"(paper: partial evaluation roughly halves both)"
        )
    manual_gain_unc = 1 - (
        area("manual", "uncached").total / area("auto", "uncached").total
    )
    manual_gain_cached = 1 - (
        area("manual", "cached").total / area("auto", "cached").total
    )
    result.notes.append(
        f"Manual saves {manual_gain_unc:.1%} over Auto in uncached mode "
        f"vs {manual_gain_cached:.1%} in cached mode (paper: ~16% vs "
        f"'minimal')"
    )
    return result
