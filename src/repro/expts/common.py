"""Shared experiment infrastructure: points, results, statistics.

Everything here is JSON-serializable through paired ``to_json`` /
``from_json`` hooks, which is what lets the run store
(:mod:`repro.flow.store`) persist a whole :class:`ExperimentResult`
-- points, tables, notes, and the aggregated per-pass instrumentation
(:class:`PassTotals`) -- as one versioned record per commit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable


def _finite_or_none(value: float) -> float | None:
    """JSON has no NaN/Infinity; encode non-finite floats as null."""
    return value if math.isfinite(value) else None


def sizing_meta(ctx) -> dict:
    """The per-point sizing outcome a driver persists in a figure
    point's ``meta``: the one definition of the timing-persistence
    schema that ``repro.flow.store.diff_runs`` reads back by key for
    the ``--max-delay-pct`` gate."""
    return {
        "critical_delay": ctx.timing.critical_delay,
        "met": ctx.sizing.met,
    }


def _none_or_nan(value: float | None) -> float:
    return float("nan") if value is None else float(value)


@dataclass(frozen=True)
class ExperimentPoint:
    """One measurement: an (x, y) pair in a named series."""

    series: str
    x: float
    y: float
    label: str = ""
    meta: dict = field(default_factory=dict, hash=False, compare=False)

    @property
    def ratio(self) -> float:
        """y / x -- for equal-area scatters, 1.0 means 'on the line'.

        A zero ``y`` (a fully-optimized-away design) is a legal ratio
        of 0.0; :meth:`RatioStats.of` excludes such points from the
        geometric statistics rather than crashing on ``log(0)``.
        """
        if self.x <= 0:
            raise ValueError(f"point {self.label!r} has non-positive x")
        if self.y < 0:
            raise ValueError(f"point {self.label!r} has negative y")
        return self.y / self.x

    def to_json(self) -> dict:
        """A plain-JSON form; ``meta`` must already be JSON-safe (the
        drivers only store numbers and strings there)."""
        return {
            "series": self.series,
            "x": self.x,
            "y": self.y,
            "label": self.label,
            "meta": dict(self.meta),
        }

    @classmethod
    def from_json(cls, data: dict) -> "ExperimentPoint":
        """Rebuild a point from :meth:`to_json` output."""
        return cls(
            series=data["series"],
            x=float(data["x"]),
            y=float(data["y"]),
            label=data.get("label", ""),
            meta=dict(data.get("meta", {})),
        )


@dataclass(frozen=True)
class PassTotals:
    """Aggregated instrumentation for one pass name across a sweep.

    A figure run executes the same pass hundreds of times (once per
    compile job); what a cross-commit regression diff needs is the
    *total*: how often the pass ran, how long it took overall, and how
    much structure it moved.  ``failed``/``rejected``/``skipped``
    count the records carrying the corresponding flags, so a pipeline
    that starts rolling rounds back (or erroring) shows up in the
    stored run even when the final areas still match.
    """

    name: str
    calls: int = 0
    wall_time_s: float = 0.0
    delta_ands: int = 0
    failed: int = 0
    rejected: int = 0
    skipped: int = 0

    def absorb(self, record) -> "PassTotals":
        """A new totals object with ``record`` folded in."""
        delta = record.delta_ands
        return PassTotals(
            name=self.name,
            calls=self.calls + 1,
            wall_time_s=self.wall_time_s + record.wall_time_s,
            delta_ands=self.delta_ands + (0 if delta is None else delta),
            failed=self.failed + (1 if record.failed else 0),
            rejected=self.rejected + (1 if record.rejected else 0),
            skipped=self.skipped + (1 if record.skipped else 0),
        )

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "wall_time_s": self.wall_time_s,
            "delta_ands": self.delta_ands,
            "failed": self.failed,
            "rejected": self.rejected,
            "skipped": self.skipped,
        }

    @classmethod
    def from_json(cls, data: dict) -> "PassTotals":
        return cls(
            name=data["name"],
            calls=int(data["calls"]),
            wall_time_s=float(data["wall_time_s"]),
            delta_ands=int(data["delta_ands"]),
            failed=int(data["failed"]),
            rejected=int(data["rejected"]),
            skipped=int(data["skipped"]),
        )


@dataclass
class ExperimentResult:
    """A completed experiment run.

    Beyond the figure payload (points, tables, notes), a result
    carries ``pass_totals`` -- per-pass instrumentation aggregated
    from every compile of the sweep via :meth:`absorb_flow` -- and a
    free-form JSON-safe ``meta`` dict (pipeline specs, scale) so the
    run store can diff two commits' runs pass-by-pass.
    """

    name: str
    description: str
    points: list[ExperimentPoint] = field(default_factory=list)
    tables: dict[str, str] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    pass_totals: dict[str, PassTotals] = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def absorb_flow(self, contexts: Iterable) -> None:
        """Fold the :class:`~repro.flow.core.PassRecord` streams of
        completed flow contexts into ``pass_totals``.

        Cached compiles replay the records of the run that produced
        them, so a warm sweep aggregates the *same* totals as the cold
        run it hit on -- which is exactly what makes a re-recorded
        commit diff clean against itself.  The same holds for compiles
        resumed from a stage snapshot (their restored records replay
        the prefix's provenance); those are additionally tallied into
        ``meta["prefix_hits"]``/``meta["prefix_passes_skipped"]`` so a
        stored run reports how much the prefix cache saved it.
        """
        for ctx in contexts:
            meta = getattr(ctx, "meta", None) or {}
            skipped = int(meta.get("passes_skipped", 0) or 0)
            if skipped:
                self.meta["prefix_hits"] = (
                    self.meta.get("prefix_hits", 0) + 1
                )
                self.meta["prefix_passes_skipped"] = (
                    self.meta.get("prefix_passes_skipped", 0) + skipped
                )
            for record in ctx.records:
                totals = self.pass_totals.get(record.name)
                if totals is None:
                    totals = PassTotals(record.name)
                self.pass_totals[record.name] = totals.absorb(record)

    def series(self, name: str) -> list[ExperimentPoint]:
        return [p for p in self.points if p.series == name]

    def series_names(self) -> list[str]:
        seen: list[str] = []
        for point in self.points:
            if point.series not in seen:
                seen.append(point.series)
        return seen

    def ratio_stats(self, series: str) -> "RatioStats":
        return RatioStats.of([p.ratio for p in self.series(series)])

    def to_markdown(self) -> str:
        lines = [f"### {self.name}", "", self.description, ""]
        for title, table in self.tables.items():
            lines += [f"**{title}**", "", "```", table, "```", ""]
        if self.points:
            lines.append("**Series summary (y/x ratios)**")
            lines.append("")
            lines.append("| series | points | geomean | min | max |")
            lines.append("|---|---|---|---|---|")
            for name in self.series_names():
                stats = self.ratio_stats(name)
                lines.append(
                    f"| {name} | {stats.count} | {stats.geomean:.3f} "
                    f"| {stats.minimum:.3f} | {stats.maximum:.3f} |"
                )
            lines.append("")
            for name in self.series_names():
                stats = self.ratio_stats(name)
                if stats.excluded:
                    lines.append(
                        f"- {name}: {stats.excluded} non-positive ratio "
                        f"point(s) excluded from the geometric stats"
                    )
        for note in self.notes:
            lines.append(f"- {note}")
        lines.append("")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """A plain-JSON form of the whole result: points, tables,
        notes, meta, and the aggregated pass totals.  Per-series
        :class:`RatioStats` summaries are included for human
        inspection of stored records; :meth:`from_json` recomputes
        them from the points, so they carry no authority."""
        return {
            "name": self.name,
            "description": self.description,
            "points": [point.to_json() for point in self.points],
            "tables": dict(self.tables),
            "notes": list(self.notes),
            "pass_totals": {
                name: totals.to_json()
                for name, totals in sorted(self.pass_totals.items())
            },
            "meta": dict(self.meta),
            "series_summaries": {
                name: self.ratio_stats(name).to_json()
                for name in self.series_names()
            },
        }

    @classmethod
    def from_json(cls, data: dict) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_json` output."""
        return cls(
            name=data["name"],
            description=data["description"],
            points=[
                ExperimentPoint.from_json(point) for point in data["points"]
            ],
            tables=dict(data.get("tables", {})),
            notes=list(data.get("notes", [])),
            pass_totals={
                name: PassTotals.from_json(totals)
                for name, totals in data.get("pass_totals", {}).items()
            },
            meta=dict(data.get("meta", {})),
        )


@dataclass(frozen=True)
class RatioStats:
    """Geometric summary of y/x ratios in a series.

    Non-positive ratios (a zero-area point) have no logarithm; they
    are excluded from ``geomean``/``log_spread`` and counted in
    ``excluded`` so a single degenerate point reports itself instead
    of crashing a whole sweep.  ``count``, ``minimum`` and ``maximum``
    still describe every ratio given.
    """

    count: int
    geomean: float
    minimum: float
    maximum: float
    log_spread: float
    excluded: int = 0

    def to_json(self) -> dict:
        """A plain-JSON form (NaN summaries of empty series encode as
        null -- strict JSON has no NaN literal)."""
        return {
            "count": self.count,
            "geomean": _finite_or_none(self.geomean),
            "minimum": _finite_or_none(self.minimum),
            "maximum": _finite_or_none(self.maximum),
            "log_spread": _finite_or_none(self.log_spread),
            "excluded": self.excluded,
        }

    @classmethod
    def from_json(cls, data: dict) -> "RatioStats":
        """Rebuild stats from :meth:`to_json` output (null -> NaN)."""
        return cls(
            count=int(data["count"]),
            geomean=_none_or_nan(data["geomean"]),
            minimum=_none_or_nan(data["minimum"]),
            maximum=_none_or_nan(data["maximum"]),
            log_spread=_none_or_nan(data["log_spread"]),
            excluded=int(data.get("excluded", 0)),
        )

    @classmethod
    def of(cls, ratios: list[float]) -> "RatioStats":
        nan = float("nan")
        if not ratios:
            return cls(0, nan, nan, nan, nan)
        positive = [r for r in ratios if r > 0]
        excluded = len(ratios) - len(positive)
        if not positive:
            return cls(
                len(ratios), nan, min(ratios), max(ratios), nan, excluded
            )
        logs = [math.log(r) for r in positive]
        mean = sum(logs) / len(logs)
        spread = (
            math.sqrt(sum((l - mean) ** 2 for l in logs) / len(logs))
            if len(logs) > 1
            else 0.0
        )
        return cls(
            count=len(ratios),
            geomean=math.exp(mean),
            minimum=min(ratios),
            maximum=max(ratios),
            log_spread=spread,
            excluded=excluded,
        )


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Monospace table with column alignment."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines += [fmt(row) for row in rows]
    return "\n".join(lines)
