"""Shared experiment infrastructure: points, results, statistics."""

from __future__ import annotations

import math
from dataclasses import dataclass, field


@dataclass(frozen=True)
class ExperimentPoint:
    """One measurement: an (x, y) pair in a named series."""

    series: str
    x: float
    y: float
    label: str = ""
    meta: dict = field(default_factory=dict, hash=False, compare=False)

    @property
    def ratio(self) -> float:
        """y / x -- for equal-area scatters, 1.0 means 'on the line'.

        A zero ``y`` (a fully-optimized-away design) is a legal ratio
        of 0.0; :meth:`RatioStats.of` excludes such points from the
        geometric statistics rather than crashing on ``log(0)``.
        """
        if self.x <= 0:
            raise ValueError(f"point {self.label!r} has non-positive x")
        if self.y < 0:
            raise ValueError(f"point {self.label!r} has negative y")
        return self.y / self.x


@dataclass
class ExperimentResult:
    """A completed experiment run."""

    name: str
    description: str
    points: list[ExperimentPoint] = field(default_factory=list)
    tables: dict[str, str] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def series(self, name: str) -> list[ExperimentPoint]:
        return [p for p in self.points if p.series == name]

    def series_names(self) -> list[str]:
        seen: list[str] = []
        for point in self.points:
            if point.series not in seen:
                seen.append(point.series)
        return seen

    def ratio_stats(self, series: str) -> "RatioStats":
        return RatioStats.of([p.ratio for p in self.series(series)])

    def to_markdown(self) -> str:
        lines = [f"### {self.name}", "", self.description, ""]
        for title, table in self.tables.items():
            lines += [f"**{title}**", "", "```", table, "```", ""]
        if self.points:
            lines.append("**Series summary (y/x ratios)**")
            lines.append("")
            lines.append("| series | points | geomean | min | max |")
            lines.append("|---|---|---|---|---|")
            for name in self.series_names():
                stats = self.ratio_stats(name)
                lines.append(
                    f"| {name} | {stats.count} | {stats.geomean:.3f} "
                    f"| {stats.minimum:.3f} | {stats.maximum:.3f} |"
                )
            lines.append("")
            for name in self.series_names():
                stats = self.ratio_stats(name)
                if stats.excluded:
                    lines.append(
                        f"- {name}: {stats.excluded} non-positive ratio "
                        f"point(s) excluded from the geometric stats"
                    )
        for note in self.notes:
            lines.append(f"- {note}")
        lines.append("")
        return "\n".join(lines)


@dataclass(frozen=True)
class RatioStats:
    """Geometric summary of y/x ratios in a series.

    Non-positive ratios (a zero-area point) have no logarithm; they
    are excluded from ``geomean``/``log_spread`` and counted in
    ``excluded`` so a single degenerate point reports itself instead
    of crashing a whole sweep.  ``count``, ``minimum`` and ``maximum``
    still describe every ratio given.
    """

    count: int
    geomean: float
    minimum: float
    maximum: float
    log_spread: float
    excluded: int = 0

    @classmethod
    def of(cls, ratios: list[float]) -> "RatioStats":
        nan = float("nan")
        if not ratios:
            return cls(0, nan, nan, nan, nan)
        positive = [r for r in ratios if r > 0]
        excluded = len(ratios) - len(positive)
        if not positive:
            return cls(
                len(ratios), nan, min(ratios), max(ratios), nan, excluded
            )
        logs = [math.log(r) for r in positive]
        mean = sum(logs) / len(logs)
        spread = (
            math.sqrt(sum((l - mean) ** 2 for l in logs) / len(logs))
            if len(logs) > 1
            else 0.0
        )
        return cls(
            count=len(ratios),
            geomean=math.exp(mean),
            minimum=min(ratios),
            maximum=max(ratios),
            log_spread=spread,
            excluded=excluded,
        )


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """Monospace table with column alignment."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(cells):
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines += [fmt(row) for row in rows]
    return "\n".join(lines)
