"""Fig. 5: table-based combinational logic vs direct sum-of-products.

For random multi-output functions over a (depth x width) grid, build
the :class:`~repro.tables.truthtable.TruthTable` controller IR once
per grid point and lower it two ways *inside the flow*:

* ``table_rom`` -- the *table-based* implementation: the function
  bound into a ROM read (what a generator emits; partial evaluation
  folds it into logic), and
* ``table_minimize`` -- the *direct* implementation: per-output
  two-level sum-of-products RTL (what a designer would hand-write),

synthesize both to the same achievable timing target, and scatter the
areas against the equal-area line.  The paper's claim: the points
hug the line over ~3 decades, with table-based occasionally *winning*
at large depths because SOP starting points are not ideal either.

Each compile job carries the IR, not a pre-built module -- the whole
run is spec strings over ``compile_many``, so the lowering is cached
and fingerprinted together with the synthesis.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.expts.common import (
    ExperimentPoint,
    ExperimentResult,
    format_table,
    sizing_meta,
)
from repro.expts.scatter import render_scatter
from repro.flow import CompileJob, PassManager, compile_many, optimize_loop
from repro.flow.passes import ElaboratePass, SizePass, TechMapPass
from repro.synth.compiler import DesignCompiler
from repro.tables.truthtable import TruthTable

#: The paper's full grid.
PAPER_DEPTHS = (2, 8, 16, 32, 64, 256, 1024)
PAPER_WIDTHS = (2, 4, 16, 32, 64)


@dataclass(frozen=True)
class Fig5Scale:
    """Sweep sizes per scale level."""

    depths: tuple[int, ...]
    widths: tuple[int, ...]
    seeds: tuple[int, ...]

    @classmethod
    def named(cls, name: str) -> "Fig5Scale":
        if name == "small":
            return cls((2, 8, 16, 32), (2, 4, 8), (0,))
        if name == "medium":
            return cls((2, 8, 16, 32, 64, 256), (2, 4, 16), (0, 1))
        if name == "paper":
            return cls(PAPER_DEPTHS, PAPER_WIDTHS, (0, 1))
        raise ValueError(f"unknown scale {name!r}")


def _comb_spec(clock_period_ns: float) -> str:
    """The combinational RTL-onward flow, rendered to spec syntax."""
    return PassManager(
        [
            ElaboratePass(),
            optimize_loop(),
            TechMapPass(),
            SizePass(clock_period_ns),
        ]
    ).spec()


def run_fig5(
    scale: str = "small",
    compiler: DesignCompiler | None = None,
    clock_period_ns: float = 20.0,
    sweep_timing: bool = False,
    workers: int = 1,
    cache=None,
    pipeline: "PassManager | str | None" = None,
    server: "str | None" = None,
) -> ExperimentResult:
    """Run the Fig. 5 sweep at the given scale.

    With ``sweep_timing`` each pair is additionally synthesized to a
    *tightened* common target (80% of the slower design's achieved
    delay), reproducing the paper's sweep over achievable timing
    targets; pairs where either design misses the tight target are
    dropped, per the paper's "only compare designs that synthesized to
    identical timing targets".

    ``workers``/``cache`` fan the independent compiles out across
    processes and skip fingerprint-identical jobs (see
    :func:`repro.flow.compile_many`); the result tables stay
    byte-identical to a cold serial run.  ``pipeline`` (a spec string
    or a ready pipeline) replaces the default relaxed-target RTL
    flow; each treatment's lowering pass (``table_rom`` /
    ``table_minimize``) is prepended by the driver.  The tightened
    phase always uses the standard combinational pipeline.
    """
    config = Fig5Scale.named(scale)
    library = (compiler or DesignCompiler()).library
    # Purely combinational designs: no FSM handling, just lower ->
    # elaborate -> optimize to convergence -> map -> size.
    if pipeline is None:
        body = _comb_spec(clock_period_ns)
    elif isinstance(pipeline, str):
        body = PassManager.parse(pipeline).spec()
    else:
        body = pipeline.spec()
    result = ExperimentResult(
        "Fig. 5 -- table-based combinational logic vs sum-of-products",
        f"Random functions, depths {config.depths}, widths "
        f"{config.widths}, seeds {config.seeds}; identical relaxed "
        f"timing target ({clock_period_ns} ns) for both designs"
        + ("; plus a tightened common target per pair." if sweep_timing else "."),
    )

    grid = [
        (depth, width, seed)
        for depth in config.depths
        for width in config.widths
        for seed in config.seeds
    ]
    tables = {}
    jobs = []
    for depth, width, seed in grid:
        num_inputs = (depth - 1).bit_length()
        rng = random.Random(hash((depth, width, seed)) & 0xFFFFFFFF)
        table = TruthTable.random(num_inputs, width, rng)
        label = f"d{depth}w{width}s{seed}"
        tables[label] = table
        jobs.append(
            CompileJob(
                (label, "table"), f"table_rom,{body}",
                ctrl=table, library=library,
            )
        )
        jobs.append(
            CompileJob(
                (label, "sop"), f"table_minimize,{body}",
                ctrl=table, library=library,
            )
        )
    compiled = compile_many(jobs, workers=workers, cache=cache, server=server)
    result.absorb_flow(compiled.values())
    result.meta["pipeline"] = body
    result.meta["clock_period_ns"] = clock_period_ns

    # The tightened targets depend on the relaxed-phase timing, so the
    # sweep is a second fan-out.
    tight_compiled = {}
    if sweep_timing:
        tight_jobs = []
        for depth, width, seed in grid:
            label = f"d{depth}w{width}s{seed}"
            table_result = compiled[(label, "table")]
            sop_result = compiled[(label, "sop")]
            if (
                sop_result.area.combinational <= 0
                or table_result.area.combinational <= 0
            ):
                continue
            slower = max(
                table_result.timing.critical_delay,
                sop_result.timing.critical_delay,
            )
            tight_body = _comb_spec(max(slower * 0.8, 0.05))
            tight_jobs.append(
                CompileJob(
                    (label, "table"), f"table_rom,{tight_body}",
                    ctrl=tables[label], library=library,
                )
            )
            tight_jobs.append(
                CompileJob(
                    (label, "sop"), f"table_minimize,{tight_body}",
                    ctrl=tables[label], library=library,
                )
            )
        tight_compiled = compile_many(
            tight_jobs, workers=workers, cache=cache, server=server
        )
        result.absorb_flow(tight_compiled.values())

    rows = []
    for depth, width, seed in grid:
        label = f"d{depth}w{width}s{seed}"
        table_ctx = compiled[(label, "table")]
        table_area = table_ctx.area.combinational
        sop_area = compiled[(label, "sop")].area.combinational
        if sop_area <= 0 or table_area <= 0:
            continue  # degenerate (constant) function
        result.points.append(
            ExperimentPoint(
                "table-based", sop_area, table_area, label,
                {"depth": depth, "width": width, "seed": seed,
                 **sizing_meta(table_ctx)},
            )
        )
        rows.append(
            [
                str(depth),
                str(width),
                str(seed),
                f"{sop_area:.1f}",
                f"{table_area:.1f}",
                f"{table_area / sop_area:.3f}",
            ]
        )
        if not sweep_timing:
            continue
        tight_table = tight_compiled[(label, "table")]
        tight_sop = tight_compiled[(label, "sop")]
        if not (tight_table.sizing.met and tight_sop.sizing.met):
            continue  # not an identical achievable target
        result.points.append(
            ExperimentPoint(
                "table-based (tight)",
                tight_sop.area.combinational,
                tight_table.area.combinational,
                label,
                {"depth": depth, "width": width, "seed": seed,
                 **sizing_meta(tight_table)},
            )
        )
    result.tables["Area per design pair (um^2)"] = format_table(
        ["depth", "width", "seed", "SOP", "table", "ratio"], rows
    )
    result.tables["Scatter"] = render_scatter(
        result.points, title="Fig. 5: y=table-based vs x=SOP area (um^2)"
    )
    stats = result.ratio_stats("table-based")
    result.notes.append(
        f"geomean table/SOP area ratio = {stats.geomean:.3f} "
        f"(paper: points on the equal-area line)"
    )
    wins = sum(1 for p in result.points if p.ratio < 1.0)
    result.notes.append(
        f"table-based wins {wins}/{len(result.points)} pairs "
        f"(paper: 'sometimes observe slightly better results for "
        f"table-based representations')"
    )
    return result
