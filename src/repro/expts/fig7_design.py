"""The paper's Fig. 7 example design, generic and direct versions.

Structure (generic): ``n``-wide one-hot decode of ``x``, optionally
registered, feeding downstream logic that is redundant *given* the
one-hot property: a pairwise-overlap detector (bitwise ANDs of
adjacent bits, OR-reduced) selecting between two data buses.  When
``y`` is known one-hot the overlap is always 0, the AND network
evaluates to constant false, and "the mux on the output becomes
redundant" -- the paper's words.

The direct version is what a designer who *knows* the one-hot property
writes: the same decoder and registers (the decoded selects are real
outputs used elsewhere) but ``out = b`` wired straight through.

Flop styles follow Fig. 8: ``"comb"`` (no flop), ``"plain"`` (no
reset), ``"sync"``, ``"async"`` -- reset styles matter because they
gate what retiming may do.
"""

from __future__ import annotations

from repro.rtl.ast import Const, Expr
from repro.rtl.builder import ModuleBuilder, cat, mux
from repro.rtl.module import Module

FLOP_STYLES = ("comb", "plain", "sync", "async")


def build_fig7(n: int, flop_style: str, direct: bool) -> Module:
    """Build one Fig. 7 variant.

    Args:
        n: decoded bus width (the paper sweeps 2..128).
        flop_style: one of :data:`FLOP_STYLES`.
        direct: the designer-optimized version (mux already removed).
    """
    if n < 2 or n & (n - 1):
        raise ValueError("n must be a power of two >= 2")
    if flop_style not in FLOP_STYLES:
        raise ValueError(f"unknown flop style {flop_style!r}")
    addr_bits = (n - 1).bit_length()

    kind = "direct" if direct else "generic"
    b = ModuleBuilder(f"fig7_{kind}_{flop_style}_n{n}")
    x = b.input("x", addr_bits)
    a = b.input("a", n)
    data_b = b.input("b", n)

    decoded_bits: list[Expr] = [x.eq(index) for index in range(n)]
    decoded = cat(*decoded_bits)

    if flop_style == "comb":
        y: Expr = decoded
    else:
        reset_kind = {"plain": "none", "sync": "sync", "async": "async"}[
            flop_style
        ]
        y_reg = b.reg("y", n, reset_kind=reset_kind, reset_value=0)
        b.drive(y_reg, decoded)
        y = y_reg

    b.output("y_out", y)
    if direct:
        b.output("out", data_b)
    else:
        # Adjacent-pair overlap: zero for any one-hot y.
        overlap = y[0:1] & y[1:2]
        for index in range(1, n - 1):
            overlap = overlap | (y[index : index + 1] & y[index + 1 : index + 2])
        use_a = overlap.any() if n > 2 else overlap[0].eq(1)
        b.output("out", mux(use_a, a, data_b))
    return b.build()


def onehot_values(n: int) -> tuple[int, ...]:
    """The annotation value set for the registered y bus."""
    return tuple(1 << index for index in range(n))
