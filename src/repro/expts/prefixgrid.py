"""Cold-grid benchmark: prefix-memoized compilation vs baseline.

The techsweep grid is the motivating workload for stage snapshots:
every (design, recipe, library) variant of one design shares the
design's frontend lowering, the two recipes share ``elaborate,
optimize``, and the libraries of one recipe share everything up to
``map`` -- yet the all-or-nothing cache re-executes that shared
prefix for every variant of a *cold* grid.

This driver quantifies the win.  It compiles the identical techsweep
job grid twice, each time against a **fresh** temporary cache (cold
is the point -- a warm cache hides the prefix machinery entirely):

* *baseline*: snapshots disabled -- every job runs its full pipeline,
  exactly the pre-snapshot behaviour;
* *prefix*: stage snapshots and the prefix-trie scheduler on -- the
  planner forces a snapshot at every shared prefix boundary, so each
  shared prefix is executed exactly once and every other variant
  resumes past it.

The figure of merit is ``execution_ratio``: baseline pass executions
over prefix-phase pass executions (resumed records replay for free
and are not executions).  CI gates this ratio and, separately, that
both phases produced **byte-identical** results -- the driver itself
raises when any variant's netlist hash, area, or record structure
drifts between the phases, so a stored record is already
identity-checked.
"""

from __future__ import annotations

import tempfile

from repro.expts.common import (
    ExperimentPoint,
    ExperimentResult,
    format_table,
    sizing_meta,
)
from repro.expts.techsweep import (
    RECIPES,
    build_jobs,
    resolve_libraries,
    swept_libraries_hash,
)
from repro.flow import CompileCache, SnapshotPolicy, compile_many
from repro.flow.core import FlowError


def executed_records(ctx) -> int:
    """How many of a context's pass records this compile *executed*.

    A resumed compile restores ``resumed_records`` records from the
    snapshot (replayed provenance, zero work) and appends one record
    per pass actually run; a from-scratch compile executed them all.
    """
    meta = getattr(ctx, "meta", None) or {}
    return len(ctx.records) - int(meta.get("resumed_records", 0) or 0)


def _structure(ctx) -> tuple:
    """The identity a variant must preserve across the two phases:
    final logic, final cost, and the full record structure (names and
    outcome flags; wall clocks excepted, they are the experiment)."""
    return (
        ctx.aig.canonical_hash() if ctx.aig is not None else None,
        None if ctx.area is None else round(ctx.area.total, 6),
        tuple(
            (r.name, r.failed, r.rejected, r.skipped) for r in ctx.records
        ),
    )


def run_prefixgrid(
    scale: str = "small",
    clock_period_ns: float = 20.0,
    workers: int = 1,
    cache=None,
    server: "str | None" = None,
    libraries: tuple[str, ...] | None = None,
    store_dir=None,
    commit: str = "HEAD",
) -> ExperimentResult:
    """Compile the techsweep grid cold, with and without snapshots.

    Args:
        scale: grid size (``small``/``medium``/``paper``).
        clock_period_ns: common relaxed timing target.
        workers: process fan-out for both phases.
        cache: ignored -- both phases run against fresh temporary
            caches, because the measurement only means anything cold
            (accepted so ``track record`` can drive every figure
            uniformly).
        server: ignored, for the same reason.
        libraries: library names to explore; defaults to every
            registered library.
        store_dir: when given, persist the result into the run store
            under ``commit``.
        commit: commit ref or label for the stored record.

    Returns:
        An :class:`ExperimentResult` with one point per job in each
        of two series (``baseline``/``prefix``); every point's ``x``
        is the variant's total record count and ``y`` how many of
        those records this phase executed, so the ``prefix`` series
        geomean is the per-variant executed fraction.

    Raises:
        FlowError: when any variant's result differs between the two
            phases -- resumption must be invisible in everything but
            wall time.
    """
    del cache, server  # cold temporary caches are the measurement
    libraries = resolve_libraries(libraries)
    jobs = build_jobs(scale, clock_period_ns, libraries)

    # The snapshot policy is pinned, not read from the environment:
    # a stored prefixgrid record must measure the same machinery on
    # every machine that records it.
    with tempfile.TemporaryDirectory(prefix="prefixgrid-base-") as tmp:
        baseline = compile_many(
            jobs,
            workers=workers,
            cache=CompileCache(tmp),
            snapshots=False,
        )
    with tempfile.TemporaryDirectory(prefix="prefixgrid-snap-") as tmp:
        prefixed = compile_many(
            jobs,
            workers=workers,
            cache=CompileCache(tmp),
            snapshots=SnapshotPolicy(),
        )

    result = ExperimentResult(
        "Prefix-memoized cold grid -- snapshots vs all-or-nothing",
        f"The techsweep grid ({len(jobs)} jobs: designs x "
        f"{len(RECIPES)} recipes x {len(libraries)} libraries) "
        f"compiled cold twice; x = records per variant, y = records "
        f"this phase actually executed.",
    )
    result.absorb_flow(prefixed.values())

    rows = []
    baseline_total = prefix_total = 0
    for job in jobs:
        base_ctx, pref_ctx = baseline[job.key], prefixed[job.key]
        if _structure(base_ctx) != _structure(pref_ctx):
            raise FlowError(
                f"prefixgrid: resumed variant {job.key!r} is not "
                f"byte-identical to its from-scratch baseline"
            )
        total = len(base_ctx.records)
        base_exec = executed_records(base_ctx)
        pref_exec = executed_records(pref_ctx)
        baseline_total += base_exec
        prefix_total += pref_exec
        label, recipe, library = job.key
        rows.append(
            [
                label,
                recipe,
                library,
                str(total),
                str(base_exec),
                str(pref_exec),
                str((pref_ctx.meta or {}).get("resumed_at", "-")),
            ]
        )
        for series, ctx, executed in (
            ("baseline", base_ctx, base_exec),
            ("prefix", pref_ctx, pref_exec),
        ):
            result.points.append(
                ExperimentPoint(
                    series,
                    float(total),
                    float(executed),
                    f"{label}/{recipe}/{library}",
                    {
                        "design": label,
                        "recipe": recipe,
                        "library": library,
                        **sizing_meta(ctx),
                    },
                )
            )
    result.tables[
        "Executed records per variant (baseline vs prefix phase)"
    ] = format_table(
        [
            "design", "recipe", "library", "records",
            "base_exec", "prefix_exec", "resumed_at",
        ],
        rows,
    )

    ratio = (
        baseline_total / prefix_total if prefix_total else float("inf")
    )
    result.meta["baseline_executed"] = baseline_total
    result.meta["prefix_executed"] = prefix_total
    result.meta["execution_ratio"] = ratio
    result.meta["libraries"] = list(libraries)
    result.meta["recipes"] = dict(RECIPES)
    result.meta["clock_period_ns"] = clock_period_ns
    result.notes.append(
        f"prefix phase executed {prefix_total} of {baseline_total} "
        f"baseline pass records: {ratio:.2f}x fewer executions"
    )
    result.notes.append(
        "all variants byte-identical across phases "
        "(netlist hash, area, record structure)"
    )

    if store_dir is not None:
        _store(result, store_dir, commit, scale, libraries)
    return result


def _store(
    result: ExperimentResult,
    store_dir,
    commit: str,
    scale: str,
    libraries: tuple[str, ...],
):
    from repro.flow.store import RunRecord, RunStore, now
    from repro.track import resolve_ref, worktree_dirty

    result.meta.setdefault("scale", scale)
    resolved = resolve_ref(commit)
    if commit == "HEAD" and resolved != commit and worktree_dirty():
        resolved += "-dirty"
    record = RunRecord(
        figure="prefixgrid",
        commit=resolved,
        result=result,
        scale=scale,
        library=swept_libraries_hash(libraries),
        created_at=now(),
    )
    return RunStore(store_dir).put(record)
