"""Technology exploration: optimization recipes x cell libraries.

The paper's late-binding argument applied to the *backend*: the same
controller IRs are pushed through several optimization pipelines and
mapped against every registered cell library, in one ``compile_many``
fan-out.  Each (pipeline, library) variant is an ordinary spec string
-- the library rides on ``map{library=...}``, the recipe on the
``resub``/``dc_rewrite`` ablation -- so every job is fingerprinted,
cached, and parallelized like any other compile, and a warm re-run
performs zero synthesis compiles.

The report answers two questions per library: what does each design
cost (area, um^2, in that library's own units) and how do the
libraries compare on identical logic -- every point's ``x`` is the
reference-library area of the same (design, recipe), so the per-series
geomean is the library's area ratio against the reference.
"""

from __future__ import annotations

import random

from repro.controllers.fsm_random import random_fsm
from repro.expts.common import (
    ExperimentPoint,
    ExperimentResult,
    format_table,
    sizing_meta,
)
from repro.flow import CompileJob, PassManager, compile_many
from repro.flow.passes import registered_library_names
from repro.tables.truthtable import TruthTable

#: The library every point's x-axis is measured in.
REFERENCE_LIBRARY = "tsmc90ish"

#: Optimization recipes ablated per library: the classic exact flow
#: against the resubstitution + don't-care-aware extension.
RECIPES = {
    "classic": "elaborate,optimize",
    "resub+dc": "elaborate,optimize,resub,dc_rewrite",
}


def _designs(scale: str) -> dict[str, tuple[str, object]]:
    """Benchmark controllers: {label: (lowering spec prefix, IR)}.

    FSMs enter through ``fsm_encode`` (case realisation + inference +
    re-encoding, like the fig6 case treatment), truth tables through
    ``table_rom`` -- both pure controller IRs, so the sweep exercises
    the frontend stage too.
    """
    if scale == "small":
        fsm_shapes = [(2, 4, 5), (2, 8, 8)]
        table_shapes = [(4, 6)]
    elif scale == "medium":
        fsm_shapes = [(2, 4, 5), (2, 8, 8), (2, 8, 17)]
        table_shapes = [(4, 6), (5, 8), (6, 8)]
    elif scale == "paper":
        fsm_shapes = [
            (2, 4, 5), (2, 8, 8), (2, 8, 16), (2, 8, 17), (2, 16, 17),
        ]
        table_shapes = [(4, 6), (5, 8), (6, 8), (6, 16), (8, 16)]
    else:
        raise ValueError(f"unknown scale {scale!r}")

    fsm_prefix = (
        "fsm_encode{realize=case},fsm_infer,honour_annotations,encode"
    )
    designs: dict[str, tuple[str, object]] = {}
    # Seeds derive from the shape labels, not built-in hash(): stored
    # techsweep records must describe identical designs under every
    # interpreter version, or cross-commit diffs compare random noise.
    for inputs, outputs, states in fsm_shapes:
        label = f"fsm_m{inputs}n{outputs}s{states}"
        designs[label] = (
            fsm_prefix,
            random_fsm(
                inputs, outputs, states, random.Random(label), name=label
            ),
        )
    for inputs, width in table_shapes:
        label = f"tbl_i{inputs}w{width}"
        designs[label] = (
            "table_rom",
            TruthTable.random(inputs, width, random.Random(label)),
        )
    return designs


def variant_spec(
    prefix: str, recipe: str, library: str, clock_period_ns: float
) -> str:
    """The complete spec of one (design lowering, recipe, library)."""
    spec = (
        f"{prefix},{recipe},map{{library={library}}},"
        f"size{{clock_period_ns={clock_period_ns!r}}}"
    )
    return PassManager.parse(spec).spec()


def resolve_libraries(
    libraries: tuple[str, ...] | None,
) -> tuple[str, ...]:
    """The library list a sweep explores: the caller's, or every
    registered kit -- always including :data:`REFERENCE_LIBRARY`,
    which the x-axis is measured in."""
    libraries = tuple(libraries or registered_library_names())
    if REFERENCE_LIBRARY not in libraries:
        libraries = (REFERENCE_LIBRARY,) + libraries
    return libraries


def build_jobs(
    scale: str = "small",
    clock_period_ns: float = 20.0,
    libraries: tuple[str, ...] | None = None,
) -> list[CompileJob]:
    """The sweep's complete job grid (designs x recipes x libraries),
    keyed ``(design, recipe, library)``.

    Shared between :func:`run_techsweep` and the traffic-replay
    benchmark (:mod:`repro.expts.replay`), which samples its client
    traces from this grid -- the replay traffic is real figure-driver
    work, not synthetic filler.
    """
    libraries = resolve_libraries(libraries)
    jobs = []
    for label, (prefix, ir) in _designs(scale).items():
        for recipe_name, recipe in RECIPES.items():
            for library in libraries:
                spec = variant_spec(
                    prefix, recipe, library, clock_period_ns
                )
                jobs.append(
                    CompileJob((label, recipe_name, library), spec, ctrl=ir)
                )
    return jobs


def run_techsweep(
    scale: str = "small",
    clock_period_ns: float = 20.0,
    workers: int = 1,
    cache=None,
    server: "str | None" = None,
    libraries: tuple[str, ...] | None = None,
    store_dir=None,
    commit: str = "HEAD",
) -> ExperimentResult:
    """Fan every design through recipes x libraries and report.

    Args:
        scale: sweep size (``small``/``medium``/``paper``).
        clock_period_ns: common relaxed timing target.
        workers: process fan-out for :func:`repro.flow.compile_many`.
        cache: a :class:`~repro.flow.CompileCache`; warm re-runs
            perform zero compiles.
        libraries: library names to explore; defaults to every
            registered library (``map{library=...}`` names).
        store_dir: when given, the result is additionally persisted
            into the run store at this directory under ``commit``
            (resolved like ``python -m repro.track record``).
        commit: commit ref or label for the stored record.

    Returns:
        An :class:`ExperimentResult` with one series per explored
        library; each point's ``y`` is a (design, recipe) area in that
        library and ``x`` the same variant's area in
        :data:`REFERENCE_LIBRARY`, so series geomeans read as
        area ratios against the reference kit.
    """
    libraries = resolve_libraries(libraries)
    designs = _designs(scale)

    result = ExperimentResult(
        "Technology exploration -- recipes x libraries",
        f"{len(designs)} controller designs x {len(RECIPES)} "
        f"optimization recipes x {len(libraries)} libraries at a "
        f"{clock_period_ns} ns target; x = {REFERENCE_LIBRARY} area "
        f"of the identical variant.",
    )

    jobs = build_jobs(scale, clock_period_ns, libraries)
    compiled = compile_many(jobs, workers=workers, cache=cache, server=server)
    result.absorb_flow(compiled.values())

    rows = []
    for label in designs:
        for recipe_name in RECIPES:
            reference = compiled[(label, recipe_name, REFERENCE_LIBRARY)]
            for library in libraries:
                ctx = compiled[(label, recipe_name, library)]
                rows.append(
                    [
                        label,
                        recipe_name,
                        library,
                        f"{ctx.area.total:.1f}",
                        f"{ctx.timing.critical_delay:.3f}",
                        "yes" if ctx.sizing.met else "NO",
                    ]
                )
                if reference.area.total <= 0:
                    continue  # degenerate design: no meaningful ratio
                result.points.append(
                    ExperimentPoint(
                        library,
                        reference.area.total,
                        ctx.area.total,
                        f"{label}/{recipe_name}",
                        {
                            "design": label,
                            "recipe": recipe_name,
                            "library": library,
                            **sizing_meta(ctx),
                        },
                    )
                )
    result.tables["Area/delay per (design, recipe, library)"] = format_table(
        ["design", "recipe", "library", "area", "delay_ns", "met"], rows
    )
    result.meta["libraries"] = list(libraries)
    result.meta["recipes"] = dict(RECIPES)
    result.meta["reference_library"] = REFERENCE_LIBRARY
    result.meta["clock_period_ns"] = clock_period_ns
    for library in libraries:
        stats = result.ratio_stats(library)
        result.notes.append(
            f"{library}: geomean area ratio vs {REFERENCE_LIBRARY} = "
            f"{stats.geomean:.3f} over {stats.count} variants"
        )
    classic_ands = _recipe_and_total(compiled, "classic")
    ablated_ands = _recipe_and_total(compiled, "resub+dc")
    result.notes.append(
        f"resub+dc recipe removes {classic_ands - ablated_ands} more "
        f"AND nodes than the classic recipe across the sweep"
    )

    if store_dir is not None:
        _store(result, store_dir, commit, scale, libraries)
    return result


def _recipe_and_total(compiled, recipe_name: str) -> int:
    """Final AND-node total across one recipe's compiles (reference
    library only, so each design counts once)."""
    total = 0
    for (label, recipe, library), ctx in compiled.items():
        if recipe == recipe_name and library == REFERENCE_LIBRARY:
            total += ctx.aig.num_ands
    return total


def swept_libraries_hash(libraries: tuple[str, ...]) -> str:
    """One hash covering *every* library the sweep mapped against.

    The record's ``library`` field is what ``diff_runs`` checks before
    comparing two commits' areas; hashing only the default library
    would leave the guard blind to edits of the non-default kits this
    sweep explicitly explores."""
    from repro.flow.passes import libraries_digest

    return libraries_digest(libraries)


def _store(
    result: ExperimentResult,
    store_dir,
    commit: str,
    scale: str,
    libraries: tuple[str, ...],
):
    from repro.flow.store import RunRecord, RunStore, now
    from repro.track import resolve_ref, worktree_dirty

    result.meta.setdefault("scale", scale)
    resolved = resolve_ref(commit)
    if commit == "HEAD" and resolved != commit and worktree_dirty():
        # Uncommitted edits must not masquerade as the clean commit:
        # a later `track diff <base> HEAD` would compare against
        # results HEAD's tree never produced.  Key them visibly.
        resolved += "-dirty"
    record = RunRecord(
        figure="techsweep",
        commit=resolved,
        result=result,
        scale=scale,
        library=swept_libraries_hash(libraries),
        created_at=now(),
    )
    return RunStore(store_dir).put(record)
