"""Word-level helper operations over AIG literals.

A *word* is a list of literals, least-significant bit first.  These
helpers build the handful of word-level structures the RTL elaborator
and the controller generators need: constants, bitwise logic, equality,
increment/add, one-hot decode, reduction trees, table reads (mux trees)
and SOP realisations of truth tables.
"""

from __future__ import annotations

from repro.aig.graph import AIG, CONST0, CONST1, lit_compl
from repro.tables.cube import Cube
from repro.tables.isop import isop


def const_word(value: int, width: int) -> list[int]:
    """A constant word as literals (no graph nodes are created)."""
    return [CONST1 if value >> bit & 1 else CONST0 for bit in range(width)]


def word_value(word: list[int]) -> int | None:
    """The integer value of a fully-constant word, else ``None``."""
    value = 0
    for bit, lit in enumerate(word):
        if lit == CONST1:
            value |= 1 << bit
        elif lit != CONST0:
            return None
    return value


def not_word(word: list[int]) -> list[int]:
    return [lit_compl(lit) for lit in word]


def and_word(aig: AIG, a: list[int], b: list[int]) -> list[int]:
    _check_same_width(a, b)
    return [aig.and_(x, y) for x, y in zip(a, b)]


def or_word(aig: AIG, a: list[int], b: list[int]) -> list[int]:
    _check_same_width(a, b)
    return [aig.or_(x, y) for x, y in zip(a, b)]


def xor_word(aig: AIG, a: list[int], b: list[int]) -> list[int]:
    _check_same_width(a, b)
    return [aig.xor(x, y) for x, y in zip(a, b)]


def mux_word(aig: AIG, sel: int, if1: list[int], if0: list[int]) -> list[int]:
    _check_same_width(if1, if0)
    return [aig.mux(sel, x, y) for x, y in zip(if1, if0)]


def reduce_and(aig: AIG, lits: list[int]) -> int:
    """Balanced AND reduction; empty input is constant true."""
    return _reduce_tree(aig.and_, lits, CONST1)


def reduce_or(aig: AIG, lits: list[int]) -> int:
    """Balanced OR reduction; empty input is constant false."""
    return _reduce_tree(aig.or_, lits, CONST0)


def _reduce_tree(op, lits: list[int], empty: int) -> int:
    if not lits:
        return empty
    layer = list(lits)
    while len(layer) > 1:
        nxt = []
        for index in range(0, len(layer) - 1, 2):
            nxt.append(op(layer[index], layer[index + 1]))
        if len(layer) % 2:
            nxt.append(layer[-1])
        layer = nxt
    return layer[0]


def eq_const(aig: AIG, word: list[int], value: int) -> int:
    """Literal asserting ``word == value``."""
    terms = []
    for bit, lit in enumerate(word):
        terms.append(lit if value >> bit & 1 else lit_compl(lit))
    return reduce_and(aig, terms)


def eq_word(aig: AIG, a: list[int], b: list[int]) -> int:
    _check_same_width(a, b)
    return reduce_and(aig, [aig.xnor(x, y) for x, y in zip(a, b)])


def add_words(aig: AIG, a: list[int], b: list[int], carry_in: int = CONST0) -> list[int]:
    """Ripple-carry addition, result truncated to the operand width."""
    _check_same_width(a, b)
    carry = carry_in
    out = []
    for x, y in zip(a, b):
        out.append(aig.xor(aig.xor(x, y), carry))
        carry = aig.or_(aig.and_(x, y), aig.and_(carry, aig.xor(x, y)))
    return out


def increment(aig: AIG, word: list[int], amount: int = 1) -> list[int]:
    """``word + amount`` truncated to the word width."""
    return add_words(aig, word, const_word(amount, len(word)))


def onehot_decode(aig: AIG, word: list[int], num_outputs: int | None = None) -> list[int]:
    """Decode a binary word into one-hot select lines.

    Built as a recursive splitter so common subterms are shared.
    """
    if num_outputs is None:
        num_outputs = 1 << len(word)
    if num_outputs > 1 << len(word):
        raise ValueError("more outputs than the word can address")
    return [eq_const(aig, word, index) for index in range(num_outputs)]


def table_read(aig: AIG, address: list[int], rows: list[list[int]]) -> list[int]:
    """Read a table of words with a mux tree over the address bits.

    ``rows[i]`` is the word stored at address ``i`` (missing rows read
    as zero).  When the row literals are constants -- a bound
    configuration -- AIG folding collapses the tree as it is built:
    this function *is* the partial-evaluation entry point.
    """
    if not rows:
        raise ValueError("table must have at least one row")
    width = len(rows[0])
    for row in rows:
        if len(row) != width:
            raise ValueError("table rows must share one width")
    depth = 1 << len(address)
    if len(rows) > depth:
        raise ValueError("table deeper than the address space")
    padded = list(rows) + [const_word(0, width)] * (depth - len(rows))

    def build(bits: list[int], segment: list[list[int]]) -> list[int]:
        if not bits:
            return segment[0]
        half = len(segment) // 2
        sel = bits[-1]
        low = build(bits[:-1], segment[:half])
        high = build(bits[:-1], segment[half:])
        return mux_word(aig, sel, high, low)

    return build(list(address), padded)


def from_truth_table(aig: AIG, table: int, inputs: list[int], dc: int = 0) -> int:
    """Realise a single-output truth table as two-level logic.

    The cover comes from ISOP; cubes become balanced AND trees feeding a
    balanced OR tree.  Structural hashing shares subterms between
    cubes and with pre-existing logic.
    """
    cubes = isop(table, dc, len(inputs))
    return _build_cover(aig, cubes, inputs)


def _build_cover(aig: AIG, cubes: list[Cube], inputs: list[int]) -> int:
    terms = []
    for cube in cubes:
        lits = [
            inputs[var] if polarity else lit_compl(inputs[var])
            for var, polarity in cube.literals()
        ]
        terms.append(reduce_and(aig, lits))
    return reduce_or(aig, terms)


def _check_same_width(a: list[int], b: list[int]) -> None:
    if len(a) != len(b):
        raise ValueError(f"word width mismatch: {len(a)} vs {len(b)}")
