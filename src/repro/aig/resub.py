"""Resubstitution: re-express nodes as functions of existing divisors.

Classic MIS/ABC-style resubstitution (Mishchenko et al.): a node whose
function can be rebuilt from up to ``k`` *divisors* -- nodes the graph
already pays for -- frees its maximum fanout-free cone.  This pass
works on the same windowed global truth tables the functional sweep
uses (:func:`repro.aig.rewrite.global_node_tables`): a node and its
candidate divisors are compared as functions over the primary
inputs/latch outputs they depend on, so acceptance is an exact
functional argument, not a structural heuristic.

For every node ``n`` (in topological order, over a rebuilt graph):

1. collect divisors: already-rebuilt nodes (never in ``n``'s
   transitive fanout, so no cycles) whose support is a subset of
   ``n``'s and whose truth table is known;
2. greedily pick at most ``k`` divisors whose value vector
   distinguishes every ON/OFF assignment pair of ``n``'s function;
3. derive the dependency function ``h`` over those divisors -- leaf
   vectors no source assignment can produce become don't-cares -- and
   build it through the shared ISOP machinery;
4. accept when the dry-run cost is strictly below the node's MFFC
   size (a net node decrease), never counting reused divisors.

Resubstitution is *exact* (the new cone equals the old function on
every reachable and unreachable input), so any number of acceptances
compose safely within one pass; the test suite checks the result with
SAT-based equivalence on randomized graphs.
"""

from __future__ import annotations

from repro.aig.graph import AIG
from repro.aig.kernel import resolve_backend
from repro.aig.rewrite import (
    build_plan,
    deref_cone,
    plan_cover,
    reref_cone,
)
from repro.tables.bits import all_ones, var_mask

#: Hard ceiling on divisors entering one dependency function: ``h`` is
#: resynthesised through truth tables, so its universe must stay small.
MAX_RESUB_K = 6


def resub(
    aig: AIG,
    k: int = 3,
    max_divisors: int = 16,
    support_limit: int = 8,
    kernel=None,
) -> AIG:
    """One resubstitution pass; returns the (possibly) smaller graph.

    Args:
        aig: the graph to optimize (functionality is preserved).
        k: maximum divisors the replacement function may read.
        max_divisors: bound on internal candidate divisors tried per
            node (sources of the node's support are always available
            on top of these).
        support_limit: widest global support a node may have and still
            be a resubstitution target/divisor; bounds table sizes.

    Returns:
        A cleaned-up AIG, never larger than the input: if the
        accepted substitutions do not pay off after dead-cone removal
        (shared logic can shrink an MFFC estimate), the original
        graph is returned unchanged.
    """
    if k < 1 or k > MAX_RESUB_K:
        raise ValueError(f"k must be in 1..{MAX_RESUB_K}, got {k}")
    if max_divisors < 1:
        raise ValueError(f"max_divisors must be >= 1, got {max_divisors}")
    if support_limit < 1:
        raise ValueError(f"support_limit must be >= 1, got {support_limit}")

    backend = resolve_backend(kernel)
    tables = backend.global_node_tables(aig, support_limit)
    refs = aig.fanout_counts()

    new = AIG()
    lit_map: dict[int, int] = {0: 0}
    for node, name in zip(aig.pis, aig.pi_names):
        lit_map[node << 1] = new.add_pi(name)
    for latch in aig.latches:
        lit_map[latch.node << 1] = new.add_latch(
            latch.name, latch.reset_kind, latch.reset_value
        )

    def translate(lit: int) -> int:
        return lit_map[lit & ~1] ^ (lit & 1)

    # Internal divisor candidates: old-graph AND nodes already rebuilt
    # (strictly earlier in topo order), in order of appearance.
    divisor_pool: list[int] = []

    for node in aig.topo_order():
        f0, f1 = aig.fanins(node)
        best_lit = new.and_(translate(f0), translate(f1))
        key = tables[node]
        # MFFC via the standard deref/re-ref walk on the shared count
        # array; the member set is needed to disqualify divisors that
        # would die with the node they are meant to replace.
        mffc_members: set[int] = set()
        budget = deref_cone(aig, node, refs, mffc_members)
        if key is not None and len(key[0]) >= 1 and budget > 1:
            sources, table = key
            candidate = _try_resub(
                new,
                node,
                sources,
                table,
                tables,
                divisor_pool,
                mffc_members,
                translate,
                k,
                max_divisors,
                budget,
                backend,
            )
            if candidate is not None:
                best_lit = candidate
        reref_cone(aig, node, refs)
        lit_map[node << 1] = best_lit
        divisor_pool.append(node)

    for name, lit in aig.pos:
        new.add_po(name, translate(lit))
    for old_latch, new_latch in zip(aig.latches, new.latches):
        new.set_latch_next(new_latch.node << 1, translate(old_latch.next_lit))
    compacted, _ = new.cleanup()
    if compacted.num_ands > aig.num_ands:
        return aig
    return compacted


def _try_resub(
    new: AIG,
    node: int,
    sources: tuple[int, ...],
    table: int,
    tables,
    divisor_pool: list[int],
    mffc_members: set[int],
    translate,
    k: int,
    max_divisors: int,
    budget: int,
    backend,
) -> int | None:
    """Attempt to re-express ``node``; returns the new literal or None."""
    universe = all_ones(len(sources))
    if table == 0 or table == universe:
        return None  # constants are strash/sweep territory
    source_set = set(sources)

    # Divisors as (old id or source, table over `sources`), sources
    # first -- they are free variables, always usable, and make the
    # fallback of "resynthesise over the support" expressible.
    divisors: list[tuple[int, int]] = []
    for position, source in enumerate(sources):
        divisors.append((source, var_mask(position, len(sources))))
    taken = 0
    examined = 0
    # Bound the *walk* as well as the accepts: on graphs whose global
    # supports are mostly disjoint almost nothing qualifies, and an
    # uncapped scan of every earlier node would make the pass
    # quadratic in graph size.
    scan_cap = 32 * max_divisors
    for old in reversed(divisor_pool):
        if taken >= max_divisors or examined >= scan_cap:
            break
        examined += 1
        if old in mffc_members:
            continue  # dies with the node it would replace
        key = tables[old]
        if key is None:
            continue
        d_sources, d_table = key
        if not d_sources or not set(d_sources) <= source_set:
            continue
        expanded = backend.expand_table(d_table, d_sources, sources)
        if expanded == 0 or expanded == universe:
            continue
        divisors.append((old, expanded))
        taken += 1

    # Divisor selection and the dependency function are kernel batch
    # ops (partition refinement / vector histograms); every backend
    # implements the same greedy with the same tie-breaks.
    chosen_indices = backend.pick_divisors(
        table, [d_table for _, d_table in divisors], len(sources), k
    )
    if chosen_indices is None:
        return None
    chosen = [divisors[index] for index in chosen_indices]

    on, dc = backend.dependency_function(
        table, [d for _, d in chosen], len(sources)
    )
    leaf_lits = [
        translate(old << 1) for old, _ in chosen
    ]
    cost, plan = plan_cover(
        new, on, dc, len(chosen), leaf_lits, kernel=backend
    )
    if cost >= budget:
        return None
    return build_plan(new, plan, on, dc, len(chosen), leaf_lits)


