"""K-feasible cut enumeration with truth-table computation.

A *cut* of a node is a set of nodes (leaves) that separates it from the
inputs; every k-feasible cut with its local truth table is the unit of
work for both technology mapping and rewriting.  This is the standard
priority-cuts algorithm: merge fanin cut sets, discard cuts wider than
``k``, keep a bounded number per node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aig.graph import AIG, lit_node, lit_sign
from repro.aig.kernel import resolve_backend
from repro.tables.bits import all_ones, var_mask


@dataclass(frozen=True, slots=True)
class Cut:
    """A cut: leaf node indices (sorted) plus the local function.

    ``table`` is a truth-table int over ``len(leaves)`` variables where
    variable ``i`` is ``leaves[i]``.
    """

    leaves: tuple[int, ...]
    table: int

    @property
    def size(self) -> int:
        return len(self.leaves)


class CutSet:
    """Cuts for every node of an AIG."""

    def __init__(
        self, aig: AIG, k: int = 4, max_cuts: int = 8, kernel=None
    ) -> None:
        if k < 2 or k > 6:
            raise ValueError("cut size must be between 2 and 6")
        self.aig = aig
        self.k = k
        self.max_cuts = max_cuts
        self._kernel = resolve_backend(kernel)
        self.cuts: dict[int, list[Cut]] = {}
        self._compute()

    def _compute(self) -> None:
        aig = self.aig
        for source in aig.combinational_inputs():
            self.cuts[source] = [Cut((source,), 0b10)]
        self.cuts[0] = [Cut((), 0)]  # constant node: empty cut, table false
        for node in aig.topo_order():
            self.cuts[node] = self._node_cuts(node)

    def _node_cuts(self, node: int) -> list[Cut]:
        aig = self.aig
        f0, f1 = aig.fanins(node)
        cuts0 = self.cuts[lit_node(f0)]
        cuts1 = self.cuts[lit_node(f1)]
        merged: dict[tuple[int, ...], Cut] = {}
        for cut0 in cuts0:
            for cut1 in cuts1:
                leaves = tuple(sorted(set(cut0.leaves) | set(cut1.leaves)))
                if len(leaves) > self.k:
                    continue
                if leaves in merged:
                    continue
                table0 = self._kernel.expand_cut(cut0.table, cut0.leaves, leaves)
                table1 = self._kernel.expand_cut(cut1.table, cut1.leaves, leaves)
                universe = all_ones(len(leaves))
                if lit_sign(f0):
                    table0 ^= universe
                if lit_sign(f1):
                    table1 ^= universe
                merged[leaves] = Cut(leaves, table0 & table1)
        cuts = sorted(merged.values(), key=lambda c: (c.size, c.leaves))
        cuts = _drop_dominated(cuts)[: self.max_cuts]
        cuts.append(Cut((node,), 0b10))  # trivial cut, always last
        return cuts

    def __getitem__(self, node: int) -> list[Cut]:
        return self.cuts[node]


def enumerate_cuts(
    aig: AIG, k: int = 4, max_cuts: int = 8, kernel=None
) -> CutSet:
    """Convenience constructor for :class:`CutSet`."""
    return CutSet(aig, k=k, max_cuts=max_cuts, kernel=kernel)


def _drop_dominated(cuts: list[Cut]) -> list[Cut]:
    """Remove cuts whose leaves are a superset of another cut's."""
    kept: list[Cut] = []
    for cut in cuts:
        leaf_set = set(cut.leaves)
        if any(set(other.leaves) <= leaf_set for other in kept):
            continue
        kept.append(cut)
    return kept


def cut_table_var(index: int, num_leaves: int) -> int:
    """Truth table of leaf ``index`` as a cut-local variable."""
    return var_mask(index, num_leaves)
