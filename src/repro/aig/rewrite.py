"""Cut-based rewriting and functional sweeping.

Two complementary clean-up passes run after elaboration:

* :func:`tt_sweep` -- global functional reduction: nodes whose truth
  table over (a bounded window of) the combinational inputs coincides
  are merged.  This is what removes the redundant halves of partially
  evaluated mux trees.
* :func:`rewrite` -- local resynthesis: each node's function over one
  of its 4-feasible cuts is re-expressed through ISOP; the new
  structure is adopted when it creates fewer fresh nodes than the
  node's maximum fanout-free cone currently spends.

Both passes preserve functionality; the test suite checks this with
SAT-based equivalence on randomized graphs.
"""

from __future__ import annotations

from repro.aig.cuts import CutSet
from repro.aig.graph import AIG, lit_compl, lit_node
from repro.aig.kernel import resolve_backend
from repro.tables.bits import all_ones

_SWEEP_SUPPORT_LIMIT = 12


def adaptive_support_limit(aig: AIG) -> int:
    """Window size for sweeping, shrunk for very large graphs."""
    ands = aig.num_ands
    if ands <= 20_000:
        return _SWEEP_SUPPORT_LIMIT
    if ands <= 80_000:
        return 10
    return 8


def tt_sweep(
    aig: AIG, support_limit: int | None = None, kernel=None
) -> AIG:
    """Merge functionally equivalent nodes (exact, windowed).

    Every AND node whose structural support has at most
    ``support_limit`` sources gets a canonical key: its truth table
    over those sources (normalised to the true support).  Nodes with
    equal keys (or complementary keys) collapse onto one
    representative.  Wider nodes are kept structurally.
    """
    if support_limit is None:
        support_limit = adaptive_support_limit(aig)
    # OLD node id -> (sorted source tuple, table) or None when too
    # wide; depends only on the input graph, so the shared propagation
    # computes it up front.
    tables = global_node_tables(aig, support_limit, kernel=kernel)
    new = AIG()
    lit_map: dict[int, int] = {0: 0}
    canonical: dict[tuple[tuple[int, ...], int], int] = {}

    for node, name in zip(aig.pis, aig.pi_names):
        lit_map[node << 1] = new.add_pi(name)
    for latch in aig.latches:
        lit_map[latch.node << 1] = new.add_latch(
            latch.name, latch.reset_kind, latch.reset_value
        )

    def translate(lit: int) -> int:
        return lit_map[lit & ~1] ^ (lit & 1)

    for node in aig.topo_order():
        f0, f1 = aig.fanins(node)
        key = tables[node]
        built = None
        if key is not None:
            leaves, table = key
            universe = all_ones(len(leaves))
            if table == 0:
                built = 0
            elif table == universe:
                built = 1
            else:
                rep = canonical.get(key)
                if rep is not None:
                    built = translate(rep << 1)
                else:
                    compl = canonical.get((leaves, table ^ universe))
                    if compl is not None:
                        built = lit_compl(translate(compl << 1))
                    else:
                        canonical[key] = node
        if built is None:
            built = new.and_(translate(f0), translate(f1))
        lit_map[node << 1] = built

    for name, lit in aig.pos:
        new.add_po(name, translate(lit))
    for old_latch, new_latch in zip(aig.latches, new.latches):
        new.set_latch_next(new_latch.node << 1, translate(old_latch.next_lit))
    compacted, _ = new.cleanup()
    return compacted


def rewrite(aig: AIG, k: int = 4, max_cuts: int = 6, kernel=None) -> AIG:
    """One pass of cut-based local resynthesis.

    For every AND node, try to re-express its best ``k``-cut function
    through an ISOP cover built over already-rebuilt leaves; adopt the
    version that adds the fewest new nodes.  Candidate size is measured
    with a dry run against the new graph's structural hash table, so
    rejected candidates leave no residue.
    """
    backend = resolve_backend(kernel)
    cuts = CutSet(aig, k=k, max_cuts=max_cuts, kernel=backend)
    mffc = mffc_sizes(aig)
    new = AIG()
    lit_map: dict[int, int] = {0: 0}
    for node, name in zip(aig.pis, aig.pi_names):
        lit_map[node << 1] = new.add_pi(name)
    for latch in aig.latches:
        lit_map[latch.node << 1] = new.add_latch(
            latch.name, latch.reset_kind, latch.reset_value
        )

    def translate(lit: int) -> int:
        return lit_map[lit & ~1] ^ (lit & 1)

    for node in aig.topo_order():
        f0, f1 = aig.fanins(node)
        best_lit = new.and_(translate(f0), translate(f1))
        budget = mffc[node]
        for cut in cuts[node]:
            if cut.size < 2 or cut.leaves == (node,):
                continue
            leaf_lits = [translate(leaf << 1) for leaf in cut.leaves]
            cost, plan = plan_cover(
                new, cut.table, 0, cut.size, leaf_lits, kernel=backend
            )
            if cost < budget:
                candidate = build_plan(new, plan, cut.table, 0, cut.size, leaf_lits)
                best_lit = candidate
                budget = cost
        lit_map[node << 1] = best_lit

    for name, lit in aig.pos:
        new.add_po(name, translate(lit))
    for old_latch, new_latch in zip(aig.latches, new.latches):
        new.set_latch_next(new_latch.node << 1, translate(old_latch.next_lit))
    compacted, _ = new.cleanup()
    return compacted


def global_node_tables(
    aig: AIG, support_limit: int, kernel=None
) -> dict[int, tuple[tuple[int, ...], int] | None]:
    """Windowed global truth tables for every node.

    Maps each node to ``(sources, table)`` -- its function over the
    (sorted) primary inputs and latch outputs it transitively depends
    on, normalised to the true support -- or ``None`` when that
    support exceeds ``support_limit``.  This is the same propagation
    :func:`tt_sweep` runs inline; :mod:`repro.aig.resub` and
    :mod:`repro.aig.dontcare` share it as the substrate for
    divisor/don't-care reasoning.  Because the variables are genuine
    sources (every assignment of them is achievable), conclusions
    drawn from these tables are exact, never approximate.

    The propagation itself is a :class:`repro.aig.kernel.KernelBackend`
    batch op (``kernel`` follows the usual resolution order); every
    backend returns identical tables.
    """
    return resolve_backend(kernel).global_node_tables(aig, support_limit)


def deref_cone(
    aig: AIG, root: int, refs: list[int], members: set[int] | None = None
) -> int:
    """Dereference ``root``'s cone on the shared count array.

    Returns the MFFC size; when ``members`` is given, the cone's node
    set is collected into it as well (resubstitution needs the set to
    disqualify divisors that would die with the node they replace).
    Must be undone with :func:`reref_cone` before the next query.
    """
    if members is not None:
        members.add(root)
    count = 0
    stack = [root]
    while stack:
        node = stack.pop()
        count += 1
        for lit in aig.fanins(node):
            child = lit_node(lit)
            refs[child] -= 1
            if refs[child] == 0 and aig.is_and(child):
                if members is not None:
                    members.add(child)
                stack.append(child)
    return count


def reref_cone(aig: AIG, root: int, refs: list[int]) -> None:
    """Undo :func:`deref_cone` (the standard re-reference walk)."""
    stack = [root]
    while stack:
        node = stack.pop()
        for lit in aig.fanins(node):
            child = lit_node(lit)
            if refs[child] == 0 and aig.is_and(child):
                stack.append(child)
            refs[child] += 1


def mffc_sizes(aig: AIG) -> list[int]:
    """Size of each node's maximum fanout-free cone.

    Uses the standard dereference/re-reference trick on one shared
    reference-count array, so the whole computation is linear in the
    total MFFC volume rather than quadratic in graph size.
    """
    refs = aig.fanout_counts()
    sizes = [0] * aig.num_nodes
    for node in aig.topo_order():
        sizes[node] = deref_cone(aig, node, refs)
        reref_cone(aig, node, refs)
    return sizes


def plan_cover(
    aig: AIG, on: int, dc: int, num_vars: int, leaf_lits: list[int],
    kernel=None,
):
    """Dry-run ISOP construction of any function ``g`` with
    ``on <= g <= on | dc``; returns (new-node count, cube plan)."""
    universe = all_ones(num_vars)
    if on == 0 or (on | dc) == universe:
        return 0, []
    cubes = resolve_backend(kernel).isop_cover(on, dc, num_vars)
    overlay: dict[tuple[int, int], int] = {}
    next_fake = [aig.num_nodes]

    def dry_and(a: int, b: int) -> int:
        if a == 0 or b == 0 or a == lit_compl(b):
            return 0
        if a == 1 or a == b:
            return b
        if b == 1:
            return a
        if a > b:
            a, b = b, a
        existing = aig._strash.get((a, b))
        if existing is not None:
            return existing << 1
        fake = overlay.get((a, b))
        if fake is None:
            fake = next_fake[0] << 1
            next_fake[0] += 1
            overlay[(a, b)] = fake
        return fake

    _build_cover_shape(dry_and, cubes, leaf_lits)
    return len(overlay), cubes


def build_plan(
    aig: AIG, cubes, on: int, dc: int, num_vars: int, leaf_lits: list[int]
) -> int:
    """Materialise a :func:`plan_cover` plan in ``aig``; the dry run
    and this build share one shape, so the cost estimate is exact."""
    if on == 0:
        return 0
    if (on | dc) == all_ones(num_vars):
        return 1
    return _build_cover_shape(aig.and_, cubes, leaf_lits)


def _build_cover_shape(and_fn, cubes, leaf_lits: list[int]) -> int:
    """The exact AND/OR shape shared by the dry run and the real build."""
    terms = []
    for cube in cubes:
        lits = sorted(
            leaf_lits[var] if polarity else lit_compl(leaf_lits[var])
            for var, polarity in cube.literals()
        )
        acc = 1
        for lit in lits:
            acc = and_fn(acc, lit)
        terms.append(acc)
    result = 0
    for term in sorted(terms):
        result = lit_compl(and_fn(lit_compl(result), lit_compl(term)))
    return result
