"""Fast truth-table reshaping for windowed functional analysis.

Tables are big-int bitmaps (see :mod:`repro.tables.bits`).  These
helpers insert and remove variables by block duplication/extraction,
which keeps windowed sweeping affordable even for 10-12 variable
windows (1-4 kbit tables).
"""

from __future__ import annotations


def insert_var(table: int, position: int, num_vars: int) -> int:
    """Add a don't-care variable at ``position`` to an ``num_vars`` table."""
    block = 1 << position
    chunk_mask = (1 << block) - 1
    out = 0
    offset_out = 0
    for offset in range(0, 1 << num_vars, block):
        chunk = (table >> offset) & chunk_mask
        out |= (chunk | (chunk << block)) << offset_out
        offset_out += 2 * block
    return out


def remove_var(table: int, position: int, num_vars: int) -> int:
    """Drop a variable the table does not depend on (keeps even blocks)."""
    block = 1 << position
    chunk_mask = (1 << block) - 1
    out = 0
    offset_out = 0
    for offset in range(0, 1 << num_vars, 2 * block):
        out |= ((table >> offset) & chunk_mask) << offset_out
        offset_out += block
    return out


def expand_table(table: int, from_leaves: tuple[int, ...], to_leaves: tuple[int, ...]) -> int:
    """Re-express a table over a sorted superset of its leaves.

    Both tuples must be sorted ascending and ``from_leaves`` must be a
    subset of ``to_leaves``; variable ``i`` of the result corresponds
    to ``to_leaves[i]``.
    """
    if from_leaves == to_leaves:
        return table
    from_set = set(from_leaves)
    num_vars = len(from_leaves)
    for position, leaf in enumerate(to_leaves):
        if leaf in from_set:
            continue
        table = insert_var(table, position, num_vars)
        num_vars += 1
    return table


def project_table(table: int, keep_positions: tuple[int, ...], num_vars: int) -> int:
    """Restrict a table to the given variable positions.

    Every removed variable must be a non-support variable; positions
    are indices into the current variable order.

    Raises:
        ValueError: a keep position is outside ``range(num_vars)``
            (it would silently refer to no variable at all).
    """
    keep = set(keep_positions)
    for position in keep:
        if not 0 <= position < num_vars:
            raise ValueError(
                f"keep position {position} out of range for "
                f"{num_vars}-variable table"
            )
    for position in range(num_vars - 1, -1, -1):
        if position in keep:
            continue
        table = remove_var(table, position, num_vars)
        num_vars -= 1
    return table
