"""The pure-Python kernel backend: big-int truth tables.

This is the original hot-path code of ``rewrite``/``resub``/
``dc_rewrite``, moved here *verbatim* from those modules so its
behaviour stays pinned: every other backend is held to bit-for-bit
agreement with this one by the differential test harness.  Tables are
the big-int encoding of :mod:`repro.tables.bits`; windowed sweeping
costs are bounded by the callers' ``support_limit``.
"""

from __future__ import annotations

from repro.aig.graph import lit_node, lit_sign
from repro.aig.kernel import NU, KernelBackend
from repro.aig.tt_util import (
    expand_table,
    insert_var,
    project_table,
    remove_var,
)
from repro.tables.bits import (
    all_ones,
    cofactor0,
    cofactor1,
    popcount,
    tt_support,
)
from repro.tables.isop import isop


class PureBackend(KernelBackend):
    """Big-int truth tables: the reference kernel, no dependencies."""

    name = "pure"

    # -- table algebra ------------------------------------------------
    def insert_var(self, table, position, num_vars):
        return insert_var(table, position, num_vars)

    def remove_var(self, table, position, num_vars):
        return remove_var(table, position, num_vars)

    def expand_table(self, table, from_leaves, to_leaves):
        return expand_table(table, from_leaves, to_leaves)

    def project_table(self, table, keep_positions, num_vars):
        return project_table(table, keep_positions, num_vars)

    def expand_cut(self, table, from_leaves, to_leaves):
        """Re-express a cut table over a superset of leaves (the
        cut-enumeration merge primitive, moved verbatim from
        :mod:`repro.aig.cuts`)."""
        if from_leaves == to_leaves:
            return table
        num_to = len(to_leaves)
        if not from_leaves:
            # Constant table (0 in practice): replicate over the new
            # universe.
            return all_ones(num_to) if table & 1 else 0
        positions = [to_leaves.index(leaf) for leaf in from_leaves]
        result = 0
        for minterm in range(1 << num_to):
            source = 0
            for from_var, to_var in enumerate(positions):
                if minterm >> to_var & 1:
                    source |= 1 << from_var
            if table >> source & 1:
                result |= 1 << minterm
        return result

    # -- support / popcount queries -----------------------------------
    def popcount(self, table):
        return popcount(table)

    def support(self, table, num_vars):
        return tt_support(table, num_vars)

    def isop_cover(self, on, dc, num_vars):
        return isop(on, dc, num_vars)

    # -- batched window simulation ------------------------------------
    def node_table(self, f0, f1, tables, support_limit):
        """Truth table of an AND node over the union of fanin sources."""
        key0 = tables[lit_node(f0)]
        key1 = tables[lit_node(f1)]
        if key0 is None or key1 is None:
            return None
        leaves0, table0 = key0
        leaves1, table1 = key1
        leaves = tuple(sorted(set(leaves0) | set(leaves1)))
        if len(leaves) > support_limit:
            return None
        expanded0 = expand_table(table0, leaves0, leaves)
        expanded1 = expand_table(table1, leaves1, leaves)
        universe = all_ones(len(leaves))
        if lit_sign(f0):
            expanded0 ^= universe
        if lit_sign(f1):
            expanded1 ^= universe
        table = expanded0 & expanded1
        support = tt_support(table, len(leaves))
        if len(support) != len(leaves):
            table = project_table(table, support, len(leaves))
            leaves = tuple(leaves[i] for i in support)
        return leaves, table

    def global_node_tables(self, aig, support_limit):
        """Windowed global truth tables for every node (see
        :func:`repro.aig.rewrite.global_node_tables` for the
        contract)."""
        tables = {0: ((), 0)}
        for node in aig.pis:
            tables[node] = ((node,), 0b10)
        for latch in aig.latches:
            tables[latch.node] = ((latch.node,), 0b10)
        for node in aig.topo_order():
            f0, f1 = aig.fanins(node)
            tables[node] = self.node_table(f0, f1, tables, support_limit)
        return tables

    def observability(
        self, aig, node, tfo, roots, tables, topo_position, support_limit
    ):
        """Observability of ``node`` at its window roots (see
        :mod:`repro.aig.dontcare` for the contract)."""
        if node in roots:
            return (), 1
        nu_tables = {node: ((NU,), 0b10)}
        for member in sorted(tfo - {node}, key=topo_position.__getitem__):
            merged = self._nu_node_table(
                aig, member, nu_tables, tables, support_limit
            )
            if merged is None:
                return None
            nu_tables[member] = merged

        union_sources = set()
        diffs = []
        for root in roots:
            leaves, table = nu_tables[root]
            if NU not in leaves:
                continue  # the window paths cancelled: root ignores the node
            position = leaves.index(NU)
            flip = cofactor0(table, position, len(leaves)) ^ cofactor1(
                table, position, len(leaves)
            )
            flip = remove_var(flip, position, len(leaves))
            rest = tuple(leaf for leaf in leaves if leaf != NU)
            if flip:
                diffs.append((rest, flip))
                union_sources.update(rest)
        if not diffs:
            return (), 0
        sources = tuple(sorted(union_sources))
        if len(sources) > support_limit:
            return None
        obs = 0
        for rest, flip in diffs:
            obs |= expand_table(flip, rest, sources)
        return sources, obs

    def _nu_node_table(self, aig, member, nu_tables, tables, support_limit):
        """Truth table of a window member over sources plus
        :data:`~repro.aig.kernel.NU`."""
        f0, f1 = aig.fanins(member)
        keys = []
        for lit in (f0, f1):
            fanin = lit_node(lit)
            key = nu_tables.get(fanin) or tables[fanin]
            if key is None:
                return None
            keys.append(key)
        (leaves0, table0), (leaves1, table1) = keys
        leaves = tuple(sorted(set(leaves0) | set(leaves1)))
        # One extra slot for NU on top of the source budget.
        if len(leaves) > support_limit + 1:
            return None
        expanded0 = expand_table(table0, leaves0, leaves)
        expanded1 = expand_table(table1, leaves1, leaves)
        universe = all_ones(len(leaves))
        if f0 & 1:
            expanded0 ^= universe
        if f1 & 1:
            expanded1 ^= universe
        return leaves, expanded0 & expanded1

    def cut_dontcares(
        self, leaves, tables, obs_sources, obs_table, support_limit
    ):
        """Combined SDC+ODC table over a cut's leaf variables (see
        :mod:`repro.aig.dontcare` for the contract)."""
        leaf_keys = []
        for leaf in leaves:
            key = tables[leaf]
            if key is None:
                return 0
            leaf_keys.append(key)
        universe_sources = set(obs_sources)
        for leaf_sources, _ in leaf_keys:
            universe_sources.update(leaf_sources)
        if len(universe_sources) > support_limit:
            return 0
        sources = tuple(sorted(universe_sources))
        universe = all_ones(len(sources))
        if obs_sources == ():
            care_space = universe if obs_table else 0
        else:
            care_space = expand_table(obs_table, obs_sources, sources)
        leaf_tables = [
            expand_table(table, leaf_sources, sources)
            for leaf_sources, table in leaf_keys
        ]

        dc = 0
        for vector in range(1 << len(leaves)):
            achievers = care_space
            for index, leaf_table in enumerate(leaf_tables):
                if not achievers:
                    break
                if (vector >> index) & 1:
                    achievers &= leaf_table
                else:
                    achievers &= ~leaf_table & universe
            if not achievers:
                dc |= 1 << vector
        return dc

    # -- resubstitution support ---------------------------------------
    def dependency_function(self, table, divisor_tables, num_sources):
        """``(on, dc)`` of ``h`` with ``h(d_1(x),...,d_m(x)) = f(x)``
        (see :mod:`repro.aig.resub` for the contract)."""
        num_vars = len(divisor_tables)
        on = 0
        seen = 0
        for minterm in range(1 << num_sources):
            vector = 0
            for index, d_table in enumerate(divisor_tables):
                if (d_table >> minterm) & 1:
                    vector |= 1 << index
            seen |= 1 << vector
            if (table >> minterm) & 1:
                on |= 1 << vector
        dc = all_ones(num_vars) & ~seen
        return on, dc

    def pick_divisors(self, table, divisor_tables, num_sources, k):
        """Greedily select <= k divisors that distinguish ON from OFF.

        The source assignments are partitioned by the value vector of
        the selected divisors; a partition holding both ON and OFF
        minterms of ``table`` is a conflict.  Each step adds the
        divisor that removes the most conflicting mass; failure to
        reach zero conflicts within ``k`` picks means no dependency
        function exists over this pool.  Returns the chosen *indices*
        into ``divisor_tables``, in pick order, or ``None``.
        """
        universe = all_ones(num_sources)
        groups = [universe]
        chosen = []

        def conflict_mass(parts):
            total = 0
            for part in parts:
                on_count = popcount(table & part)
                off_count = popcount(~table & universe & part)
                total += min(on_count, off_count)
            return total

        current = conflict_mass(groups)
        while current > 0 and len(chosen) < k:
            best = None
            best_mass = current
            for index, d_table in enumerate(divisor_tables):
                if index in chosen:
                    continue
                parts = []
                for group in groups:
                    hi = group & d_table
                    lo = group & ~d_table & universe
                    if hi:
                        parts.append(hi)
                    if lo:
                        parts.append(lo)
                mass = conflict_mass(parts)
                if mass < best_mass:
                    best = (index, parts)
                    best_mass = mass
            if best is None:
                return None  # no divisor makes progress
            index, parts = best
            chosen.append(index)
            groups = parts
            current = best_mass
        if current > 0:
            return None
        return chosen
