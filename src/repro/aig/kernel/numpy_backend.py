"""The NumPy kernel backend: vectorized truth-table bitsets.

Tables still cross the :class:`~repro.aig.kernel.KernelBackend`
interface as big ints, but internally each window lives as a NumPy
array with one lane per minterm, so table algebra is whole-window
vector ops and the per-minterm Python loops of the pure backend
collapse to gathers and ``bincount`` histograms:

* ``expand``/``project`` are single fancy-index gathers through
  per-shape index arrays (cached, since windows reuse the same leaf
  geometries over and over);
* the leaf-vector image of :meth:`cut_dontcares` and the
  divisor-vector image of :meth:`dependency_function` are one
  ``bincount`` over a packed value-vector array -- O(2^S + 2^L)
  instead of the pure backend's O(2^S * 2^L) loop nest;
* :meth:`pick_divisors` scores *all* candidate divisors of a round in
  one flat ``bincount`` (group id x divisor polarity, offset per
  candidate) instead of re-partitioning per candidate in Python.

Every result is bit-for-bit identical to the pure backend -- same
tables, same ``None``/over-budget outcomes, same tie-breaks -- which
the differential harness enforces.  This module must only be imported
when NumPy is importable; :func:`repro.aig.kernel.resolve_backend`
guards that.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.aig.graph import lit_node, lit_sign
from repro.aig.kernel import NU
from repro.aig.kernel.pure import PureBackend
from repro.tables.bits import all_ones, tt_support

_VAR = np.array([0, 1], dtype=np.uint8)  # the table of a single input


def _bits(table, num_vars):
    """Big-int table -> uint8 array of 2**num_vars minterm values."""
    count = 1 << num_vars
    raw = table.to_bytes((count + 7) >> 3, "little")
    return np.unpackbits(
        np.frombuffer(raw, dtype=np.uint8), count=count, bitorder="little"
    )


def _pack(bits):
    """uint8/bool minterm array -> big-int table."""
    packed = np.packbits(np.ascontiguousarray(bits), bitorder="little")
    return int.from_bytes(packed.tobytes(), "little")


@lru_cache(maxsize=8192)
def _gather_index(positions, num_to):
    """Index array for expansion: entry ``m`` is the source minterm
    whose variable ``i`` reads bit ``positions[i]`` of ``m``."""
    minterms = np.arange(1 << num_to, dtype=np.intp)
    source = np.zeros(1 << num_to, dtype=np.intp)
    for var, position in enumerate(positions):
        source |= ((minterms >> position) & 1) << var
    return source


@lru_cache(maxsize=8192)
def _scatter_index(keep_positions):
    """Index array for projection: entry ``m`` is the source minterm
    with bit ``j`` of ``m`` placed at ``keep_positions[j]`` and every
    dropped variable fixed to 0 (exactly what repeated ``remove_var``
    computes)."""
    minterms = np.arange(1 << len(keep_positions), dtype=np.intp)
    source = np.zeros(1 << len(keep_positions), dtype=np.intp)
    for var, position in enumerate(keep_positions):
        source |= ((minterms >> var) & 1) << position
    return source


def _expand_bits(bits, from_leaves, to_leaves):
    """Array counterpart of ``tt_util.expand_table`` (sorted-subset
    contract)."""
    if from_leaves == to_leaves:
        return bits
    positions = tuple(to_leaves.index(leaf) for leaf in from_leaves)
    return bits[_gather_index(positions, len(to_leaves))]


class NumpyBackend(PureBackend):
    """Packed NumPy bitset arrays; byte-identical to the pure backend."""

    name = "numpy"

    #: Tables at or below this many variables go through the inherited
    #: pure code instead: Python big-int bitwise ops are C loops too,
    #: and below ~2**10 lanes the numpy dispatch overhead costs more
    #: than the vectorization saves.  Either path returns identical
    #: bytes, so the cutoff is pure performance tuning.
    _SMALL_VARS = 9

    # -- table algebra ------------------------------------------------
    def insert_var(self, table, position, num_vars):
        if num_vars <= self._SMALL_VARS:
            return super().insert_var(table, position, num_vars)
        block = 1 << position
        doubled = np.repeat(
            _bits(table, num_vars).reshape(-1, 1, block), 2, axis=1
        )
        return _pack(doubled.reshape(-1))

    def remove_var(self, table, position, num_vars):
        if num_vars <= self._SMALL_VARS:
            return super().remove_var(table, position, num_vars)
        block = 1 << position
        halves = _bits(table, num_vars).reshape(-1, 2, block)
        return _pack(np.ascontiguousarray(halves[:, 0, :]).reshape(-1))

    def expand_table(self, table, from_leaves, to_leaves):
        if from_leaves == to_leaves:
            return table
        if len(to_leaves) <= self._SMALL_VARS:
            return super().expand_table(table, from_leaves, to_leaves)
        return _pack(
            _expand_bits(
                _bits(table, len(from_leaves)), tuple(from_leaves),
                tuple(to_leaves),
            )
        )

    def project_table(self, table, keep_positions, num_vars):
        if num_vars <= self._SMALL_VARS:
            return super().project_table(table, keep_positions, num_vars)
        keep = tuple(keep_positions)
        for position in keep:
            if not 0 <= position < num_vars:
                raise ValueError(
                    f"keep position {position} out of range for "
                    f"{num_vars}-variable table"
                )
        if keep == tuple(range(num_vars)):
            return table
        return _pack(_bits(table, num_vars)[_scatter_index(keep)])

    def expand_cut(self, table, from_leaves, to_leaves):
        if from_leaves == to_leaves:
            return table
        if len(to_leaves) <= self._SMALL_VARS:
            return super().expand_cut(table, from_leaves, to_leaves)
        num_to = len(to_leaves)
        if not from_leaves:
            return all_ones(num_to) if table & 1 else 0
        positions = tuple(to_leaves.index(leaf) for leaf in from_leaves)
        gathered = _bits(table, len(from_leaves))[
            _gather_index(positions, num_to)
        ]
        return _pack(gathered)

    # -- batched window simulation ------------------------------------
    def _node_table_arrays(self, f0, f1, arrays, support_limit):
        """Array-valued twin of ``node_table`` over an array cache;
        returns ``(leaves, bits, packed_table)`` with ``bits`` lazily
        ``None`` for small windows (the pure int path computed them,
        and no wide consumer may ever need the array form).  The
        support check runs on the packed int (big-int cofactor
        compares beat a per-variable array reshape sweep)."""
        node0 = lit_node(f0)
        node1 = lit_node(f1)
        key0 = arrays[node0]
        key1 = arrays[node1]
        if key0 is None or key1 is None:
            return None
        leaves0, bits0, packed0 = key0
        leaves1, bits1, packed1 = key1
        leaves = tuple(sorted(set(leaves0) | set(leaves1)))
        if len(leaves) > support_limit:
            return None
        if len(leaves) <= self._SMALL_VARS:
            merged = super().node_table(
                f0,
                f1,
                {node0: (leaves0, packed0), node1: (leaves1, packed1)},
                support_limit,
            )
            return merged[0], None, merged[1]
        if bits0 is None:
            bits0 = _bits(packed0, len(leaves0))
            arrays[node0] = (leaves0, bits0, packed0)
        if bits1 is None:
            bits1 = _bits(packed1, len(leaves1))
            arrays[node1] = (leaves1, bits1, packed1)
        expanded0 = _expand_bits(bits0, leaves0, leaves)
        expanded1 = _expand_bits(bits1, leaves1, leaves)
        if lit_sign(f0):
            expanded0 = expanded0 ^ 1
        if lit_sign(f1):
            expanded1 = expanded1 ^ 1
        bits = expanded0 & expanded1
        packed = _pack(bits)
        support = tt_support(packed, len(leaves))
        if len(support) != len(leaves):
            bits = bits[_scatter_index(support)]
            packed = _pack(bits)
            leaves = tuple(leaves[i] for i in support)
        return leaves, bits, packed

    def node_table(self, f0, f1, tables, support_limit):
        arrays = {}
        for lit in (f0, f1):
            node = lit_node(lit)
            key = tables[node]
            arrays[node] = (
                None if key is None else (key[0], None, key[1])
            )
        merged = self._node_table_arrays(f0, f1, arrays, support_limit)
        if merged is None:
            return None
        leaves, _, packed = merged
        return leaves, packed

    def global_node_tables(self, aig, support_limit):
        arrays = {0: ((), None, 0)}
        tables = {0: ((), 0)}
        for node in aig.pis:
            arrays[node] = ((node,), _VAR, 0b10)
            tables[node] = ((node,), 0b10)
        for latch in aig.latches:
            arrays[latch.node] = ((latch.node,), _VAR, 0b10)
            tables[latch.node] = ((latch.node,), 0b10)
        for node in aig.topo_order():
            f0, f1 = aig.fanins(node)
            merged = self._node_table_arrays(f0, f1, arrays, support_limit)
            arrays[node] = merged
            tables[node] = (
                None if merged is None else (merged[0], merged[2])
            )
        return tables

    def observability(
        self, aig, node, tfo, roots, tables, topo_position, support_limit
    ):
        if node in roots:
            return (), 1
        # Window-source tables arrive as ints; unpack lazily, once per
        # source node actually referenced by the window.
        source_arrays = {}

        def source_key(fanin):
            if fanin not in source_arrays:
                key = tables[fanin]
                source_arrays[fanin] = (
                    None
                    if key is None
                    else (key[0], _bits(key[1], len(key[0])))
                )
            return source_arrays[fanin]

        nu_arrays = {node: ((NU,), _VAR)}
        for member in sorted(tfo - {node}, key=topo_position.__getitem__):
            f0, f1 = aig.fanins(member)
            keys = []
            for lit in (f0, f1):
                fanin = lit_node(lit)
                key = nu_arrays.get(fanin) or source_key(fanin)
                if key is None:
                    return None
                keys.append(key)
            (leaves0, bits0), (leaves1, bits1) = keys
            leaves = tuple(sorted(set(leaves0) | set(leaves1)))
            # One extra slot for NU on top of the source budget.
            if len(leaves) > support_limit + 1:
                return None
            expanded0 = _expand_bits(bits0, leaves0, leaves)
            expanded1 = _expand_bits(bits1, leaves1, leaves)
            if f0 & 1:
                expanded0 = expanded0 ^ 1
            if f1 & 1:
                expanded1 = expanded1 ^ 1
            nu_arrays[member] = (leaves, expanded0 & expanded1)

        union_sources = set()
        diffs = []
        for root in roots:
            leaves, bits = nu_arrays[root]
            if NU not in leaves:
                continue  # the window paths cancelled: root ignores the node
            position = leaves.index(NU)
            block = 1 << position
            halves = bits.reshape(-1, 2, block)
            # cof0 ^ cof1, restricted to the NU=0 blocks, is exactly
            # remove_var(cof0 ^ cof1) of the pure backend.
            flip = np.ascontiguousarray(
                halves[:, 0, :] ^ halves[:, 1, :]
            ).reshape(-1)
            rest = tuple(leaf for leaf in leaves if leaf != NU)
            if flip.any():
                diffs.append((rest, flip))
                union_sources.update(rest)
        if not diffs:
            return (), 0
        sources = tuple(sorted(union_sources))
        if len(sources) > support_limit:
            return None
        obs = np.zeros(1 << len(sources), dtype=np.uint8)
        for rest, flip in diffs:
            obs |= _expand_bits(flip, rest, sources)
        return sources, _pack(obs)

    def cut_dontcares(
        self, leaves, tables, obs_sources, obs_table, support_limit
    ):
        leaf_keys = []
        for leaf in leaves:
            key = tables[leaf]
            if key is None:
                return 0
            leaf_keys.append(key)
        universe_sources = set(obs_sources)
        for leaf_sources, _ in leaf_keys:
            universe_sources.update(leaf_sources)
        if len(universe_sources) > support_limit:
            return 0
        if len(universe_sources) <= self._SMALL_VARS:
            return super().cut_dontcares(
                leaves, tables, obs_sources, obs_table, support_limit
            )
        sources = tuple(sorted(universe_sources))
        count = 1 << len(sources)
        if obs_sources == ():
            care = (
                np.ones(count, dtype=bool)
                if obs_table
                else np.zeros(count, dtype=bool)
            )
        else:
            care = _expand_bits(
                _bits(obs_table, len(obs_sources)), obs_sources, sources
            ).astype(bool)
        # Pack each source assignment's leaf values into one vector,
        # then histogram: a leaf vector is a don't-care exactly when no
        # care-space assignment produces it.
        vectors = np.zeros(count, dtype=np.int64)
        for index, (leaf_sources, table) in enumerate(leaf_keys):
            expanded = _expand_bits(
                _bits(table, len(leaf_sources)), leaf_sources, sources
            )
            vectors |= expanded.astype(np.int64) << index
        produced = np.bincount(
            vectors[care], minlength=1 << len(leaves)
        )
        return _pack(produced == 0)

    # -- resubstitution support ---------------------------------------
    def dependency_function(self, table, divisor_tables, num_sources):
        if num_sources <= self._SMALL_VARS:
            return super().dependency_function(
                table, divisor_tables, num_sources
            )
        num_vars = len(divisor_tables)
        count = 1 << num_sources
        vectors = np.zeros(count, dtype=np.int64)
        for index, d_table in enumerate(divisor_tables):
            vectors |= _bits(d_table, num_sources).astype(np.int64) << index
        seen = np.bincount(vectors, minlength=1 << num_vars) > 0
        on_mask = _bits(table, num_sources).astype(bool)
        on = np.bincount(vectors[on_mask], minlength=1 << num_vars) > 0
        return _pack(on), all_ones(num_vars) & ~_pack(seen)

    def pick_divisors(self, table, divisor_tables, num_sources, k):
        if num_sources <= self._SMALL_VARS:
            return super().pick_divisors(
                table, divisor_tables, num_sources, k
            )
        count = 1 << num_sources
        num_divisors = len(divisor_tables)
        on = _bits(table, num_sources)
        on_total = int(on.sum())
        current = min(on_total, count - on_total)
        chosen = []
        if current == 0:
            return chosen
        if num_divisors == 0:
            return None  # no divisor can make progress
        # All candidate divisors as one float32 matrix (unpacked from
        # one concatenated byte buffer): the per-round scoring below is
        # two small GEMMs against the one-hot group matrix.  Counts
        # stay < 2**24, so float32 arithmetic is exact.
        num_bytes = max(1, (count + 7) >> 3)
        buffer = b"".join(
            d_table.to_bytes(num_bytes, "little")
            for d_table in divisor_tables
        )
        divisors = (
            np.unpackbits(
                np.frombuffer(buffer, dtype=np.uint8), bitorder="little"
            )
            .reshape(num_divisors, -1)[:, :count]
            .astype(np.float32)
        )
        on_f = on.astype(np.float32)
        divisors_on = divisors * on_f
        lanes = np.arange(count)
        # Partition refinement on group *labels* instead of group
        # bitmasks: every source assignment carries the id of its
        # current partition class (at most 2**len(chosen) classes).
        group = np.zeros(count, dtype=np.intp)
        num_groups = 1
        while current > 0 and len(chosen) < k:
            # Score every divisor at once.  Splitting group g by
            # divisor i makes parts (g & d_i) and (g & ~d_i); their
            # ON/total counts come from two matrix products with the
            # one-hot group-membership matrix.
            onehot = np.zeros((count, num_groups), dtype=np.float32)
            onehot[lanes, group] = 1.0
            tot_g = onehot.sum(axis=0)  # lanes per group
            on_g = on_f @ onehot  # ON lanes per group
            tot_hi = divisors @ onehot  # lanes of g & d_i
            on_hi = divisors_on @ onehot  # ON lanes of g & d_i
            off_hi = tot_hi - on_hi
            on_lo = on_g[None, :] - on_hi
            off_lo = (tot_g - on_g)[None, :] - off_hi
            masses = (
                np.minimum(on_hi, off_hi) + np.minimum(on_lo, off_lo)
            ).sum(axis=1)
            # Same selection rule as the pure greedy: the strictly
            # improving divisor of minimum mass, earliest index first.
            best = None
            best_mass = current
            for index in range(num_divisors):
                if index in chosen:
                    continue
                mass = int(masses[index])
                if mass < best_mass:
                    best = index
                    best_mass = mass
            if best is None:
                return None  # no divisor makes progress
            chosen.append(best)
            # Refine and relabel densely (empty classes dropped), in
            # ascending refined-label order.
            refined = group * 2 + divisors[best].astype(np.intp)
            occupied = np.bincount(refined, minlength=2 * num_groups) > 0
            remap = np.cumsum(occupied) - 1
            group = remap[refined]
            num_groups = int(remap[-1]) + 1
            current = best_mass
        if current > 0:
            return None
        return chosen
