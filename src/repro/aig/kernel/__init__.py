"""Pluggable bit-parallel kernels for the truth-table hot paths.

The window-replay machinery shared by ``rewrite``/``resub``/
``dc_rewrite`` -- global truth tables over windowed source supports,
leaf-vector images, NU-replay observability, divisor selection -- is
pure bit-parallel work.  This package puts those primitives behind one
interface (:class:`KernelBackend`) with two interchangeable
realizations:

* :class:`~repro.aig.kernel.pure.PureBackend` -- the original
  big-int code, moved here verbatim, so behaviour stays pinned;
* :class:`~repro.aig.kernel.numpy_backend.NumpyBackend` -- NumPy
  bitset arrays (one value lane per minterm, packed at the
  boundaries), which vectorizes whole windows at once.

Both backends compute *identical* tables, so every downstream
decision -- which rewrite is accepted, which divisor set is chosen --
is identical, and the optimized AIGs are byte-for-byte the same.
Because of that, the backend is deliberately **not** part of any flow
fingerprint: a compile cached under one backend is valid under the
other, and ``flow_fingerprint`` never sees the kernel choice.

Selection, in order of precedence:

1. an explicit ``kernel=`` argument to a pass (``"pure"``,
   ``"numpy"``, ``"auto"``, or a backend instance);
2. the ``REPRO_KERNEL`` environment variable;
3. the default, ``"auto"``: NumPy when importable, else pure.

``"auto"`` degrades to the pure backend silently when NumPy is
absent; asking for ``"numpy"`` explicitly without NumPy installed is
an error (:class:`KernelError`), never a silent slowdown.
"""

from __future__ import annotations

import os

#: Environment variable consulted when no explicit kernel is given.
KERNEL_ENV_VAR = "REPRO_KERNEL"

#: The names ``resolve_backend`` (and the ``kernel=`` pass option)
#: accept.
KERNEL_CHOICES = ("pure", "numpy", "auto")

#: Sentinel variable standing for "the node under analysis" while its
#: value is replayed through a fanout window; sorts before every real
#: node id, so it is always variable 0 of a window table.
NU = -1


class KernelError(ValueError):
    """An unknown kernel name, or a backend that is not available."""


class KernelBackend:
    """The kernel interface: truth-table batch ops for the AIG passes.

    Tables cross this interface as the canonical big-int encoding
    (bit ``i`` = function value on minterm ``i``); how a backend
    represents them *internally* -- big ints, NumPy bitset arrays --
    is its own business.  Node-level batch entry points
    (:meth:`global_node_tables`, :meth:`observability`) take the AIG
    directly so a backend can lay the whole window out as
    structure-of-arrays buffers and simulate it in one sweep.

    Subclasses must set :attr:`name` and implement every method; the
    contract for each is "exactly what the pure backend computes" --
    the differential test harness holds every backend to that
    bit-for-bit.
    """

    name: str = "abstract"

    # -- table algebra ------------------------------------------------
    def insert_var(self, table: int, position: int, num_vars: int) -> int:
        """Add a don't-care variable at ``position``."""
        raise NotImplementedError

    def remove_var(self, table: int, position: int, num_vars: int) -> int:
        """Drop a non-support variable (keeps even blocks)."""
        raise NotImplementedError

    def expand_table(self, table: int, from_leaves, to_leaves) -> int:
        """Re-express a table over a sorted superset of its leaves."""
        raise NotImplementedError

    def project_table(self, table: int, keep_positions, num_vars: int) -> int:
        """Restrict a table to the given (in-range) variable positions."""
        raise NotImplementedError

    def expand_cut(self, table: int, from_leaves, to_leaves) -> int:
        """Re-express a cut-local table over a leaf superset (the
        cut-enumeration merge primitive)."""
        raise NotImplementedError

    # -- support / popcount queries -----------------------------------
    def popcount(self, table: int) -> int:
        """Number of set bits."""
        raise NotImplementedError

    def support(self, table: int, num_vars: int) -> tuple:
        """Indices of the variables the function depends on."""
        raise NotImplementedError

    def isop_cover(self, on: int, dc: int, num_vars: int):
        """An irredundant SOP cover of any ``g`` with
        ``on <= g <= on | dc`` (the cube list the cover replay
        materialises)."""
        raise NotImplementedError

    # -- batched window simulation ------------------------------------
    def node_table(self, f0: int, f1: int, tables, support_limit: int):
        """Truth table of one AND node over the union of fanin
        sources, normalised to true support; ``None`` over-budget."""
        raise NotImplementedError

    def global_node_tables(self, aig, support_limit: int) -> dict:
        """Windowed global truth tables for every node (see
        :func:`repro.aig.rewrite.global_node_tables`)."""
        raise NotImplementedError

    def observability(
        self, aig, node, tfo, roots, tables, topo_position, support_limit
    ):
        """NU-replay observability of ``node`` at its window roots
        (see :mod:`repro.aig.dontcare`)."""
        raise NotImplementedError

    def cut_dontcares(
        self, leaves, tables, obs_sources, obs_table, support_limit
    ) -> int:
        """Combined SDC+ODC table over a cut's leaf variables."""
        raise NotImplementedError

    # -- resubstitution support ---------------------------------------
    def dependency_function(
        self, table: int, divisor_tables, num_sources: int
    ):
        """``(on, dc)`` of ``h`` with ``h(d_1(x),..) = f(x)``."""
        raise NotImplementedError

    def pick_divisors(self, table: int, divisor_tables, num_sources: int, k: int):
        """Greedy <=k divisor selection; returns chosen *indices* into
        ``divisor_tables`` (in pick order) or ``None``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - diagnostic only
        return f"<{type(self).__name__} {self.name}>"


def numpy_available() -> bool:
    """Is the NumPy backend usable in this interpreter?"""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def available_backends() -> tuple:
    """Names of the backends that can actually run here, pure first."""
    names = ["pure"]
    if numpy_available():
        names.append("numpy")
    return tuple(names)


_INSTANCES: dict = {}


def _instance(name: str) -> KernelBackend:
    backend = _INSTANCES.get(name)
    if backend is None:
        if name == "pure":
            from repro.aig.kernel.pure import PureBackend

            backend = PureBackend()
        else:
            from repro.aig.kernel.numpy_backend import NumpyBackend

            backend = NumpyBackend()
        _INSTANCES[name] = backend
    return backend


def resolve_backend(kernel=None) -> KernelBackend:
    """Resolve a kernel choice to a backend instance.

    Args:
        kernel: ``None`` (consult :data:`KERNEL_ENV_VAR`, default
            ``auto``), one of :data:`KERNEL_CHOICES`, or an existing
            :class:`KernelBackend` (returned as-is).

    Returns:
        A (shared, stateless) backend instance.

    Raises:
        KernelError: an unknown name, or ``numpy`` requested while
            NumPy is not importable.  ``auto`` never raises -- it
            falls back to the pure backend.
    """
    if isinstance(kernel, KernelBackend):
        return kernel
    if kernel is None:
        kernel = os.environ.get(KERNEL_ENV_VAR, "").strip() or "auto"
    if kernel not in KERNEL_CHOICES:
        raise KernelError(
            f"unknown kernel {kernel!r} (want one of "
            f"{', '.join(KERNEL_CHOICES)})"
        )
    if kernel == "auto":
        return _instance("numpy" if numpy_available() else "pure")
    if kernel == "numpy" and not numpy_available():
        raise KernelError(
            "kernel 'numpy' requested but NumPy is not importable; "
            "install numpy or use kernel 'auto' (which falls back to "
            "'pure')"
        )
    return _instance(kernel)


__all__ = [
    "KERNEL_CHOICES",
    "KERNEL_ENV_VAR",
    "NU",
    "KernelBackend",
    "KernelError",
    "available_backends",
    "numpy_available",
    "resolve_backend",
]
