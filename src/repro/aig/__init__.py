"""And-Inverter Graph: the optimization IR of the synthesis flow.

The AIG is a sequential netlist of two-input AND nodes with optional
complemented edges, primary inputs/outputs, and latches.  Constant
folding and structural hashing happen *at construction time*, which is
exactly the mechanism by which "partial evaluation" of a bound
configuration table happens in this flow: elaborating a read of a
constant memory builds a mux tree whose constant leaves collapse as the
tree is built.

Public API
----------
- :class:`~repro.aig.graph.AIG` -- the graph itself.
- :class:`~repro.aig.graph.Latch` -- sequential element descriptor.
- :mod:`~repro.aig.ops` -- word-level helper operations.
- :func:`~repro.aig.balance.balance` -- depth-reducing tree rebuild.
- :func:`~repro.aig.rewrite.rewrite` -- cut-based local resynthesis.
- :func:`~repro.aig.resub.resub` -- divisor-based resubstitution.
- :func:`~repro.aig.dontcare.dc_rewrite` -- don't-care-aware rewriting.
- :func:`~repro.aig.cuts.enumerate_cuts` -- k-feasible cut enumeration.
"""

from repro.aig.balance import balance
from repro.aig.cuts import CutSet, enumerate_cuts
from repro.aig.dontcare import dc_rewrite
from repro.aig.graph import AIG, CONST0, CONST1, Latch, lit_compl, lit_node, lit_sign
from repro.aig.resub import resub
from repro.aig.rewrite import rewrite, tt_sweep

__all__ = [
    "AIG",
    "CONST0",
    "CONST1",
    "CutSet",
    "Latch",
    "balance",
    "dc_rewrite",
    "enumerate_cuts",
    "lit_compl",
    "lit_node",
    "lit_sign",
    "resub",
    "rewrite",
    "tt_sweep",
]
