"""Windowed don't-care computation and don't-care-aware rewriting.

The exact rewriting pass (:func:`repro.aig.rewrite.rewrite`) may only
re-express a cut's function verbatim.  Inside a larger design that is
needlessly strict: some leaf-value combinations can never occur
(*satisfiability* don't-cares -- the cut leaves are correlated
functions of the primary inputs), and on others the node's value never
reaches an output (*observability* don't-cares -- downstream logic
masks it).  On either kind the replacement logic may differ freely,
which is what lets a don't-care-aware pass accept strictly smaller
covers the exact pass must reject.

Both kinds are computed *exactly* over bounded windows:

* SDCs come from the windowed global truth tables of the cut leaves
  (:func:`repro.aig.rewrite.global_node_tables`).  The table variables
  are genuine sources (PIs/latch outputs), every assignment of which
  is achievable, so a leaf vector no source assignment produces is a
  true don't-care.
* ODCs come from a bounded transitive-fanout window: the node's value
  is replayed as a free variable through the window, and the *roots*
  -- window members feeding a combinational output or any node
  outside the window -- are where a flip must surface to be
  observable.  If no root changes, nothing outside the window can
  (the window boundary cuts every escape path), so unobservability at
  the roots is sound regardless of the rest of the design.

Acceptance is batched within one pass under a taint rule: a node's
don't-cares are trusted only while every node whose function entered
the computation (the decision cone: the roots' transitive fanins,
which cover the leaf cones, the window, and its side logic) is still
exact.  Nodes rewritten under don't-cares are *tainted*; later nodes
whose decision cone touches a tainted node fall back to the exact
rebuild.  The test suite checks the composition with SAT-based
equivalence on randomized graphs.
"""

from __future__ import annotations

from repro.aig.cuts import CutSet
from repro.aig.graph import AIG, lit_node
from repro.aig.kernel import NU, resolve_backend
from repro.aig.rewrite import (
    build_plan,
    mffc_sizes,
    plan_cover,
)

__all__ = ["NU", "dc_rewrite"]


def dc_rewrite(
    aig: AIG,
    k: int = 4,
    max_cuts: int = 6,
    tfo_depth: int = 2,
    support_limit: int = 10,
    kernel=None,
    external_care=None,
) -> AIG:
    """One pass of don't-care-aware cut rewriting.

    The structure mirrors :func:`repro.aig.rewrite.rewrite` -- rebuild
    in topological order, dry-run every candidate cover, accept on a
    strict node decrease against the node's MFFC -- but each cut's
    ON-set is first relaxed by the windowed don't-cares, so covers the
    exact pass rejects become acceptable when the context allows.

    Args:
        aig: the graph to optimize (observable behaviour is preserved).
        k: cut width, as in the exact rewriting pass.
        max_cuts: cuts kept per node.
        tfo_depth: fanout levels in the observability window; deeper
            windows see more masking logic but cost more.
        support_limit: widest source support a window table may reach;
            bounds every truth-table computation.
        external_care: optional proven care predicates, each a
            ``(sources, table)`` pair -- ``sources`` a sorted tuple of
            source node ids (PIs / latch outputs) and ``table`` a
            truth table over them whose 0-minterms are assignments the
            caller has *proven* can never occur (e.g. an inductive
            register invariant discharged by
            :func:`repro.check.facts.discharge_register_invariant`).
            Each pair is ANDed into every window's observability care
            before don't-cares are extracted; a pair whose source
            union with a window exceeds ``support_limit`` is skipped
            for that window.  Soundness is the caller's proof: with an
            unproven predicate the result is only equivalent on the
            claimed care set.

    Returns:
        A cleaned-up AIG, never larger than the input.
    """
    if tfo_depth < 1:
        raise ValueError(f"tfo_depth must be >= 1, got {tfo_depth}")
    if support_limit < 1:
        raise ValueError(f"support_limit must be >= 1, got {support_limit}")

    backend = resolve_backend(kernel)
    tables = backend.global_node_tables(aig, support_limit)
    cuts = CutSet(aig, k=k, max_cuts=max_cuts, kernel=backend)
    mffc = mffc_sizes(aig)
    topo = aig.topo_order()
    topo_position = {node: index for index, node in enumerate(topo)}
    fanout_adj = _and_fanouts(aig, topo)
    out_refs = {
        lit_node(lit) for lit in aig.combinational_outputs()
    }

    new = AIG()
    lit_map: dict[int, int] = {0: 0}
    for node, name in zip(aig.pis, aig.pi_names):
        lit_map[node << 1] = new.add_pi(name)
    for latch in aig.latches:
        lit_map[latch.node << 1] = new.add_latch(
            latch.name, latch.reset_kind, latch.reset_value
        )

    def translate(lit: int) -> int:
        return lit_map[lit & ~1] ^ (lit & 1)

    # Nodes whose *original* function a decision may no longer trust:
    # each accepted rewrite marks itself and its transitive fanout.  A
    # stale node in a window's decision cone is equivalent to a root
    # in the stale set (t is in TFI(r) exactly when r is in TFO(t)),
    # so the guard costs O(|roots|) per node instead of a cone walk.
    stale: set[int] = set()

    for node in topo:
        f0, f1 = aig.fanins(node)
        best_lit = new.and_(translate(f0), translate(f1))
        lit_map[node << 1] = best_lit

        tfo, roots = _window(node, fanout_adj, out_refs, tfo_depth)
        if not roots:
            continue  # dead cone: nothing observes this node
        # Don't-cares are only trusted while every function that
        # entered their computation -- anything in the roots'
        # transitive fanins, which covers the leaf cones, the window,
        # and its side logic -- is still exact.
        if stale and not stale.isdisjoint(roots):
            continue
        observability = backend.observability(
            aig, node, tfo, roots, tables, topo_position, support_limit
        )
        if observability is None:
            continue  # window tables exceeded the support budget
        obs_sources, obs_table = observability
        if external_care:
            obs_sources, obs_table = _merge_care(
                backend, obs_sources, obs_table, external_care, support_limit
            )

        budget = mffc[node]
        accepted = False
        for cut in cuts[node]:
            if cut.size < 2 or cut.leaves == (node,):
                continue
            dc = backend.cut_dontcares(
                cut.leaves, tables, obs_sources, obs_table, support_limit
            )
            if not dc:
                continue  # no freedom here: the exact pass's job
            on = cut.table & ~dc
            leaf_lits = [translate(leaf << 1) for leaf in cut.leaves]
            cost, plan = plan_cover(
                new, on, dc, cut.size, leaf_lits, kernel=backend
            )
            if cost < budget:
                best_lit = build_plan(
                    new, plan, on, dc, cut.size, leaf_lits
                )
                budget = cost
                accepted = True
        if accepted:
            lit_map[node << 1] = best_lit
            _mark_stale(node, fanout_adj, stale)

    for name, lit in aig.pos:
        new.add_po(name, translate(lit))
    for old_latch, new_latch in zip(aig.latches, new.latches):
        new.set_latch_next(new_latch.node << 1, translate(old_latch.next_lit))
    compacted, _ = new.cleanup()
    if compacted.num_ands > aig.num_ands:
        return aig
    return compacted


def _merge_care(
    backend,
    obs_sources: tuple,
    obs_table: int,
    external_care,
    support_limit: int,
):
    """AND each external care predicate into the window's care table.

    The merge happens over the sorted union of the window's and the
    predicate's sources -- both truth tables are re-expressed there and
    conjoined, exactly the domain :meth:`cut_dontcares` later expands
    to the cut's source union.  Pairs that would push the support past
    ``support_limit`` are skipped (the window keeps what it has), so
    the result is never less sound than the plain observability care.
    """
    sources = tuple(obs_sources)
    table = obs_table
    for care_sources, care_table in external_care:
        union = tuple(sorted(set(sources) | set(care_sources)))
        if len(union) > support_limit:
            continue
        if sources:
            expanded = backend.expand_table(table, sources, union)
        else:
            # Root windows carry a constant care (1: everything
            # observable); replicate it over the new source universe.
            expanded = (1 << (1 << len(union))) - 1 if table else 0
        table = expanded & backend.expand_table(
            care_table, tuple(care_sources), union
        )
        sources = union
    return sources, table


def _and_fanouts(aig: AIG, topo: list[int]) -> dict[int, list[int]]:
    """AND-node fanout adjacency over the *live* nodes only (the topo
    order covers exactly the output cones).  Dead consumers are on no
    path to an output, so they observe nothing and must not drag the
    window -- or the root set -- toward unreachable logic."""
    adj: dict[int, list[int]] = {}
    for node in topo:
        for lit in aig.fanins(node):
            adj.setdefault(lit_node(lit), []).append(node)
    return adj


def _window(
    node: int,
    fanout_adj: dict[int, list[int]],
    out_refs: set[int],
    depth: int,
) -> tuple[set[int], set[int]]:
    """The observability window of ``node``.

    Returns ``(tfo, roots)``: the AND nodes reachable within ``depth``
    fanout steps (including the node itself), and the members every
    escape path crosses -- nodes feeding a combinational output or any
    consumer outside the window.  An empty root set means the node is
    dead.
    """
    tfo = {node}
    frontier = [node]
    for _ in range(depth):
        grown: list[int] = []
        for member in frontier:
            for consumer in fanout_adj.get(member, ()):
                if consumer not in tfo:
                    tfo.add(consumer)
                    grown.append(consumer)
        frontier = grown
    roots = {
        member
        for member in tfo
        if member in out_refs
        or any(
            consumer not in tfo
            for consumer in fanout_adj.get(member, ())
        )
    }
    return tfo, roots


def _mark_stale(
    node: int, fanout_adj: dict[int, list[int]], stale: set[int]
) -> None:
    """Mark an accepted rewrite: ``node`` and everything downstream of
    it no longer compute their original functions, so no later window
    whose decision cone reaches them may trust the precomputed tables.
    One forward walk per acceptance (rare) buys an O(|roots|)
    disjointness guard on every other node."""
    stack = [node]
    while stack:
        member = stack.pop()
        if member in stale:
            continue
        stale.add(member)
        stack.extend(fanout_adj.get(member, ()))


# The observability replay (NU-variable window differentiation) and
# the SDC+ODC leaf-vector image live in the kernel backends now --
# :meth:`repro.aig.kernel.KernelBackend.observability` and
# :meth:`repro.aig.kernel.KernelBackend.cut_dontcares`; the pure
# implementations moved verbatim to :mod:`repro.aig.kernel.pure`.
