"""The And-Inverter Graph data structure.

Encoding conventions (the usual AIGER ones):

* Node 0 is the constant-FALSE node.
* A *literal* is ``2 * node + complement``; literal 0 is constant false
  and literal 1 constant true.
* Primary inputs and latch outputs are nodes without fanins.
* AND nodes store two fanin literals, each of which may be complemented.

Structural hashing and the standard folding rules are applied by
:meth:`AIG.and_` as nodes are created, so a caller never observes a
trivially reducible AND node.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

CONST0 = 0
CONST1 = 1

_NO_FANIN = -1


def lit_node(lit: int) -> int:
    """Node index of a literal."""
    return lit >> 1


def lit_sign(lit: int) -> int:
    """Complement bit of a literal (0 or 1)."""
    return lit & 1

def lit_compl(lit: int) -> int:
    """The complemented literal."""
    return lit ^ 1


@dataclass(slots=True)
class Latch:
    """A sequential element.

    Attributes:
        name: diagnostic name (unique within the AIG).
        node: the AIG node acting as the latch *output*.
        next_lit: literal computing the next state (set after creation).
        reset_kind: ``"none"``, ``"sync"`` or ``"async"``.
        reset_value: the value loaded by reset (0/1); also the value the
            simulator starts from for ``"none"`` latches so that
            simulations are deterministic.
    """

    name: str
    node: int
    next_lit: int = CONST0
    reset_kind: str = "none"
    reset_value: int = 0


@dataclass(slots=True)
class _Nodes:
    """Struct-of-arrays node storage."""

    fanin0: list[int] = field(default_factory=lambda: [_NO_FANIN])
    fanin1: list[int] = field(default_factory=lambda: [_NO_FANIN])

    def __len__(self) -> int:
        return len(self.fanin0)


class AIG:
    """A sequential And-Inverter Graph with structural hashing."""

    def __init__(self) -> None:
        self._nodes = _Nodes()
        self._strash: dict[tuple[int, int], int] = {}
        self._pis: list[int] = []
        self._pi_names: list[str] = []
        self._pos: list[tuple[str, int]] = []
        self._latches: list[Latch] = []
        self._latch_of_node: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_pi(self, name: str) -> int:
        """Create a primary input; returns its (positive) literal."""
        node = self._new_node()
        self._pis.append(node)
        self._pi_names.append(name)
        return node << 1

    def add_latch(
        self, name: str, reset_kind: str = "none", reset_value: int = 0
    ) -> int:
        """Create a latch; returns the literal of its output.

        The next-state function must be supplied later through
        :meth:`set_latch_next` (definitions are usually cyclic).
        """
        if reset_kind not in ("none", "sync", "async"):
            raise ValueError(f"unknown reset kind {reset_kind!r}")
        node = self._new_node()
        latch = Latch(name, node, CONST0, reset_kind, reset_value & 1)
        self._latch_of_node[node] = len(self._latches)
        self._latches.append(latch)
        return node << 1

    def set_latch_next(self, latch_lit: int, next_lit: int) -> None:
        """Connect the next-state literal of the latch behind ``latch_lit``."""
        node = lit_node(latch_lit)
        index = self._latch_of_node.get(node)
        if index is None:
            raise ValueError("literal does not name a latch output")
        if lit_sign(latch_lit):
            raise ValueError("latch output literal must be uncomplemented")
        self._check_lit(next_lit)
        self._latches[index].next_lit = next_lit

    def add_po(self, name: str, lit: int) -> None:
        """Register a primary output."""
        self._check_lit(lit)
        self._pos.append((name, lit))

    def and_(self, a: int, b: int) -> int:
        """AND of two literals, with folding and structural hashing."""
        self._check_lit(a)
        self._check_lit(b)
        if a == CONST0 or b == CONST0 or a == lit_compl(b):
            return CONST0
        if a == CONST1 or a == b:
            return b
        if b == CONST1:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            node = self._new_node(a, b)
            self._strash[key] = node
        return node << 1

    def not_(self, a: int) -> int:
        return lit_compl(a)

    def or_(self, a: int, b: int) -> int:
        return lit_compl(self.and_(lit_compl(a), lit_compl(b)))

    def xor(self, a: int, b: int) -> int:
        return self.or_(self.and_(a, lit_compl(b)), self.and_(lit_compl(a), b))

    def xnor(self, a: int, b: int) -> int:
        return lit_compl(self.xor(a, b))

    def mux(self, sel: int, if1: int, if0: int) -> int:
        """``sel ? if1 : if0``."""
        if if1 == if0:
            return if1
        if sel == CONST1:
            return if1
        if sel == CONST0:
            return if0
        return self.or_(self.and_(sel, if1), self.and_(lit_compl(sel), if0))

    def _new_node(self, fanin0: int = _NO_FANIN, fanin1: int = _NO_FANIN) -> int:
        self._nodes.fanin0.append(fanin0)
        self._nodes.fanin1.append(fanin1)
        return len(self._nodes) - 1

    def _check_lit(self, lit: int) -> None:
        if lit < 0 or lit_node(lit) >= len(self._nodes):
            raise ValueError(f"literal {lit} references an unknown node")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total node count, including constant, PIs and latches."""
        return len(self._nodes)

    @property
    def num_ands(self) -> int:
        return len(self._strash)

    @property
    def pis(self) -> list[int]:
        """PI node indices in creation order."""
        return list(self._pis)

    @property
    def pi_names(self) -> list[str]:
        return list(self._pi_names)

    @property
    def pos(self) -> list[tuple[str, int]]:
        """``(name, literal)`` for each primary output."""
        return list(self._pos)

    @property
    def latches(self) -> list[Latch]:
        return list(self._latches)

    def is_and(self, node: int) -> bool:
        return self._nodes.fanin0[node] != _NO_FANIN

    def is_latch_output(self, node: int) -> bool:
        return node in self._latch_of_node

    def is_pi(self, node: int) -> bool:
        return (
            node != 0
            and not self.is_and(node)
            and not self.is_latch_output(node)
        )

    def latch_for_node(self, node: int) -> Latch:
        return self._latches[self._latch_of_node[node]]

    def fanins(self, node: int) -> tuple[int, int]:
        """Fanin literals of an AND node."""
        if not self.is_and(node):
            raise ValueError(f"node {node} is not an AND node")
        return self._nodes.fanin0[node], self._nodes.fanin1[node]

    def combinational_inputs(self) -> list[int]:
        """PI nodes followed by latch-output nodes."""
        return self._pis + [latch.node for latch in self._latches]

    def combinational_outputs(self) -> list[int]:
        """PO literals followed by latch next-state literals."""
        return [lit for _, lit in self._pos] + [
            latch.next_lit for latch in self._latches
        ]

    def topo_order(self, roots: list[int] | None = None) -> list[int]:
        """AND nodes in topological order (fanins first).

        Args:
            roots: literals whose cones to cover; defaults to all
                combinational outputs.
        """
        if roots is None:
            roots = self.combinational_outputs()
        order: list[int] = []
        seen = bytearray(len(self._nodes))
        stack = [lit_node(lit) for lit in roots]
        while stack:
            node = stack.pop()
            if node >= 0:
                if seen[node] or not self.is_and(node):
                    continue
                seen[node] = 1
                stack.append(~node)  # postorder marker
                f0, f1 = self._nodes.fanin0[node], self._nodes.fanin1[node]
                stack.append(lit_node(f0))
                stack.append(lit_node(f1))
            else:
                order.append(~node)
        return order

    def support(self, lit: int) -> set[int]:
        """Set of source nodes (PIs and latch outputs) feeding ``lit``."""
        sources: set[int] = set()
        seen = set()
        stack = [lit_node(lit)]
        while stack:
            node = stack.pop()
            if node in seen or node == 0:
                continue
            seen.add(node)
            if self.is_and(node):
                f0, f1 = self.fanins(node)
                stack.append(lit_node(f0))
                stack.append(lit_node(f1))
            else:
                sources.add(node)
        return sources

    def fanout_counts(self) -> list[int]:
        """Static fanout count per node over all combinational cones."""
        counts = [0] * len(self._nodes)
        for node in range(len(self._nodes)):
            if self.is_and(node):
                f0, f1 = self.fanins(node)
                counts[lit_node(f0)] += 1
                counts[lit_node(f1)] += 1
        for lit in self.combinational_outputs():
            counts[lit_node(lit)] += 1
        return counts

    def levels(self) -> list[int]:
        """Logic depth of every node (PIs and latches are level 0)."""
        level = [0] * len(self._nodes)
        for node in self.topo_order():
            f0, f1 = self.fanins(node)
            level[node] = 1 + max(level[lit_node(f0)], level[lit_node(f1)])
        return level

    def depth(self) -> int:
        """Depth of the deepest combinational output cone."""
        level = self.levels()
        outputs = self.combinational_outputs()
        if not outputs:
            return 0
        return max(level[lit_node(lit)] for lit in outputs)

    # ------------------------------------------------------------------
    # Evaluation (bit-parallel)
    # ------------------------------------------------------------------
    def evaluate(
        self,
        pi_values: dict[int, int],
        latch_values: dict[int, int] | None = None,
        width: int = 1,
    ) -> tuple[dict[str, int], dict[str, int]]:
        """Simulate the combinational portion once, bit-parallel.

        Args:
            pi_values: node -> packed value (``width`` simulation bits).
            latch_values: latch node -> packed current state (defaults
                to each latch's reset value replicated).
            width: number of parallel simulation patterns.

        Returns:
            ``(po_values, latch_next_values)`` keyed by name.
        """
        mask = (1 << width) - 1
        values = [0] * len(self._nodes)
        for node in self._pis:
            values[node] = pi_values.get(node, 0) & mask
        for latch in self._latches:
            if latch_values is not None and latch.node in latch_values:
                values[latch.node] = latch_values[latch.node] & mask
            else:
                values[latch.node] = mask if latch.reset_value else 0

        def lit_value(lit: int) -> int:
            value = values[lit_node(lit)]
            return (value ^ mask) if lit_sign(lit) else value

        for node in self.topo_order():
            f0, f1 = self.fanins(node)
            values[node] = lit_value(f0) & lit_value(f1)

        po_values = {name: lit_value(lit) for name, lit in self._pos}
        next_values = {
            latch.name: lit_value(latch.next_lit) for latch in self._latches
        }
        return po_values, next_values

    # ------------------------------------------------------------------
    # Rebuilding
    # ------------------------------------------------------------------
    def cleanup(self) -> tuple["AIG", dict[int, int]]:
        """Copy the graph keeping only logic reachable from outputs.

        Returns the compacted AIG and a literal translation map
        ``old_literal -> new_literal`` (defined for every node that
        survived, in positive polarity).
        """
        new = AIG()
        lit_map: dict[int, int] = {CONST0: CONST0}
        for node, name in zip(self._pis, self._pi_names):
            lit_map[node << 1] = new.add_pi(name)
        for latch in self._latches:
            lit_map[latch.node << 1] = new.add_latch(
                latch.name, latch.reset_kind, latch.reset_value
            )

        def translate(lit: int) -> int:
            base = lit_map[lit & ~1]
            return base ^ (lit & 1)

        for node in self.topo_order():
            f0, f1 = self.fanins(node)
            lit_map[node << 1] = new.and_(translate(f0), translate(f1))
        for name, lit in self._pos:
            new.add_po(name, translate(lit))
        for old_latch, new_latch in zip(self._latches, new._latches):
            new.set_latch_next(new_latch.node << 1, translate(old_latch.next_lit))
        return new, lit_map

    def canonical_hash(self) -> str:
        """Content hash of the observable graph, stable across
        processes and interpreter runs.

        Nodes are renumbered canonically -- constant, PIs and latches
        in creation order, then reachable AND nodes in topological
        order -- so the digest depends only on names, reset behaviour,
        and the structure of the output cones, never on raw node ids
        or dead (unreachable) logic.  This is the module/graph half of
        the compile-cache fingerprint (see :mod:`repro.flow.cache`).
        """
        renumber: dict[int, int] = {0: 0}
        for node in self._pis:
            renumber[node] = len(renumber)
        for latch in self._latches:
            renumber[latch.node] = len(renumber)
        order = self.topo_order()
        for node in order:
            renumber[node] = len(renumber)

        def canon_lit(lit: int) -> int:
            return (renumber[lit_node(lit)] << 1) | (lit & 1)

        digest = hashlib.sha256()
        digest.update(repr(("pis", tuple(self._pi_names))).encode())
        for latch in self._latches:
            digest.update(
                repr(
                    (
                        "latch",
                        latch.name,
                        latch.reset_kind,
                        latch.reset_value,
                        canon_lit(latch.next_lit),
                    )
                ).encode()
            )
        for node in order:
            fanin0, fanin1 = self.fanins(node)
            digest.update(
                repr(("and", canon_lit(fanin0), canon_lit(fanin1))).encode()
            )
        for name, lit in self._pos:
            digest.update(repr(("po", name, canon_lit(lit))).encode())
        return digest.hexdigest()

    def stats(self) -> str:
        return (
            f"AIG: pi={len(self._pis)} po={len(self._pos)} "
            f"latch={len(self._latches)} and={self.num_ands} "
            f"depth={self.depth()}"
        )

    def __repr__(self) -> str:  # pragma: no cover - diagnostic only
        return f"<{self.stats()}>"
