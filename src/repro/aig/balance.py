"""AND-tree balancing.

Rebuilds the graph bottom-up, flattening chains of single-fanout AND
nodes into multi-input conjunctions and re-associating them as balanced
trees (lowest-level operands pair first).  This is the classic
depth-reduction step run before technology mapping; it never changes
functionality because every rebuilt tree computes the same conjunction.
"""

from __future__ import annotations

from repro.aig.graph import AIG, lit_node, lit_sign


def balance(aig: AIG) -> AIG:
    """Return a depth-balanced, cleaned-up copy of ``aig``."""
    fanout = aig.fanout_counts()
    new = AIG()
    lit_map: dict[int, int] = {0: 0}
    levels: dict[int, int] = {0: 0}

    for node, name in zip(aig.pis, aig.pi_names):
        lit_map[node << 1] = new.add_pi(name)
        levels[lit_node(lit_map[node << 1])] = 0
    for latch in aig.latches:
        lit_map[latch.node << 1] = new.add_latch(
            latch.name, latch.reset_kind, latch.reset_value
        )
        levels[lit_node(lit_map[latch.node << 1])] = 0

    def translate(lit: int) -> int:
        return lit_map[lit & ~1] ^ (lit & 1)

    def level_of(lit: int) -> int:
        return levels.get(lit_node(lit), 0)

    def make_and(a: int, b: int) -> int:
        result = new.and_(a, b)
        node = lit_node(result)
        if node not in levels and new.is_and(node):
            f0, f1 = new.fanins(node)
            levels[node] = 1 + max(level_of(f0), level_of(f1))
        return result

    for node in aig.topo_order():
        conjuncts = _collect_conjuncts(aig, node, fanout)
        operands = [translate(lit) for lit in conjuncts]
        lit_map[node << 1] = _build_balanced(make_and, operands, level_of)

    for name, lit in aig.pos:
        new.add_po(name, translate(lit))
    for old_latch, new_latch in zip(aig.latches, new.latches):
        new.set_latch_next(new_latch.node << 1, translate(old_latch.next_lit))
    compacted, _ = new.cleanup()
    return compacted


def _collect_conjuncts(aig: AIG, node: int, fanout: list[int]) -> list[int]:
    """Flatten the maximal single-fanout AND tree rooted at ``node``.

    A fanin participates in the flattened conjunction when it is an
    uncomplemented AND node referenced nowhere else; other fanins
    (complemented edges, PIs, latches, shared nodes) become leaves.
    """
    leaves: list[int] = []
    stack = list(aig.fanins(node))
    while stack:
        lit = stack.pop()
        child = lit_node(lit)
        if not lit_sign(lit) and aig.is_and(child) and fanout[child] == 1:
            stack.extend(aig.fanins(child))
        else:
            leaves.append(lit)
    return leaves


def _build_balanced(make_and, operands: list[int], level_of) -> int:
    """AND the operands pairing cheapest-level terms first."""
    if not operands:
        return 1
    work = sorted(operands, key=level_of)
    while len(work) > 1:
        a = work.pop(0)
        b = work.pop(0)
        combined = make_and(a, b)
        position = 0
        combined_level = level_of(combined)
        while position < len(work) and level_of(work[position]) <= combined_level:
            position += 1
        work.insert(position, combined)
    return work[0]
