"""SAT-based combinational equivalence checking for AIGs.

Checks work per output pair on extracted cones, so large designs with
many independent outputs stay tractable.  A failed check returns a
counterexample (a named input assignment) rather than a bare False,
which the tests use to produce actionable failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.aig.graph import AIG
from repro.sat.cnf import CnfBuilder


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    failing_output: str | None = None
    counterexample: dict[str, bool] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.equivalent


def check_combinational_equivalence(left: AIG, right: AIG) -> EquivalenceResult:
    """Prove every same-named output (and latch next-state) pair equal.

    Primary inputs and latch outputs are matched by name; both designs
    must expose identical output and latch name sets.  Latch reset
    metadata must agree as well, otherwise sequential behaviour could
    differ even with identical next-state logic.
    """
    left_outputs = _named_cones(left)
    right_outputs = _named_cones(right)
    if set(left_outputs) != set(right_outputs):
        missing = set(left_outputs) ^ set(right_outputs)
        raise ValueError(f"output sets differ: {sorted(missing)}")
    left_resets = {l.name: (l.reset_kind, l.reset_value) for l in left.latches}
    right_resets = {l.name: (l.reset_kind, l.reset_value) for l in right.latches}
    if left_resets != right_resets:
        raise ValueError("latch reset specifications differ")

    for name in sorted(left_outputs):
        builder = CnfBuilder()
        sat_left = builder.encode(left, left_outputs[name])
        sat_right = builder.encode(right, right_outputs[name])
        miter = builder.xor_var(sat_left, sat_right)
        if builder.solver.solve(assumptions=[miter]):
            return EquivalenceResult(False, name, builder.model_inputs())
    return EquivalenceResult(True)


def check_equivalence_under_care(
    left: AIG, right: AIG, care: AIG, care_output: str = "care"
) -> EquivalenceResult:
    """Equivalence restricted to the care set.

    ``care`` is an AIG with one output (named ``care_output``) over the
    same named inputs; the check proves that no input satisfying the
    care predicate distinguishes the two designs.  This is the check
    used to validate state folding: outside the care set the optimized
    design may legitimately differ.
    """
    left_outputs = _named_cones(left)
    right_outputs = _named_cones(right)
    if set(left_outputs) != set(right_outputs):
        missing = set(left_outputs) ^ set(right_outputs)
        raise ValueError(f"output sets differ: {sorted(missing)}")
    care_lit = dict(care.pos).get(care_output)
    if care_lit is None:
        raise ValueError(f"care AIG has no output named {care_output!r}")

    for name in sorted(left_outputs):
        builder = CnfBuilder()
        sat_left = builder.encode(left, left_outputs[name])
        sat_right = builder.encode(right, right_outputs[name])
        sat_care = builder.encode(care, care_lit)
        miter = builder.xor_var(sat_left, sat_right)
        if builder.solver.solve(assumptions=[sat_care, miter]):
            return EquivalenceResult(False, name, builder.model_inputs())
    return EquivalenceResult(True)


def prove_lit_constant(
    aig: AIG, lit: int, care_assumptions: list[int], builder: CnfBuilder
) -> int | None:
    """Decide whether ``lit`` is constant over the care set.

    Args:
        aig: graph containing ``lit``.
        lit: literal to test.
        care_assumptions: SAT literals (already encoded in ``builder``)
            that constrain the input space.
        builder: shared encoder, so repeated queries amortise encoding.

    Returns:
        0 or 1 when the literal is provably that constant, else None.
    """
    sat_lit = builder.encode(aig, lit)
    can_be_true = builder.solver.solve(assumptions=care_assumptions + [sat_lit])
    if not can_be_true:
        return 0
    can_be_false = builder.solver.solve(assumptions=care_assumptions + [-sat_lit])
    if not can_be_false:
        return 1
    return None


def prove_lits_equal(
    aig: AIG, lit_a: int, lit_b: int, care_assumptions: list[int], builder: CnfBuilder
) -> bool:
    """Decide whether two literals agree over the care set."""
    sat_a = builder.encode(aig, lit_a)
    sat_b = builder.encode(aig, lit_b)
    miter = builder.xor_var(sat_a, sat_b)
    return not builder.solver.solve(assumptions=care_assumptions + [miter])


def _named_cones(aig: AIG) -> dict[str, int]:
    """POs plus latch next-state functions, keyed by unique names."""
    cones: dict[str, int] = {}
    for name, lit in aig.pos:
        if name in cones:
            raise ValueError(f"duplicate output name {name!r}")
        cones[name] = lit
    for latch in aig.latches:
        key = f"next:{latch.name}"
        if key in cones:
            raise ValueError(f"duplicate latch name {latch.name!r}")
        cones[key] = latch.next_lit
    return cones
