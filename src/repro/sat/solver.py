"""A conflict-driven clause-learning (CDCL) SAT solver.

Literal convention is DIMACS-like: variables are positive integers,
a negative integer denotes the negated variable.  The public API is
:meth:`Solver.add_clause` / :meth:`Solver.solve`, with optional
assumptions (used heavily by the incremental queries of the
state-folding pass).

The implementation carries the standard machinery -- two watched
literals, first-UIP learning, phase saving, exponential VSIDS decay,
and Luby-sequence restarts -- scaled to the modest instance sizes this
project generates (tens of thousands of clauses).
"""

from __future__ import annotations


class Solver:
    """CDCL SAT solver."""

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: list[list[int]] = []
        self._watches: dict[int, list[int]] = {}
        self._assign: dict[int, bool] = {}
        self._level: dict[int, int] = {}
        self._reason: dict[int, int | None] = {}
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._activity: dict[int, float] = {}
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._phase: dict[int, bool] = {}
        self._ok = True
        self._qhead = 0
        self._num_assumed = 0

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------
    def new_var(self) -> int:
        """Allocate a fresh variable; returns its index (>= 1)."""
        self._num_vars += 1
        return self._num_vars

    def add_clause(self, lits: list[int]) -> None:
        """Add a clause; [] marks the instance trivially unsatisfiable."""
        seen = set()
        clause = []
        for lit in lits:
            if lit == 0:
                raise ValueError("0 is not a valid literal")
            self._num_vars = max(self._num_vars, abs(lit))
            if -lit in seen:
                return  # tautological clause
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        if not clause:
            self._ok = False
            return
        self._clauses.append(clause)
        index = len(self._clauses) - 1
        if len(clause) == 1:
            # Watch the single literal twice; propagation handles it.
            self._watches.setdefault(clause[0], []).append(index)
        else:
            self._watches.setdefault(clause[0], []).append(index)
            self._watches.setdefault(clause[1], []).append(index)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self, assumptions: list[int] | None = None) -> bool:
        """Decide satisfiability under the given assumptions."""
        if not self._ok:
            return False
        self._backtrack(0)
        # Re-propagate unit clauses each call (cheap at our sizes).
        for index, clause in enumerate(self._clauses):
            if len(clause) == 1 and not self._enqueue(clause[0], index):
                self._ok = False
                return False
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return False

        assumptions = list(assumptions or [])
        restarts = 0
        conflicts_until_restart = _luby(restarts) * 64
        num_conflicts = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                if self._decision_level() == 0:
                    self._ok = False
                    return False
                if len(self._trail_lim) <= self._num_assumed:
                    # Conflict depends only on assumptions; the base CNF
                    # may still be satisfiable, so do not latch _ok.
                    return False
                learned, back_level = self._analyze(conflict)
                self._backtrack(max(back_level, self._num_assumed))
                self._learn(learned)
                self._decay_activities()
                num_conflicts += 1
                if num_conflicts >= conflicts_until_restart:
                    num_conflicts = 0
                    restarts += 1
                    conflicts_until_restart = _luby(restarts) * 64
                    self._backtrack(self._num_assumed)
            else:
                if self._num_assumed < len(assumptions):
                    lit = assumptions[self._num_assumed]
                    value = self._value(lit)
                    if value is False:
                        return False
                    self._trail_lim.append(len(self._trail))
                    self._num_assumed += 1
                    if value is None and not self._enqueue(lit, None):
                        return False
                    continue
                lit = self._pick_branch()
                if lit is None:
                    return True
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)

    def model(self) -> dict[int, bool]:
        """Satisfying assignment from the last successful solve."""
        return dict(self._assign)

    def model_value(self, lit: int) -> bool:
        value = self._assign.get(abs(lit), False)
        return value if lit > 0 else not value

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _value(self, lit: int) -> bool | None:
        assigned = self._assign.get(abs(lit))
        if assigned is None:
            return None
        return assigned if lit > 0 else not assigned

    def _enqueue(self, lit: int, reason: int | None) -> bool:
        value = self._value(lit)
        if value is not None:
            return value
        var = abs(lit)
        self._assign[var] = lit > 0
        self._level[var] = self._decision_level()
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> int | None:
        """Unit propagation; returns a conflicting clause index or None."""
        head = self._qhead
        while head < len(self._trail):
            lit = self._trail[head]
            head += 1
            falsified = -lit
            watch_list = self._watches.get(falsified, [])
            kept = []
            index_pos = 0
            while index_pos < len(watch_list):
                clause_index = watch_list[index_pos]
                index_pos += 1
                clause = self._clauses[clause_index]
                # Ensure falsified literal sits at position 1.
                if len(clause) > 1 and clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                if len(clause) > 1 and self._value(clause[0]) is True:
                    kept.append(clause_index)
                    continue
                # Search for a replacement watch.
                replaced = False
                for position in range(2, len(clause)):
                    if self._value(clause[position]) is not False:
                        clause[1], clause[position] = clause[position], clause[1]
                        self._watches.setdefault(clause[1], []).append(clause_index)
                        replaced = True
                        break
                if replaced:
                    continue
                kept.append(clause_index)
                if len(clause) == 1:
                    if not self._enqueue(clause[0], clause_index):
                        kept.extend(watch_list[index_pos:])
                        self._watches[falsified] = kept
                        self._qhead = len(self._trail)
                        return clause_index
                elif not self._enqueue(clause[0], clause_index):
                    kept.extend(watch_list[index_pos:])
                    self._watches[falsified] = kept
                    self._qhead = len(self._trail)
                    return clause_index
            self._watches[falsified] = kept
        self._qhead = head
        return None

    def _analyze(self, conflict_index: int) -> tuple[list[int], int]:
        """First-UIP conflict analysis; returns (learned clause, level)."""
        learned: list[int] = [0]  # placeholder for the asserting literal
        seen: set[int] = set()
        counter = 0
        clause = self._clauses[conflict_index]
        trail_pos = len(self._trail) - 1
        current_level = self._decision_level()
        asserting_lit = None

        pending = list(clause)
        while True:
            for lit in pending:
                var = abs(lit)
                if var in seen or self._level.get(var, 0) == 0:
                    continue
                seen.add(var)
                self._bump_activity(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learned.append(lit)
            # Walk the trail backwards for the next seen literal.
            while trail_pos >= 0 and abs(self._trail[trail_pos]) not in seen:
                trail_pos -= 1
            if trail_pos < 0:
                break
            asserting_lit = self._trail[trail_pos]
            var = abs(asserting_lit)
            seen.discard(var)
            counter -= 1
            trail_pos -= 1
            if counter == 0:
                break
            reason = self._reason.get(var)
            pending = (
                [l for l in self._clauses[reason] if abs(l) != var]
                if reason is not None
                else []
            )
        learned[0] = -asserting_lit if asserting_lit is not None else 0
        if learned[0] == 0:
            learned = learned[1:]
        if len(learned) == 1:
            return learned, 0
        back_level = max(
            (self._level[abs(lit)] for lit in learned[1:]), default=0
        )
        # Put a literal from the backtrack level in watch position 1.
        for position in range(1, len(learned)):
            if self._level[abs(learned[position])] == back_level:
                learned[1], learned[position] = learned[position], learned[1]
                break
        return learned, back_level

    def _learn(self, clause: list[int]) -> None:
        if not clause:
            self._ok = False
            return
        self._clauses.append(clause)
        index = len(self._clauses) - 1
        self._watches.setdefault(clause[0], []).append(index)
        if len(clause) > 1:
            self._watches.setdefault(clause[1], []).append(index)
        self._enqueue(clause[0], index)

    def _backtrack(self, level: int) -> None:
        while self._decision_level() > level:
            mark = self._trail_lim.pop()
            while len(self._trail) > mark:
                lit = self._trail.pop()
                var = abs(lit)
                self._phase[var] = lit > 0
                del self._assign[var]
                self._level.pop(var, None)
                self._reason.pop(var, None)
        self._qhead = min(self._qhead, len(self._trail))
        if level == 0:
            self._num_assumed = 0
        else:
            self._num_assumed = min(self._num_assumed, level)

    def _pick_branch(self) -> int | None:
        best_var = None
        best_activity = -1.0
        for var in range(1, self._num_vars + 1):
            if var not in self._assign:
                activity = self._activity.get(var, 0.0)
                if activity > best_activity:
                    best_activity = activity
                    best_var = var
        if best_var is None:
            return None
        phase = self._phase.get(best_var, False)
        return best_var if phase else -best_var

    def _bump_activity(self, var: int) -> None:
        self._activity[var] = self._activity.get(var, 0.0) + self._var_inc
        if self._activity[var] > 1e100:
            for key in self._activity:
                self._activity[key] *= 1e-100
            self._var_inc *= 1e-100

    def _decay_activities(self) -> None:
        self._var_inc /= self._var_decay


def _luby(index: int) -> int:
    """The Luby restart sequence: 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ..."""
    size = 1
    seq = 0
    while size < index + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        seq -= 1
        index %= size
    return 1 << seq
