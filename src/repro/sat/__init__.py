"""SAT-based reasoning: a CDCL solver and AIG equivalence checking.

The synthesis flow uses SAT in two places:

* verifying that optimization passes preserve functionality (plain and
  care-set-conditional combinational equivalence), and
* the state-folding pass, which asks "is this node constant over the
  care set?" / "are these two nodes equal over the care set?".

The solver is a compact but genuine CDCL implementation: two watched
literals, first-UIP clause learning, VSIDS-style activities, and Luby
restarts.
"""

from repro.sat.cnf import CnfBuilder
from repro.sat.equiv import (
    check_combinational_equivalence,
    check_equivalence_under_care,
    prove_lit_constant,
    prove_lits_equal,
)
from repro.sat.solver import Solver

__all__ = [
    "CnfBuilder",
    "Solver",
    "check_combinational_equivalence",
    "check_equivalence_under_care",
    "prove_lit_constant",
    "prove_lits_equal",
]
