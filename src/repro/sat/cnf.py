"""Tseitin encoding of AIGs into CNF.

:class:`CnfBuilder` incrementally encodes one or more AIGs into a
shared :class:`~repro.sat.solver.Solver` instance, unifying primary
inputs by name so that miters for equivalence checks fall out
naturally.  Latch outputs are treated as free variables (cut points),
which is the right semantics for *combinational* equivalence of
sequential netlists: next-state functions are checked as extra
outputs.
"""

from __future__ import annotations

from repro.aig.graph import AIG, lit_node, lit_sign
from repro.sat.solver import Solver


class CnfBuilder:
    """Encode AIG cones into a SAT solver."""

    def __init__(self, solver: Solver | None = None) -> None:
        self.solver = solver or Solver()
        self._input_vars: dict[str, int] = {}
        self._node_vars: dict[tuple[int, int], int] = {}

    def input_var(self, name: str) -> int:
        """SAT variable of the named input (shared across AIGs)."""
        var = self._input_vars.get(name)
        if var is None:
            var = self.solver.new_var()
            self._input_vars[name] = var
        return var

    def encode(self, aig: AIG, lit: int) -> int:
        """Encode the cone of ``lit`` and return the SAT literal for it.

        Inputs and latch outputs become (name-shared) free variables;
        AND nodes get Tseitin definitions.  Constant literals are
        encoded through a dedicated always-false variable.
        """
        node_sat = self._encode_node(aig, lit_node(lit))
        return -node_sat if lit_sign(lit) else node_sat

    def _encode_node(self, aig: AIG, node: int) -> int:
        key = (id(aig), node)
        cached = self._node_vars.get(key)
        if cached is not None:
            return cached
        if node == 0:
            var = self._constant_false_var()
        elif aig.is_and(node):
            f0, f1 = aig.fanins(node)
            a = self.encode(aig, f0)
            b = self.encode(aig, f1)
            var = self.solver.new_var()
            self.solver.add_clause([-var, a])
            self.solver.add_clause([-var, b])
            self.solver.add_clause([var, -a, -b])
        elif aig.is_latch_output(node):
            latch = aig.latch_for_node(node)
            var = self.input_var(f"latch:{latch.name}")
        else:
            position = aig.pis.index(node)
            var = self.input_var(aig.pi_names[position])
        self._node_vars[key] = var
        return var

    def _constant_false_var(self) -> int:
        var = self._input_vars.get("__const0__")
        if var is None:
            var = self.solver.new_var()
            self._input_vars["__const0__"] = var
            self.solver.add_clause([-var])
        return var

    def xor_var(self, a: int, b: int) -> int:
        """A variable equal to ``a XOR b``."""
        var = self.solver.new_var()
        self.solver.add_clause([-var, a, b])
        self.solver.add_clause([-var, -a, -b])
        self.solver.add_clause([var, -a, b])
        self.solver.add_clause([var, a, -b])
        return var

    def or_clause(self, lits: list[int]) -> None:
        self.solver.add_clause(lits)

    def model_inputs(self) -> dict[str, bool]:
        """Named input assignment from the last satisfying model."""
        return {
            name: self.solver.model_value(var)
            for name, var in self._input_vars.items()
            if not name.startswith("__")
        }
