"""Module composition by flattening (generator-style hierarchy).

The RTL IR is deliberately flat -- synthesis operates on one module --
so composition happens the way chip generators compose: a child
module's contents are *inlined* into a parent builder under a name
prefix.  Child inputs are either driven by parent expressions
(``connections``) or re-exposed as prefixed parent inputs; child
registers and memories are copied under prefixed names; child outputs
come back as parent-side expressions.

Configuration memories keep working across inlining: their write-port
inputs follow the same connect-or-expose rule, so a parent can expose
a child's programming interface or drive it from its own logic, and
:func:`repro.pe.bind.bind_tables` sees the prefixed memory names.
"""

from __future__ import annotations

from repro.rtl.ast import (
    BinOp,
    Case,
    Concat,
    Const,
    Expr,
    InputRef,
    MemRead,
    Mux,
    Not,
    ReduceOp,
    RegRef,
    Slice,
)
from repro.rtl.builder import ModuleBuilder
from repro.rtl.module import Memory, Module, Reg, WritePort


def inline(
    parent: ModuleBuilder,
    child: Module,
    prefix: str,
    connections: dict[str, Expr] | None = None,
) -> dict[str, Expr]:
    """Flatten ``child`` into ``parent`` under ``prefix``.

    Args:
        parent: the builder receiving the logic.
        child: a validated module to absorb.
        connections: child input name -> parent expression.  Unlisted
            child inputs become parent inputs named ``{prefix}_{name}``.

    Returns:
        child output name -> parent expression.

    Raises:
        ValueError: on width mismatches or unknown connection names.
    """
    connections = dict(connections or {})
    for name in connections:
        if name not in child.inputs:
            raise ValueError(f"connection to unknown child input {name!r}")

    input_map: dict[str, Expr] = {}
    for name, port in child.inputs.items():
        if name in connections:
            expr = connections[name]
            if expr.width != port.width:
                raise ValueError(
                    f"connection to {name!r} has width {expr.width}, "
                    f"expected {port.width}"
                )
            input_map[name] = expr
        else:
            input_map[name] = parent.input(f"{prefix}_{name}", port.width)

    # Copy memories under prefixed names (write ports follow inputs).
    for name, memory in child.memories.items():
        new_name = f"{prefix}_{name}"
        if new_name in parent._module.memories:
            raise ValueError(f"memory name {new_name!r} already in use")
        if memory.writable:
            port = memory.write_port
            assert port is not None
            new_port = WritePort(
                _port_name(input_map[port.enable], parent, prefix, port.enable),
                _port_name(input_map[port.addr], parent, prefix, port.addr),
                _port_name(input_map[port.data], parent, prefix, port.data),
            )
            parent._module.memories[new_name] = Memory(
                new_name,
                memory.width,
                memory.depth,
                writable=True,
                write_port=new_port,
            )
        else:
            parent._module.memories[new_name] = Memory(
                new_name,
                memory.width,
                memory.depth,
                contents=list(memory.contents or []),
            )

    cache: dict[int, Expr] = {}

    def rewrite(expr: Expr) -> Expr:
        cached = cache.get(id(expr))
        if cached is not None:
            return cached
        result = _rewrite(expr, prefix, input_map, rewrite)
        cache[id(expr)] = result
        return result

    for name, reg in child.regs.items():
        new_name = f"{prefix}_{name}"
        if new_name in parent._module.regs:
            raise ValueError(f"register name {new_name!r} already in use")
        assert reg.next is not None
        parent._module.regs[new_name] = Reg(
            new_name, reg.width, reg.reset_kind, reg.reset_value, rewrite(reg.next)
        )

    return {name: rewrite(expr) for name, expr in child.outputs.items()}


def _port_name(expr: Expr, parent: ModuleBuilder, prefix: str, original: str) -> str:
    """Write ports must remain *inputs* after inlining.

    A connected write port would need write logic rewriting; keeping
    the restriction simple and explicit: write ports may only be
    exposed, not driven, so the mapped expression must be the exposed
    parent input.
    """
    if isinstance(expr, InputRef):
        return expr.name
    raise ValueError(
        f"config-memory write port {original!r} cannot be driven by "
        f"logic; leave it unconnected so it is re-exposed"
    )


def _rewrite(expr: Expr, prefix: str, input_map: dict[str, Expr], rec) -> Expr:
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, InputRef):
        return input_map[expr.name]
    if isinstance(expr, RegRef):
        return RegRef(f"{prefix}_{expr.name}", expr.width)
    if isinstance(expr, MemRead):
        return MemRead(f"{prefix}_{expr.mem_name}", rec(expr.addr), expr.width)
    if isinstance(expr, Not):
        return Not(rec(expr.operand))
    if isinstance(expr, BinOp):
        return BinOp(expr.op, rec(expr.left), rec(expr.right))
    if isinstance(expr, ReduceOp):
        return ReduceOp(expr.op, rec(expr.operand))
    if isinstance(expr, Mux):
        return Mux(rec(expr.sel), rec(expr.if1), rec(expr.if0))
    if isinstance(expr, Slice):
        return Slice(rec(expr.operand), expr.lsb, expr.width)
    if isinstance(expr, Concat):
        return Concat(tuple(rec(part) for part in expr.parts))
    if isinstance(expr, Case):
        return Case(
            rec(expr.selector),
            tuple((label, rec(value)) for label, value in expr.arms),
            rec(expr.default),
        )
    raise TypeError(f"cannot inline {type(expr).__name__}")
