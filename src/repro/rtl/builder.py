"""Fluent construction of RTL modules.

:class:`ModuleBuilder` is the generator-facing API: chip generators in
:mod:`repro.controllers` and :mod:`repro.smartmem` use it to emit
flexible or specialized RTL.  Free functions (:func:`cat`,
:func:`mux`, :func:`zext`, :func:`repeat`) cover the expression forms
that do not read naturally as methods.
"""

from __future__ import annotations

from repro.rtl.ast import Case, Concat, Const, Expr, InputRef, MemRead, Mux, RegRef
from repro.rtl.module import Input, Memory, Module, Reg, WritePort


def cat(*parts: Expr) -> Expr:
    """Concatenate LSB-first: ``cat(lo, hi)`` puts ``lo`` in the low bits."""
    if len(parts) == 1:
        return parts[0]
    return Concat(tuple(parts))


def mux(sel: Expr, if1: Expr, if0: Expr) -> Expr:
    """``sel ? if1 : if0``."""
    return Mux(sel, if1, if0)


def zext(expr: Expr, width: int) -> Expr:
    """Zero-extend to ``width`` bits."""
    if width < expr.width:
        raise ValueError("zext cannot narrow")
    if width == expr.width:
        return expr
    return Concat((expr, Const(0, width - expr.width)))


def repeat(expr: Expr, count: int) -> Expr:
    """Replicate an expression ``count`` times (LSB-first)."""
    if count <= 0:
        raise ValueError("repeat count must be positive")
    return Concat(tuple([expr] * count)) if count > 1 else expr


class RomHandle:
    """Read handle for a bound (constant) memory."""

    def __init__(self, memory: Memory) -> None:
        self._memory = memory

    def read(self, addr: Expr) -> MemRead:
        return MemRead(self._memory.name, addr, self._memory.width)


class ConfigMemHandle(RomHandle):
    """Read handle for a writable configuration memory.

    The write side is exposed as the module-level ports named in the
    memory's :class:`~repro.rtl.module.WritePort`; at runtime (or in
    simulation) the surrounding system programs the table through them.
    """

    @property
    def write_port(self) -> WritePort:
        port = self._memory.write_port
        assert port is not None
        return port


class ModuleBuilder:
    """Incrementally assemble and validate a :class:`Module`."""

    def __init__(self, name: str) -> None:
        self._module = Module(name)

    # ------------------------------------------------------------------
    # Ports and state
    # ------------------------------------------------------------------
    def input(self, name: str, width: int = 1) -> InputRef:
        self._check_fresh(name)
        self._module.inputs[name] = Input(name, width)
        return InputRef(name, width)

    def output(self, name: str, expr: Expr) -> None:
        if name in self._module.outputs:
            raise ValueError(f"output {name!r} already driven")
        self._module.outputs[name] = expr

    def reg(
        self,
        name: str,
        width: int = 1,
        reset_kind: str = "sync",
        reset_value: int = 0,
    ) -> RegRef:
        self._check_fresh(name)
        self._module.regs[name] = Reg(name, width, reset_kind, reset_value)
        return RegRef(name, width)

    def drive(self, reg_ref: RegRef, next_expr: Expr) -> None:
        """Connect a register's next-state expression."""
        reg = self._module.regs.get(reg_ref.name)
        if reg is None:
            raise ValueError(f"unknown register {reg_ref.name!r}")
        if reg.next is not None:
            raise ValueError(f"register {reg_ref.name!r} already driven")
        reg.next = next_expr

    # ------------------------------------------------------------------
    # Memories
    # ------------------------------------------------------------------
    def rom(self, name: str, width: int, depth: int, contents: list[int]) -> RomHandle:
        """A constant table: the partially-evaluated configuration."""
        self._check_fresh(name)
        memory = Memory(name, width, depth, contents=list(contents))
        self._module.memories[name] = memory
        return RomHandle(memory)

    def config_mem(self, name: str, width: int, depth: int) -> ConfigMemHandle:
        """A programmable table: the flexible configuration memory.

        Creates the implicit write ports ``<name>_we``, ``<name>_waddr``
        and ``<name>_wdata`` as module inputs.
        """
        self._check_fresh(name)
        addr_width = (depth - 1).bit_length()
        port = WritePort(f"{name}_we", f"{name}_waddr", f"{name}_wdata")
        self.input(port.enable, 1)
        self.input(port.addr, addr_width)
        self.input(port.data, width)
        memory = Memory(name, width, depth, writable=True, write_port=port)
        self._module.memories[name] = memory
        return ConfigMemHandle(memory)

    # ------------------------------------------------------------------
    # Control constructs
    # ------------------------------------------------------------------
    def case(
        self,
        selector: Expr,
        arms: dict[int, Expr],
        default: Expr,
    ) -> Case:
        """A parallel case expression (see :class:`repro.rtl.ast.Case`)."""
        return Case(selector, tuple(sorted(arms.items())), default)

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------
    def build(self) -> Module:
        """Validate and return the finished module."""
        self._module.validate()
        return self._module

    def _check_fresh(self, name: str) -> None:
        taken = (
            name in self._module.inputs
            or name in self._module.regs
            or name in self._module.memories
        )
        if taken:
            raise ValueError(f"name {name!r} already in use")
