"""Expression AST for the RTL IR.

All expressions are width-checked at construction.  Operator
overloading gives generator code a compact surface::

    done = (count == 7) & start
    nxt  = mux(done, Const(0, 3), count + 1)

Every node exposes ``width`` and ``children()``; structural equality is
interned per-module by the builder where sharing matters (the AIG's
structural hashing makes elaboration-level sharing a non-issue).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Expr:
    """Base class for RTL expressions (a ``width``-bit vector)."""

    width: int

    def children(self) -> tuple["Expr", ...]:
        return ()

    # ------------------------------------------------------------------
    # Operator sugar
    # ------------------------------------------------------------------
    def __and__(self, other: "Expr") -> "Expr":
        return BinOp("and", self, _coerce(other, self.width))

    def __or__(self, other: "Expr") -> "Expr":
        return BinOp("or", self, _coerce(other, self.width))

    def __xor__(self, other: "Expr") -> "Expr":
        return BinOp("xor", self, _coerce(other, self.width))

    def __invert__(self) -> "Expr":
        return Not(self)

    def __add__(self, other) -> "Expr":
        return BinOp("add", self, _coerce(other, self.width))

    def __sub__(self, other) -> "Expr":
        return BinOp("sub", self, _coerce(other, self.width))

    def eq(self, other) -> "Expr":
        return BinOp("eq", self, _coerce(other, self.width))

    def ne(self, other) -> "Expr":
        return Not(BinOp("eq", self, _coerce(other, self.width)))

    def lt(self, other) -> "Expr":
        return BinOp("lt", self, _coerce(other, self.width))

    def __getitem__(self, index) -> "Expr":
        if isinstance(index, slice):
            start = index.start or 0
            stop = index.stop if index.stop is not None else self.width
            if index.step is not None:
                raise ValueError("strided slices are not supported")
            return Slice(self, start, stop - start)
        return Slice(self, index, 1)

    def any(self) -> "Expr":
        """OR-reduction to 1 bit."""
        return ReduceOp("or", self)

    def all(self) -> "Expr":
        """AND-reduction to 1 bit."""
        return ReduceOp("and", self)

    def parity(self) -> "Expr":
        """XOR-reduction to 1 bit."""
        return ReduceOp("xor", self)


def _coerce(value, width: int) -> Expr:
    """Allow bare ints on the right-hand side of operators."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, int):
        return Const(value, width)
    raise TypeError(f"cannot use {type(value).__name__} as an RTL expression")


@dataclass(frozen=True)
class Const(Expr):
    """A constant bit-vector ``value`` of the given ``width``."""

    value: int
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("width must be positive")
        if not 0 <= self.value < (1 << self.width):
            raise ValueError(
                f"constant {self.value} does not fit in {self.width} bits"
            )


@dataclass(frozen=True)
class InputRef(Expr):
    """Reference to a module input port."""

    name: str
    width: int


@dataclass(frozen=True)
class RegRef(Expr):
    """Reference to the current value (Q output) of a register."""

    name: str
    width: int


@dataclass(frozen=True)
class MemRead(Expr):
    """Asynchronous read of a memory: ``mem[addr]``.

    This is the table-based controller's key structure: address bits in,
    stored word out, no clock involved (the register lives elsewhere).
    """

    mem_name: str
    addr: Expr
    width: int

    def children(self) -> tuple[Expr, ...]:
        return (self.addr,)


@dataclass(frozen=True)
class Not(Expr):
    """Bitwise complement."""

    operand: Expr

    @property
    def width(self) -> int:
        return self.operand.width

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


_BINOPS = ("and", "or", "xor", "add", "sub", "eq", "lt")
_COMPARISONS = ("eq", "lt")


@dataclass(frozen=True)
class BinOp(Expr):
    """Binary operator; comparisons produce a 1-bit result."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _BINOPS:
            raise ValueError(f"unknown operator {self.op!r}")
        if self.left.width != self.right.width:
            raise ValueError(
                f"{self.op}: width mismatch {self.left.width} vs {self.right.width}"
            )

    @property
    def width(self) -> int:
        return 1 if self.op in _COMPARISONS else self.left.width

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class ReduceOp(Expr):
    """Reduction of all bits to one (``or``, ``and`` or ``xor``)."""

    op: str
    operand: Expr
    width: int = field(default=1, init=False)

    def __post_init__(self) -> None:
        if self.op not in ("or", "and", "xor"):
            raise ValueError(f"unknown reduction {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Mux(Expr):
    """2-way multiplexer: ``sel ? if1 : if0``."""

    sel: Expr
    if1: Expr
    if0: Expr

    def __post_init__(self) -> None:
        if self.sel.width != 1:
            raise ValueError("mux select must be 1 bit wide")
        if self.if1.width != self.if0.width:
            raise ValueError(
                f"mux arm width mismatch {self.if1.width} vs {self.if0.width}"
            )

    @property
    def width(self) -> int:
        return self.if1.width

    def children(self) -> tuple[Expr, ...]:
        return (self.sel, self.if1, self.if0)


@dataclass(frozen=True)
class Slice(Expr):
    """Bit-slice ``operand[lsb +: width]``."""

    operand: Expr
    lsb: int
    width: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise ValueError("slice width must be positive")
        if self.lsb < 0 or self.lsb + self.width > self.operand.width:
            raise ValueError(
                f"slice [{self.lsb}+:{self.width}] out of range for "
                f"{self.operand.width}-bit operand"
            )

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)


@dataclass(frozen=True)
class Concat(Expr):
    """Concatenation; ``parts`` are LSB-first."""

    parts: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if not self.parts:
            raise ValueError("concat of nothing")

    @property
    def width(self) -> int:
        return sum(part.width for part in self.parts)

    def children(self) -> tuple[Expr, ...]:
        return tuple(self.parts)


@dataclass(frozen=True)
class Case(Expr):
    """Parallel case: compare ``selector`` against constant labels.

    The vendor-recommended FSM style in the paper is exactly a case
    statement over the state register, so this node is load-bearing:
    :mod:`repro.synth.fsm_infer` pattern-matches it.
    """

    selector: Expr
    arms: tuple[tuple[int, Expr], ...]
    default: Expr

    def __post_init__(self) -> None:
        labels = set()
        for label, value in self.arms:
            if not 0 <= label < (1 << self.selector.width):
                raise ValueError(f"case label {label} wider than the selector")
            if label in labels:
                raise ValueError(f"duplicate case label {label}")
            labels.add(label)
            if value.width != self.default.width:
                raise ValueError("case arms must share the default's width")

    @property
    def width(self) -> int:
        return self.default.width

    def children(self) -> tuple[Expr, ...]:
        return (self.selector, *(value for _, value in self.arms), self.default)
