"""Module container for the RTL IR: ports, registers, memories.

A :class:`Module` is a closed netlist of expressions over named inputs,
registers and memories.  ``validate()`` enforces the invariants the
rest of the flow assumes (resolvable references, width agreement,
driven registers, power-of-two memory depths, correct address widths).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.rtl.ast import (
    BinOp,
    Case,
    Concat,
    Const,
    Expr,
    InputRef,
    MemRead,
    Mux,
    Not,
    ReduceOp,
    RegRef,
    Slice,
)

RESET_KINDS = ("none", "sync", "async")


@dataclass
class Input:
    """A module input port."""

    name: str
    width: int


@dataclass
class Reg:
    """A register (bank of flops sharing one reset style).

    Attributes:
        name: unique register name.
        width: bit width.
        reset_kind: ``"none"``, ``"sync"`` or ``"async"``.
        reset_value: value loaded by reset (and the deterministic
            initial simulation value for ``"none"`` registers).
        next: next-state expression, assigned via the builder.
    """

    name: str
    width: int
    reset_kind: str = "sync"
    reset_value: int = 0
    next: Expr | None = None

    def __post_init__(self) -> None:
        if self.reset_kind not in RESET_KINDS:
            raise ValueError(f"unknown reset kind {self.reset_kind!r}")
        if not 0 <= self.reset_value < (1 << self.width):
            raise ValueError("reset value does not fit the register")

    def ref(self) -> RegRef:
        return RegRef(self.name, self.width)


@dataclass
class WritePort:
    """Names of the implicit configuration-write ports of a memory."""

    enable: str
    addr: str
    data: str


@dataclass
class Memory:
    """An asynchronously-readable memory.

    Two flavours, matching the paper's design points:

    * ``contents`` given and not ``writable``: a ROM -- the *bound*
      (partially evaluated) configuration.  Elaborates to pure logic.
    * ``writable`` with a :class:`WritePort`: a configuration memory --
      the *flexible* design.  Elaborates to a flop array plus write
      decoding and a read mux: the area the paper's "Full" designs pay.
    """

    name: str
    width: int
    depth: int
    contents: list[int] | None = None
    writable: bool = False
    write_port: WritePort | None = None

    def __post_init__(self) -> None:
        if self.depth < 2 or self.depth & (self.depth - 1):
            raise ValueError("memory depth must be a power of two >= 2")
        if self.width <= 0:
            raise ValueError("memory width must be positive")
        if self.writable != (self.write_port is not None):
            raise ValueError("writable memories need a write port (and only they)")
        if self.contents is not None:
            if len(self.contents) > self.depth:
                raise ValueError("more contents than rows")
            for index, word in enumerate(self.contents):
                if not 0 <= word < (1 << self.width):
                    raise ValueError(f"row {index} does not fit the word width")
        if self.contents is None and not self.writable:
            raise ValueError("a non-writable memory must have contents (a ROM)")

    @property
    def addr_width(self) -> int:
        return (self.depth - 1).bit_length()

    def padded_contents(self) -> list[int]:
        """Contents extended with zeros to the full depth."""
        if self.contents is None:
            raise ValueError(f"memory {self.name} has no bound contents")
        return list(self.contents) + [0] * (self.depth - len(self.contents))


@dataclass
class Module:
    """A synthesizable RTL module."""

    name: str
    inputs: dict[str, Input] = field(default_factory=dict)
    outputs: dict[str, Expr] = field(default_factory=dict)
    regs: dict[str, Reg] = field(default_factory=dict)
    memories: dict[str, Memory] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise ``ValueError`` on any broken invariant."""
        for reg in self.regs.values():
            if reg.next is None:
                raise ValueError(f"register {reg.name!r} has no next-state driver")
            if reg.next.width != reg.width:
                raise ValueError(
                    f"register {reg.name!r} driven with width "
                    f"{reg.next.width}, expected {reg.width}"
                )
        for name, expr in self.outputs.items():
            if expr.width <= 0:
                raise ValueError(f"output {name!r} has non-positive width")
        for expr in self._all_exprs():
            self._validate_expr(expr)

    def _all_exprs(self):
        roots = list(self.outputs.values())
        roots += [reg.next for reg in self.regs.values() if reg.next is not None]
        seen: set[int] = set()
        stack = list(roots)
        while stack:
            expr = stack.pop()
            if id(expr) in seen:
                continue
            seen.add(id(expr))
            yield expr
            stack.extend(expr.children())

    def _validate_expr(self, expr: Expr) -> None:
        if isinstance(expr, InputRef):
            port = self.inputs.get(expr.name)
            if port is None:
                raise ValueError(f"unknown input {expr.name!r}")
            if port.width != expr.width:
                raise ValueError(
                    f"input {expr.name!r} referenced with width {expr.width}, "
                    f"declared {port.width}"
                )
        elif isinstance(expr, RegRef):
            reg = self.regs.get(expr.name)
            if reg is None:
                raise ValueError(f"unknown register {expr.name!r}")
            if reg.width != expr.width:
                raise ValueError(
                    f"register {expr.name!r} referenced with width {expr.width}, "
                    f"declared {reg.width}"
                )
        elif isinstance(expr, MemRead):
            memory = self.memories.get(expr.mem_name)
            if memory is None:
                raise ValueError(f"unknown memory {expr.mem_name!r}")
            if memory.width != expr.width:
                raise ValueError(f"memory {expr.mem_name!r} read width mismatch")
            if expr.addr.width != memory.addr_width:
                raise ValueError(
                    f"memory {expr.mem_name!r} needs {memory.addr_width} "
                    f"address bits, got {expr.addr.width}"
                )

    # ------------------------------------------------------------------
    # Convenience queries used by passes
    # ------------------------------------------------------------------
    def case_registers(self) -> dict[str, Case]:
        """Registers written in the case-statement FSM style.

        Returns the subset of registers whose next-state expression is
        a (possibly reset-muxed) ``Case`` over their own current value
        -- the idiom FSM inference recognises.
        """
        found: dict[str, Case] = {}
        for reg in self.regs.values():
            expr = reg.next
            # Peel muxes whose arms lead to the case (enable/reset muxes).
            while isinstance(expr, Mux):
                if isinstance(expr.if1, Case):
                    expr = expr.if1
                elif isinstance(expr.if0, Case):
                    expr = expr.if0
                else:
                    break
            if isinstance(expr, Case) and _selects_register(expr.selector, reg):
                found[reg.name] = expr
        return found

    def stats(self) -> str:
        return (
            f"module {self.name}: {len(self.inputs)} inputs, "
            f"{len(self.outputs)} outputs, {len(self.regs)} regs, "
            f"{len(self.memories)} memories"
        )

    # ------------------------------------------------------------------
    # Fingerprinting
    # ------------------------------------------------------------------
    def canonical_hash(self) -> str:
        """Content hash of the module, stable across processes and
        interpreter runs.

        Covers everything elaboration consumes -- ports, register
        declarations and drivers, memory declarations and bound
        contents, output expressions -- so two modules hash equal
        exactly when a synthesis flow cannot tell them apart.  This is
        the RTL half of the compile-cache fingerprint (see
        :mod:`repro.flow.cache`).
        """
        digest = hashlib.sha256()
        memo: dict[int, bytes] = {}
        digest.update(repr(("module", self.name)).encode())
        for name, port in self.inputs.items():
            digest.update(repr(("input", name, port.width)).encode())
        for name, reg in self.regs.items():
            digest.update(
                repr(
                    ("reg", name, reg.width, reg.reset_kind, reg.reset_value)
                ).encode()
            )
            digest.update(
                b"-" if reg.next is None else _expr_digest(reg.next, memo)
            )
        for name, memory in self.memories.items():
            write_port = (
                None
                if memory.write_port is None
                else (
                    memory.write_port.enable,
                    memory.write_port.addr,
                    memory.write_port.data,
                )
            )
            digest.update(
                repr(
                    (
                        "memory",
                        name,
                        memory.width,
                        memory.depth,
                        None
                        if memory.contents is None
                        else tuple(memory.contents),
                        memory.writable,
                        write_port,
                    )
                ).encode()
            )
        for name, expr in self.outputs.items():
            digest.update(repr(("output", name)).encode())
            digest.update(_expr_digest(expr, memo))
        return digest.hexdigest()


def _expr_header(expr: Expr) -> tuple:
    """The scalar identity of one AST node (children hashed apart)."""
    if isinstance(expr, Const):
        return ("const", expr.value, expr.width)
    if isinstance(expr, InputRef):
        return ("in", expr.name, expr.width)
    if isinstance(expr, RegRef):
        return ("regref", expr.name, expr.width)
    if isinstance(expr, MemRead):
        return ("memread", expr.mem_name, expr.width)
    if isinstance(expr, Not):
        return ("not",)
    if isinstance(expr, BinOp):
        return ("bin", expr.op)
    if isinstance(expr, ReduceOp):
        return ("reduce", expr.op)
    if isinstance(expr, Mux):
        return ("mux",)
    if isinstance(expr, Slice):
        return ("slice", expr.lsb, expr.width)
    if isinstance(expr, Concat):
        return ("concat", len(expr.parts))
    if isinstance(expr, Case):
        return ("case", tuple(label for label, _ in expr.arms))
    return ("expr", type(expr).__name__, expr.width)


def _expr_digest(expr: Expr, memo: dict[int, bytes]) -> bytes:
    """Bottom-up digest of an expression DAG.

    Iterative and memoized by object identity: shared subtrees are
    hashed once, so heavily-shared generator output stays linear (a
    naive tree walk would revisit shared nodes exponentially often).
    """
    stack = [expr]
    while stack:
        node = stack[-1]
        if id(node) in memo:
            stack.pop()
            continue
        children = node.children()
        pending = [child for child in children if id(child) not in memo]
        if pending:
            stack.extend(pending)
            continue
        stack.pop()
        digest = hashlib.sha256(repr(_expr_header(node)).encode())
        for child in children:
            digest.update(memo[id(child)])
        memo[id(node)] = digest.digest()
    return memo[id(expr)]


def _selects_register(selector: Expr, reg: Reg) -> bool:
    """True when the selector is the register itself (or all of it)."""
    if isinstance(selector, RegRef):
        return selector.name == reg.name
    if isinstance(selector, Concat):
        parts = selector.parts
        return all(isinstance(p, RegRef) and p.name == reg.name for p in parts)
    return False
