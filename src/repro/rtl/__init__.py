"""Structural RTL intermediate representation.

A small, synthesizable, bit-vector RTL in the spirit of the
SystemVerilog subset the paper's designs were written in.  Modules are
built programmatically (this *is* a chip-generator project), simulated
cycle-accurately by :mod:`repro.sim`, and elaborated to an AIG by
:mod:`repro.synth.elaborate`.

Two idioms matter to the experiments and are both first-class here:

* ``Case`` expressions over a register -- the vendor-recommended FSM
  coding style, which the compiler's FSM inference recognises;
* ``Memory`` reads -- the table-driven style, which it (faithfully to
  the paper) does not.
"""

from repro.rtl.ast import (
    BinOp,
    Case,
    Concat,
    Const,
    Expr,
    InputRef,
    MemRead,
    Mux,
    Not,
    ReduceOp,
    RegRef,
    Slice,
)
from repro.rtl.builder import ModuleBuilder, cat, mux, repeat, zext
from repro.rtl.module import Input, Memory, Module, Reg
from repro.rtl.verilog import to_verilog

__all__ = [
    "BinOp",
    "Case",
    "Concat",
    "Const",
    "Expr",
    "Input",
    "InputRef",
    "MemRead",
    "Memory",
    "Module",
    "ModuleBuilder",
    "Mux",
    "Not",
    "ReduceOp",
    "Reg",
    "RegRef",
    "Slice",
    "cat",
    "mux",
    "repeat",
    "to_verilog",
    "zext",
]
