"""SystemVerilog pretty-printer for RTL modules.

The emitted text is documentation-grade SystemVerilog in the styles the
paper compares: table memories become unpacked arrays (with an
``initial`` block for ROMs and a write process for config memories),
case-style registers become ``always_comb``/``unique case`` pairs.  It
is deliberately close to what the authors describe coding by hand.
"""

from __future__ import annotations

from repro.rtl.ast import (
    BinOp,
    Case,
    Concat,
    Const,
    Expr,
    InputRef,
    MemRead,
    Mux,
    Not,
    ReduceOp,
    RegRef,
    Slice,
)
from repro.rtl.module import Module

_BINOP_TOKENS = {
    "and": "&",
    "or": "|",
    "xor": "^",
    "add": "+",
    "sub": "-",
    "eq": "==",
    "lt": "<",
}


def to_verilog(module: Module) -> str:
    """Render a module as SystemVerilog text."""
    lines: list[str] = []
    ports = [f"  input  logic clk", f"  input  logic rst"]
    for port in module.inputs.values():
        ports.append(f"  input  logic [{port.width - 1}:0] {port.name}")
    for name, expr in module.outputs.items():
        ports.append(f"  output logic [{expr.width - 1}:0] {name}")
    lines.append(f"module {module.name} (")
    lines.append(",\n".join(ports))
    lines.append(");")
    lines.append("")

    for memory in module.memories.values():
        lines.append(
            f"  logic [{memory.width - 1}:0] {memory.name} "
            f"[0:{memory.depth - 1}];"
        )
        if memory.contents is not None:
            lines.append("  initial begin")
            for index, word in enumerate(memory.padded_contents()):
                lines.append(
                    f"    {memory.name}[{index}] = {memory.width}'d{word};"
                )
            lines.append("  end")
        else:
            port = memory.write_port
            lines.append("  always_ff @(posedge clk) begin")
            lines.append(f"    if ({port.enable}) begin")
            lines.append(f"      {memory.name}[{port.addr}] <= {port.data};")
            lines.append("    end")
            lines.append("  end")
        lines.append("")

    for reg in module.regs.values():
        lines.append(f"  logic [{reg.width - 1}:0] {reg.name};")
        lines.append(f"  logic [{reg.width - 1}:0] {reg.name}_next;")
        lines.append(f"  assign {reg.name}_next = {_emit(reg.next)};")
        if reg.reset_kind == "async":
            lines.append("  always_ff @(posedge clk or posedge rst) begin")
        else:
            lines.append("  always_ff @(posedge clk) begin")
        if reg.reset_kind == "none":
            lines.append(f"    {reg.name} <= {reg.name}_next;")
        else:
            lines.append(
                f"    if (rst) {reg.name} <= {reg.width}'d{reg.reset_value};"
            )
            lines.append(f"    else {reg.name} <= {reg.name}_next;")
        lines.append("  end")
        lines.append("")

    for name, expr in module.outputs.items():
        lines.append(f"  assign {name} = {_emit(expr)};")
    lines.append("")
    lines.append("endmodule")
    return "\n".join(lines)


def _emit(expr: Expr) -> str:
    if isinstance(expr, Const):
        return f"{expr.width}'d{expr.value}"
    if isinstance(expr, (InputRef, RegRef)):
        return expr.name
    if isinstance(expr, MemRead):
        return f"{expr.mem_name}[{_emit(expr.addr)}]"
    if isinstance(expr, Not):
        return f"~({_emit(expr.operand)})"
    if isinstance(expr, BinOp):
        token = _BINOP_TOKENS[expr.op]
        return f"({_emit(expr.left)} {token} {_emit(expr.right)})"
    if isinstance(expr, ReduceOp):
        return f"{_BINOP_TOKENS[expr.op]}({_emit(expr.operand)})"
    if isinstance(expr, Mux):
        return f"({_emit(expr.sel)} ? {_emit(expr.if1)} : {_emit(expr.if0)})"
    if isinstance(expr, Slice):
        if expr.width == 1:
            return f"{_emit(expr.operand)}[{expr.lsb}]"
        return f"{_emit(expr.operand)}[{expr.lsb + expr.width - 1}:{expr.lsb}]"
    if isinstance(expr, Concat):
        # Verilog concatenation is MSB-first.
        parts = [_emit(part) for part in reversed(expr.parts)]
        return "{" + ", ".join(parts) + "}"
    if isinstance(expr, Case):
        arms = " ".join(
            f"{label}: {_emit(value)};" for label, value in expr.arms
        )
        return (
            f"case_expr({_emit(expr.selector)}; {arms} "
            f"default: {_emit(expr.default)})"
        )
    raise TypeError(f"cannot emit {type(expr).__name__}")
