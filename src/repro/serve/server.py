"""The compile server: synthesis-as-a-service over plain HTTP.

PRs 2-5 made every compile a pure function of content hashes
(:func:`~repro.flow.cache.flow_fingerprint`); this server is the
payoff.  A long-running :class:`CompileServer` accepts JSON batches of
:class:`~repro.flow.parallel.CompileJob` envelopes, answers warm
fingerprints straight from a shared :class:`~repro.flow.cache.
CompileCache`, dedupes concurrent identical misses through
:class:`~repro.serve.singleflight.SingleFlight` (N clients submitting
the same fingerprint cost exactly one compile), executes the remainder
on a bounded worker pool, and streams per-job results back as NDJSON
in completion order -- each line carrying the fingerprint, cache-hit
and dedup flags, and the server-side wall time.

Endpoints (stdlib :mod:`http.server`, one thread per connection,
compiles bounded by the pool)::

    POST /compile            JSON batch in, NDJSON results out
    GET  /cache/<fp>         raw cache entry bytes (remote backends)
    PUT  /cache/<fp>         write-through store of one entry
    GET  /cache/snap/<key>   raw stage-snapshot bytes (prefix resume)
    PUT  /cache/snap/<key>   write-through store of one snapshot
    GET  /stats              JSON counters (cache, single-flight, pool)
    GET  /healthz            liveness probe

Results are byte-identical to local execution: contexts cross the
wire by the same pickle serialization ``compile_many``'s process pool
uses, and a cold compile runs the exact ``_execute_job`` code path the
pool workers run.

Trust model: job payloads and cache uploads are pickles (see
:mod:`repro.serve.protocol`); bind to loopback (the default) or a
network whose clients you would let run code on this machine.
"""

from __future__ import annotations

import json
import re
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.flow.cache import (
    ENTRY_KIND,
    SNAPSHOT_KIND,
    CompileCache,
    resolve_snapshot_policy,
)
from repro.flow.parallel import (
    CompileJob,
    CompileJobError,
    _execute_job,
    _job_fingerprint,
    _job_prefix_fingerprints,
    _resolve_pipeline,
)
from repro.check.spec import check_job
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    JobResult,
    ProtocolError,
    SpecCheckError,
    decode_batch,
    encode_result,
)
from repro.serve.singleflight import SingleFlight

#: Cache keys on the wire must look like fingerprints -- anything else
#: (path tricks, empty keys) is rejected before touching the cache.
_FINGERPRINT_RE = re.compile(r"[0-9a-f]{64}\Z")


class CompileServer:
    """A threaded compile service over one shared cache.

    Args:
        cache: the shared :class:`~repro.flow.cache.CompileCache`
            (thread-safe); ``None`` builds a memory-only one.
        workers: bound of the compile pool -- at most this many
            synthesis jobs execute concurrently across *all* requests
            (connections themselves are unbounded and cheap; warm
            lookups never occupy a pool slot for long).
        host: bind address; loopback by default (see the module
            docstring's trust model).
        port: bind port; ``0`` picks an ephemeral free port, read the
            result back from :attr:`url`.
        verbose: log one line per request to stdout.
        snapshots: the stage-snapshot policy
            (:func:`~repro.flow.cache.resolve_snapshot_policy` --
            ``None`` reads the environment, ``False`` disables).  With
            snapshots on, concurrent jobs sharing a pipeline prefix
            dedup through prefix flight keys: one leader compiles the
            prefix, the others resume from its snapshots
            (``prefix_resumes`` in ``/stats``).
    """

    def __init__(
        self,
        cache: CompileCache | None = None,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        snapshots=None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.cache = cache if cache is not None else CompileCache()
        self.workers = workers
        self.verbose = verbose
        self.snapshot_policy = resolve_snapshot_policy(snapshots)
        self.pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="compile"
        )
        self.flights = SingleFlight()
        self.started_at = time.time()
        self._lock = threading.Lock()
        self._counters = {  # guarded-by: _lock
            "requests": 0,
            "jobs": 0,
            "compiles": 0,
            "prefix_resumes": 0,
            "job_errors": 0,
            "spec_rejects": 0,
            "bad_requests": 0,
        }
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.app = self  # the handler reaches the service here
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------
    @property
    def url(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def serve_forever(self) -> None:
        """Block serving requests (the CLI entry point)."""
        self.httpd.serve_forever()

    def start(self) -> "CompileServer":
        """Serve on a daemon thread (tests, self-hosted replay);
        returns self for chaining."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="compile-server", daemon=True
        )
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop accepting requests and release the pool."""
        self.httpd.shutdown()
        self.httpd.server_close()
        self.pool.shutdown(wait=True)
        if self._thread is not None:
            self._thread.join(timeout=10.0)

    def __enter__(self) -> "CompileServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- accounting ---------------------------------------------------
    def _count(self, name: str, delta: int = 1) -> None:
        with self._lock:
            self._counters[name] += delta

    def log(self, message: str) -> None:
        if self.verbose:
            print(f"[serve] {message}", flush=True)

    def stats(self) -> dict:
        """The ``/stats`` payload: server, single-flight, and cache
        counters in one JSON dict."""
        with self._lock:
            counters = dict(self._counters)
        return {
            "protocol_version": PROTOCOL_VERSION,
            "uptime_s": time.time() - self.started_at,
            "workers": self.workers,
            "inflight": self.flights.inflight(),
            **counters,
            "singleflight": self.flights.stats.to_json(),
            "cache": self.cache.stats(),
        }

    # -- the job path -------------------------------------------------
    def run_job(self, job: CompileJob, index: int) -> JobResult:
        """Serve one job: cache, then single-flight, then compile.

        Never raises -- failures come back as error results so one bad
        job cannot poison the rest of a streamed batch.  ``job.key``
        is the wire index (set by the protocol decoder), so error
        records cross back re-keyable.
        """
        started = time.perf_counter()

        def done(**kwargs) -> JobResult:
            return JobResult(
                index=index,
                wall_time_s=time.perf_counter() - started,
                **kwargs,
            )

        # Statically wrong jobs are rejected before the pipeline is
        # even resolved: no cache probe, no pool slot, no compile --
        # they count under ``spec_rejects``, not ``compiles``.
        problems = [
            diagnostic
            for diagnostic in check_job(job)
            if diagnostic.severity == "error"
        ]
        if problems:
            self._count("spec_rejects")
            return done(
                fingerprint="", error=SpecCheckError(index, problems)
            )

        try:
            pipeline = _resolve_pipeline(job.pipeline)
            policy = self.snapshot_policy
            if policy.enabled and len(pipeline.passes) > 1:
                prefix_fps = _job_prefix_fingerprints(job, pipeline)
                fingerprint = prefix_fps[-1]
            else:
                prefix_fps = []
                fingerprint = _job_fingerprint(job, pipeline)
        except Exception as exc:
            self._count("job_errors")
            return done(
                fingerprint="",
                error=CompileJobError(
                    index, f"{type(exc).__name__}: {exc}"
                ),
            )

        ctx = self.cache.get(fingerprint)
        if ctx is not None:
            return done(fingerprint=fingerprint, ctx=ctx, cache_hit=True)

        def compute() -> tuple:
            # Re-check under the flight: a previous leader may have
            # published between our miss and winning the election.
            hit = self.cache.get(fingerprint)
            if hit is not None:
                return hit, True, False
            self.cache.inflight_begin()
            try:
                # Sharing the server cache makes the run resumable:
                # the deepest stage snapshot (a prefix leader's, or a
                # previous run's) is restored, and this run's own
                # snapshots and completed entry publish through it.
                fresh = _execute_job(
                    job, cache=self.cache, fingerprint=fingerprint,
                    snapshots=policy,
                )
            finally:
                self.cache.inflight_end()
            self._count("compiles")
            resumed = bool(fresh.meta.get("passes_skipped"))
            if resumed:
                self._count("prefix_resumes")
            return fresh, False, resumed

        try:
            outcome = self.flights.do(
                fingerprint, compute, prefix_keys=tuple(prefix_fps[:-1])
            )
        except CompileJobError as exc:
            self._count("job_errors")
            return done(fingerprint=fingerprint, error=exc)
        except Exception as exc:  # cache/backend I/O gone wrong
            self._count("job_errors")
            return done(
                fingerprint=fingerprint,
                error=CompileJobError(
                    index, f"{type(exc).__name__}: {exc}"
                ),
            )
        ctx, was_cached, _ = outcome.value
        if outcome.deduped:
            return done(fingerprint=fingerprint, ctx=ctx, deduped=True)
        return done(fingerprint=fingerprint, ctx=ctx, cache_hit=was_cached)


class _Handler(BaseHTTPRequestHandler):
    """Request plumbing; the service logic lives on the app."""

    # Per-request log lines go through the app's verbosity switch.
    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        self.app.log(f"{self.address_string()} {format % args}")

    @property
    def app(self) -> CompileServer:
        return self.server.app

    # -- helpers ------------------------------------------------------
    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _bad_request(self, message: str, status: int = 400) -> None:
        self.app._count("bad_requests")
        self._send_json({"error": message}, status=status)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length", 0) or 0)
        return self.rfile.read(length)

    def _cache_key(self, prefix: str) -> str | None:
        key = self.path[len(prefix):]
        if not _FINGERPRINT_RE.match(key):
            self._bad_request(f"{key!r} is not a fingerprint", status=404)
            return None
        return key

    # -- routes -------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        self.app._count("requests")
        if self.path == "/healthz":
            self._send_json({"ok": True})
        elif self.path == "/stats":
            self._send_json(self.app.stats())
        elif self.path.startswith("/cache/"):
            # The snapshot namespace nests under /cache/, so it must
            # route first; old servers 404 it, which remote backends
            # read as a best-effort miss.
            prefix, kind = self._cache_route()
            key = self._cache_key(prefix)
            if key is None:
                return
            blob = self.app.cache.export_blob(key, kind=kind)
            if blob is None:
                self._send_json({"error": "miss"}, status=404)
                return
            self.send_response(200)
            self.send_header("Content-Type", "application/octet-stream")
            self.send_header("Content-Length", str(len(blob)))
            self.end_headers()
            self.wfile.write(blob)
        else:
            self._bad_request(f"no such endpoint: {self.path}", status=404)

    def _cache_route(self) -> "tuple[str, str]":
        if self.path.startswith("/cache/snap/"):
            return "/cache/snap/", SNAPSHOT_KIND
        return "/cache/", ENTRY_KIND

    def do_PUT(self) -> None:  # noqa: N802 - stdlib casing
        self.app._count("requests")
        if not self.path.startswith("/cache/"):
            self._bad_request(f"no such endpoint: {self.path}", status=404)
            return
        prefix, kind = self._cache_route()
        key = self._cache_key(prefix)
        if key is None:
            return
        blob = self._read_body()
        if not blob or not self.app.cache.import_blob(key, blob, kind=kind):
            self._bad_request("rejected cache entry")
            return
        self._send_json({"stored": key})

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        self.app._count("requests")
        if self.path != "/compile":
            self._bad_request(f"no such endpoint: {self.path}", status=404)
            return
        try:
            data = json.loads(self._read_body())
            jobs = decode_batch(data)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._bad_request(f"request body is not JSON: {exc}")
            return
        except ProtocolError as exc:
            self._bad_request(str(exc))
            return
        self.app._count("jobs", len(jobs))
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        # One NDJSON line per job in *completion* order; the ids let
        # the client reassemble.  HTTP/1.0 close-delimits the body, so
        # lines stream to the client as they flush.
        futures = {
            self.app.pool.submit(self.app.run_job, job, i): i
            for i, job in enumerate(jobs)
        }
        for future in as_completed(futures):
            line = json.dumps(encode_result(future.result()))
            try:
                self.wfile.write(line.encode("utf-8") + b"\n")
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError):
                # The client hung up mid-stream; remaining jobs still
                # finish and warm the cache for whoever asks next.
                break
