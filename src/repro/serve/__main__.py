"""Command-line entry point: run a compile server.

Usage::

    python -m repro.serve                         # loopback, port 8731
    python -m repro.serve --port 0                # ephemeral port
    python -m repro.serve --cache-dir /ci/cache --workers 8
    python -m repro.serve --upstream http://ci-cache:8731

``--upstream`` layers this server's local cache directory in front of
one or more remote cache servers (read-through/write-through; several
upstreams shard by fingerprint prefix), so servers themselves can
front a bigger shared store.

The server binds loopback by default.  Job payloads and cache uploads
are pickles -- bind ``--host`` beyond loopback only on networks whose
clients you would let run code on this machine (the same trust the
on-disk cache already extends to its directory's writers).
"""

from __future__ import annotations

import argparse
import sys

from repro.flow.cache import CompileCache, LocalDirBackend
from repro.serve.backends import RemoteBackend, TieredBackend
from repro.serve.server import CompileServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve fingerprint-cached synthesis compiles over "
        "HTTP (see docs/cli.md).",
    )
    parser.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: %(default)s; see the trust note "
        "in the module help before exposing further)",
    )
    parser.add_argument(
        "--port", type=int, default=8731,
        help="bind port; 0 picks an ephemeral free port "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="on-disk compile cache backing the service "
        "(default: %(default)s)",
    )
    parser.add_argument(
        "--memory-only", action="store_true",
        help="no disk store: serve from the in-memory LRU only",
    )
    parser.add_argument(
        "--upstream", action="append", default=[], metavar="URL",
        help="shared cache server(s) behind this one; the local cache "
        "dir fronts them read-through/write-through, several upstreams "
        "shard by fingerprint prefix (repeatable)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="bound of the compile pool (default: %(default)s)",
    )
    parser.add_argument(
        "--max-memory-entries", type=int, default=512, metavar="N",
        help="in-memory LRU bound (default: %(default)s)",
    )
    parser.add_argument(
        "--no-snapshots", action="store_true",
        help="disable stage snapshots and prefix-resume (compiles are "
        "all-or-nothing, as before; REPRO_SNAPSHOTS=0 does the same)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="no per-request log lines",
    )
    return parser


def build_cache(args) -> CompileCache:
    """The service cache an argument set describes."""
    if args.memory_only:
        if args.upstream:
            return CompileCache(
                backend=RemoteBackend(args.upstream),
                max_memory_entries=args.max_memory_entries,
            )
        return CompileCache(max_memory_entries=args.max_memory_entries)
    if args.upstream:
        backend = TieredBackend(
            LocalDirBackend(args.cache_dir), RemoteBackend(args.upstream)
        )
        return CompileCache(
            backend=backend, max_memory_entries=args.max_memory_entries
        )
    return CompileCache(
        args.cache_dir, max_memory_entries=args.max_memory_entries
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.workers < 1:
        build_parser().error(f"--workers must be >= 1, got {args.workers}")
    server = CompileServer(
        cache=build_cache(args),
        workers=args.workers,
        host=args.host,
        port=args.port,
        verbose=not args.quiet,
        snapshots=False if args.no_snapshots else None,
    )
    where = (
        "memory-only"
        if args.memory_only and not args.upstream
        else args.cache_dir
    )
    if args.upstream:
        where += f" -> {', '.join(args.upstream)}"
    # The smoke tests and wrapper scripts grep this line for the
    # resolved (possibly ephemeral) URL; keep its shape stable.
    print(
        f"serving on {server.url} (workers={args.workers}, "
        f"cache={where})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
        server.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
