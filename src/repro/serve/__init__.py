"""``repro.serve`` -- synthesis-as-a-service over the flow cache.

The fingerprint machinery of :mod:`repro.flow` makes every compile a
pure function of content hashes; this package turns that into shared
infrastructure::

    python -m repro.serve --port 8731 --cache-dir .repro-cache

starts a long-running compile server: CI, developers, and many
concurrent clients submit :class:`~repro.flow.parallel.CompileJob`
batches over HTTP and share one warm cache.  Concurrent identical
jobs are deduped in flight (single-flight: N submitters, one
compile), results stream back per job with cache-hit flags and wall
times, and ``/stats`` exposes the whole service's counters as JSON.

Client side, any ``compile_many`` call can target a server::

    compile_many(jobs, cache=local_cache, server="http://ci-cache:8731")

(the local cache fronts the shared one read-through/write-through),
and every figure driver accepts ``--server URL``.  The cache itself
is pluggable: :class:`~repro.serve.backends.RemoteBackend` shards
entries across servers by fingerprint prefix, and
:class:`~repro.serve.backends.TieredBackend` layers a local directory
in front of it.

Measure it with the traffic-replay benchmark::

    python -m repro.expts replay --clients 4 --jobs-per-client 8

(N client threads x M sampled jobs, cold then warm; p50/p99 latency
and cache-hit rate land in the run store for ``repro.track diff``).
"""

from repro.serve.backends import RemoteBackend, TieredBackend
from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    JobResult,
    ProtocolError,
    SpecCheckError,
)
from repro.serve.server import CompileServer
from repro.serve.singleflight import FlightOutcome, SingleFlight

__all__ = [
    "CompileServer",
    "FlightOutcome",
    "JobResult",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteBackend",
    "ServeClient",
    "ServeError",
    "SingleFlight",
    "SpecCheckError",
    "TieredBackend",
]
