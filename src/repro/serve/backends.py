"""Shared cache backends: remote (sharded) and tiered layering.

The :class:`~repro.flow.cache.CacheBackend` protocol moves opaque
entry bytes; these implementations make a
:class:`~repro.flow.cache.CompileCache` *shared infrastructure*:

* :class:`RemoteBackend` speaks the compile server's
  ``GET/PUT /cache/<fingerprint>`` endpoints.  Given several server
  URLs it shards deterministically by fingerprint prefix, so a fleet
  of cache servers splits the keyspace without coordination (every
  client computes the same shard for the same key).
* :class:`TieredBackend` layers two backends read-through /
  write-through: loads try the near layer first and promote far hits
  into it; stores write both.  ``TieredBackend(LocalDirBackend(...),
  RemoteBackend(...))`` is the intended shape -- a developer's local
  ``.repro-cache/`` fronting the team's shared server, so only the
  first miss of a fingerprint ever crosses the network.

Failure posture: a shared cache is an accelerator, never a
correctness dependency.  Remote loads that fail for any reason read
as misses and remote stores are best-effort (counted, not raised), so
an unreachable cache server degrades a sweep to local compiling
instead of crashing it.
"""

from __future__ import annotations

import threading
import urllib.error
import urllib.request

from repro.flow.cache import (
    ENTRY_KIND,
    SNAPSHOT_KIND,
    CacheBackend,
    backend_load,
    backend_store,
)

#: Cache entries are a few hundred KB of pickle; a hung shared cache
#: must not stall a compile longer than the compile itself would take.
DEFAULT_TIMEOUT_S = 30.0


class RemoteBackend(CacheBackend):
    """A cache backend speaking compile-server ``/cache`` endpoints,
    sharded by fingerprint prefix across one or more servers.

    Args:
        urls: one server base URL or a sequence of them; with several,
            entry ``key`` lives on ``urls[int(key[:8], 16) % len]`` --
            fingerprints are uniform SHA-256 digests, so the prefix
            spreads load evenly and every client agrees on placement.
        timeout: socket timeout per cache operation, seconds.
    """

    def __init__(
        self,
        urls: "str | list[str] | tuple[str, ...]",
        timeout: float = DEFAULT_TIMEOUT_S,
    ) -> None:
        if isinstance(urls, str):
            urls = (urls,)
        self.urls = tuple(url.rstrip("/") for url in urls)
        if not self.urls:
            raise ValueError("RemoteBackend needs at least one server URL")
        self.timeout = timeout
        self._lock = threading.Lock()
        self.loads = 0  # guarded-by: _lock
        self.load_hits = 0  # guarded-by: _lock
        self.load_errors = 0  # guarded-by: _lock
        self.store_calls = 0  # guarded-by: _lock
        self.store_errors = 0  # guarded-by: _lock

    def shard(self, key: str) -> str:
        """The server URL entry ``key`` shards to."""
        return self.urls[int(key[:8], 16) % len(self.urls)]

    def _entry_url(self, key: str, kind: str = ENTRY_KIND) -> str:
        # Stage snapshots live under /cache/snap/; a pre-snapshot
        # server 404s the path, which reads as a best-effort miss.
        if kind == SNAPSHOT_KIND:
            return f"{self.shard(key)}/cache/snap/{key}"
        return f"{self.shard(key)}/cache/{key}"

    def load(self, key: str, kind: str = ENTRY_KIND) -> bytes | None:
        with self._lock:
            self.loads += 1
        try:
            with urllib.request.urlopen(
                self._entry_url(key, kind), timeout=self.timeout
            ) as response:
                blob = response.read()
        except urllib.error.HTTPError as exc:
            if exc.code != 404:
                with self._lock:
                    self.load_errors += 1
            return None
        except (OSError, urllib.error.URLError, ValueError):
            # Unreachable shard, bad URL, timeout: a miss, not a crash.
            with self._lock:
                self.load_errors += 1
            return None
        with self._lock:
            self.load_hits += 1
        return blob

    def store(self, key: str, blob: bytes, kind: str = ENTRY_KIND) -> None:
        with self._lock:
            self.store_calls += 1
        request = urllib.request.Request(
            self._entry_url(key, kind),
            data=blob,
            headers={"Content-Type": "application/octet-stream"},
            method="PUT",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout):
                pass
        except (OSError, urllib.error.URLError, ValueError):
            # Write-through is best-effort: losing a shared-store write
            # costs a future client one compile, never this one.
            with self._lock:
                self.store_errors += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "kind": "remote",
                "urls": list(self.urls),
                "loads": self.loads,
                "load_hits": self.load_hits,
                "load_errors": self.load_errors,
                "store_calls": self.store_calls,
                "store_errors": self.store_errors,
            }


class TieredBackend(CacheBackend):
    """Two backends layered read-through / write-through.

    Args:
        near: the fast front layer (typically a
            :class:`~repro.flow.cache.LocalDirBackend`); consulted
            first on loads, receives promoted far hits and all stores.
        far: the shared back layer (typically a
            :class:`RemoteBackend`); consulted on near misses, written
            through on stores.
    """

    def __init__(self, near: CacheBackend, far: CacheBackend) -> None:
        self.near = near
        self.far = far
        self._lock = threading.Lock()
        self.near_hits = 0  # guarded-by: _lock
        self.far_hits = 0  # guarded-by: _lock
        self.promotions = 0  # guarded-by: _lock

    def load(self, key: str, kind: str = ENTRY_KIND) -> bytes | None:
        # backend_load/backend_store pass ``kind`` through only to
        # layers that take it, so a tier composed over a kind-unaware
        # custom backend keeps working.
        blob = backend_load(self.near, key, kind=kind)
        if blob is not None:
            with self._lock:
                self.near_hits += 1
            return blob
        blob = backend_load(self.far, key, kind=kind)
        if blob is None:
            return None
        with self._lock:
            self.far_hits += 1
        try:
            backend_store(self.near, key, blob, kind=kind)
            with self._lock:
                self.promotions += 1
        except OSError:
            pass  # an unwritable near layer only costs repeat far reads
        return blob

    def store(self, key: str, blob: bytes, kind: str = ENTRY_KIND) -> None:
        backend_store(self.near, key, blob, kind=kind)
        backend_store(self.far, key, blob, kind=kind)

    def stats(self) -> dict:
        with self._lock:
            counters = {
                "near_hits": self.near_hits,
                "far_hits": self.far_hits,
                "promotions": self.promotions,
            }
        return {
            "kind": "tiered",
            **counters,
            "near": self.near.stats(),
            "far": self.far.stats(),
        }

    # GC passes through to the near layer when it supports one, so
    # ``track gc`` keeps working on a tiered developer cache.
    def sweep(self, max_bytes=None, max_age_days=None):
        sweeper = getattr(self.near, "sweep", None)
        if sweeper is None:
            from repro.flow.cache import SweepStats

            return SweepStats()
        return sweeper(max_bytes=max_bytes, max_age_days=max_age_days)
