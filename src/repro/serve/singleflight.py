"""Single-flight execution: N concurrent identical calls, one run.

The compile server dedupes in-flight work by
:func:`~repro.flow.cache.flow_fingerprint`: when many clients submit
the same compile concurrently (a CI fan-out warming one shared cache
is the motivating case), exactly one *leader* executes it and every
concurrent *follower* blocks on the leader's result instead of
burning a worker slot on a duplicate.  This is the classic
``singleflight`` primitive of Go's ``groupcache``, reduced to what a
threaded server needs.

Scope: single-flight spans *concurrent* calls only.  Once the leader
finishes, its table entry is dropped -- a later identical call starts
fresh (and is expected to hit the result cache instead; the server
always re-checks the cache inside the flight, so the leader/cache
composition never computes twice either).

Errors propagate to everyone: the leader's exception is re-raised in
each waiting follower, so a failing compile fails every submitter of
that fingerprint rather than hanging the followers.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, TypeVar

T = TypeVar("T")


class _Flight:
    """One in-flight computation: an event the followers wait on and
    the slots the leader fills before setting it."""

    __slots__ = ("done", "result", "error", "followers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result = None
        self.error: BaseException | None = None
        self.followers = 0


@dataclass(frozen=True)
class FlightOutcome:
    """What one :meth:`SingleFlight.do` call observed.

    ``leader`` is True for the caller that actually executed ``fn``;
    ``deduped`` for followers that rode an in-flight leader.  Exactly
    one of them is True per call.
    """

    value: object
    leader: bool

    @property
    def deduped(self) -> bool:
        return not self.leader


@dataclass
class FlightStats:
    """Thread-safe counters over one :class:`SingleFlight` table."""

    started: int = 0  # guarded-by: _lock
    deduped: int = 0  # guarded-by: _lock
    errors: int = 0  # guarded-by: _lock
    prefix_waits: int = 0  # guarded-by: _lock
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def to_json(self) -> dict:
        with self._lock:
            return {
                "started": self.started,
                "deduped": self.deduped,
                "errors": self.errors,
                "prefix_waits": self.prefix_waits,
            }


class SingleFlight:
    """A table of in-flight keyed computations with leader election.

    Usage::

        flight = SingleFlight()
        outcome = flight.do(fingerprint, compute)
        ctx = outcome.value          # computed once per concurrent burst
        if outcome.deduped: ...      # this caller rode a leader

    Thread-safe; ``fn`` runs outside the table lock, so flights of
    *different* keys execute concurrently.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[str, _Flight] = {}  # guarded-by: _lock
        self._prefixes: dict[str, _Flight] = {}  # guarded-by: _lock
        self.stats = FlightStats()

    def inflight(self) -> int:
        """How many distinct keys are currently executing."""
        with self._lock:
            return len(self._flights)

    def do(
        self,
        key: str,
        fn: Callable[[], T],
        prefix_keys: "tuple[str, ...]" = (),
    ) -> FlightOutcome:
        """Run ``fn`` once per concurrent burst of ``key``.

        The first caller of a key becomes the leader and executes
        ``fn``; callers arriving while the leader runs block and
        receive the leader's result (or re-raise its exception) without
        executing anything.

        ``prefix_keys`` extends the dedup to *shared pipeline
        prefixes* (shallowest first -- the server passes prefix
        fingerprints): a leader registers them alongside its own key,
        and a caller whose key misses but whose prefix matches an
        executing leader waits for that leader to finish **once**
        before leading itself -- by then the leader's stage snapshots
        are in the cache, so the resumed compile skips the shared
        prefix instead of racing the leader through it.  Waiters never
        hold a flight while waiting, so prefix waits cannot deadlock.

        Args:
            key: the dedup key (a flow fingerprint, for the server).
            fn: the computation; executed by leaders only.
            prefix_keys: keys of the pipeline's proper prefixes.

        Returns:
            A :class:`FlightOutcome` carrying the value and whether
            this caller led or was deduped.

        Raises:
            BaseException: whatever ``fn`` raised, in the leader *and*
                in every follower of that flight.
        """
        waited = False
        while True:
            leading = False
            owner: _Flight | None = None
            with self._lock:
                flight = self._flights.get(key)
                if flight is not None:
                    flight.followers += 1
                    with self.stats._lock:
                        self.stats.deduped += 1
                elif not waited:
                    # Deepest shared prefix first: the further along
                    # the owner is, the more of our pipeline its
                    # snapshots cover.
                    for prefix in reversed(prefix_keys):
                        owner = self._prefixes.get(prefix)
                        if owner is not None:
                            break
                if flight is None and owner is None:
                    flight = _Flight()
                    self._flights[key] = flight
                    for prefix in prefix_keys:
                        self._prefixes.setdefault(prefix, flight)
                    leading = True
                    with self.stats._lock:
                        self.stats.started += 1
            if owner is not None:
                # Wait at most once (an executing leader never waits,
                # so there is no cycle to deadlock on), then re-enter:
                # the owner may have published exactly our key, in
                # which case the cache re-check inside ``fn`` wins.
                with self.stats._lock:
                    self.stats.prefix_waits += 1
                owner.done.wait()
                waited = True
                continue
            break
        if leading:
            try:
                flight.result = fn()
            except BaseException as exc:
                flight.error = exc
                with self.stats._lock:
                    self.stats.errors += 1
                raise
            finally:
                # Drop the table entries *before* waking followers: a
                # caller arriving after completion must start a fresh
                # flight (and normally hits the result cache instead).
                with self._lock:
                    del self._flights[key]
                    for prefix in prefix_keys:
                        if self._prefixes.get(prefix) is flight:
                            del self._prefixes[prefix]
                flight.done.set()
            return FlightOutcome(flight.result, leader=True)

        flight.done.wait()
        if flight.error is not None:
            raise flight.error
        return FlightOutcome(flight.result, leader=False)
