"""The compile server's client: batch submission over HTTP.

:class:`ServeClient` is what :func:`repro.flow.parallel.compile_many`
targets when given ``server=``: jobs are encoded through
:mod:`repro.serve.protocol`, POSTed as one batch, and the NDJSON
response stream is reassembled into completed
:class:`~repro.flow.core.FlowContext` objects in submission order --
byte-identical to local execution, because contexts cross the wire by
the same pickle serialization the local process pool uses.

Failure semantics mirror ``compile_many`` exactly: the earliest
failing job in submission order raises a re-keyed
:class:`~repro.flow.parallel.CompileJobError` (pass records and all),
so swapping ``--server`` in and out never changes error behaviour.
Transport problems (server down, protocol mismatch, truncated stream)
raise :class:`ServeError` instead -- a network failure must never
masquerade as a compile failure.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import TYPE_CHECKING, Sequence

from repro.flow.core import FlowError
from repro.flow.parallel import CompileJob, CompileJobError
from repro.serve.protocol import (
    JobResult,
    ProtocolError,
    SpecCheckError,
    decode_result,
    encode_batch,
)

if TYPE_CHECKING:
    from repro.flow.core import FlowContext

#: Compiles are slow; transport reads must outlive the slowest job of
#: a batch, not a socket round-trip.
DEFAULT_TIMEOUT_S = 600.0


class ServeError(FlowError):
    """A transport or protocol failure talking to a compile server
    (distinct from a job that *compiled* and failed, which raises
    :class:`~repro.flow.parallel.CompileJobError`)."""


class ServeClient:
    """A client of one compile server.

    Args:
        url: the server base URL (``http://127.0.0.1:8731``).
        timeout: socket timeout per request, seconds.
    """

    def __init__(self, url: str, timeout: float = DEFAULT_TIMEOUT_S) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ServeClient {self.url}>"

    # -- plumbing -----------------------------------------------------
    def _get_json(self, path: str) -> dict:
        try:
            with urllib.request.urlopen(
                f"{self.url}{path}", timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except (OSError, urllib.error.URLError, json.JSONDecodeError) as exc:
            raise ServeError(f"GET {path} against {self.url}: {exc}") from exc

    def stats(self) -> dict:
        """The server's ``/stats`` counters."""
        return self._get_json("/stats")

    def healthy(self) -> bool:
        """Liveness: does ``/healthz`` answer?"""
        try:
            return bool(self._get_json("/healthz").get("ok"))
        except ServeError:
            return False

    # -- compiling ----------------------------------------------------
    def compile_detailed(
        self, jobs: Sequence[CompileJob]
    ) -> list[JobResult]:
        """Submit one batch; per-job outcomes in submission order.

        This is the instrumented surface the replay benchmark reads:
        each :class:`~repro.serve.protocol.JobResult` carries the
        fingerprint, cache-hit/dedup flags and server wall time, and
        job *failures* come back as results (``result.error``) rather
        than raising, so a benchmark can count errors without dying.

        Raises:
            ServeError: transport failure, non-200 response, protocol
                mismatch, or a stream missing results.
            FlowError: a job whose pipeline cannot be encoded.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        body = json.dumps(encode_batch(jobs)).encode("utf-8")
        request = urllib.request.Request(
            f"{self.url}/compile",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        results: dict[int, JobResult] = {}
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                for raw in response:
                    line = raw.strip()
                    if not line:
                        continue
                    result = decode_result(json.loads(line))
                    results[result.index] = result
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8")).get(
                    "error", ""
                )
            except Exception:
                pass
            raise ServeError(
                f"POST /compile against {self.url}: HTTP {exc.code}"
                + (f" ({detail})" if detail else "")
            ) from exc
        except (OSError, urllib.error.URLError) as exc:
            raise ServeError(
                f"POST /compile against {self.url}: {exc}"
            ) from exc
        except (json.JSONDecodeError, ProtocolError) as exc:
            raise ServeError(
                f"undecodable response from {self.url}: {exc}"
            ) from exc
        missing = [i for i in range(len(jobs)) if i not in results]
        if missing:
            shown = ", ".join(str(i) for i in missing[:5])
            if len(missing) > 5:
                shown += ", ..."
            raise ServeError(
                f"{self.url} returned {len(results)} of {len(jobs)} "
                f"results (missing wire ids {shown})"
            )
        return [results[i] for i in range(len(jobs))]

    def compile(
        self, jobs: Sequence[CompileJob]
    ) -> "dict[object, FlowContext]":
        """Submit one batch; ``{job.key: completed context}`` in
        submission order, exactly like a local ``compile_many``.

        Raises:
            ServeError: transport/protocol failure.
            SpecCheckError: the server's static spec check rejected a
                job before compiling anything; ``.diagnostics`` carries
                the findings.
            CompileJobError: a job failed; the earliest in submission
                order raises, re-keyed from the wire index back to the
                job's real key.
        """
        jobs = list(jobs)
        detailed = self.compile_detailed(jobs)
        for job, result in zip(jobs, detailed):
            if result.error is None:
                continue
            if isinstance(result.error, SpecCheckError):
                raise SpecCheckError(
                    job.key, result.error.diagnostics, result.error.records
                )
            raise CompileJobError(
                job.key, result.error.error, result.error.records
            )
        return {
            job.key: result.ctx for job, result in zip(jobs, detailed)
        }
