"""The compile server's wire format: jobs and results as JSON lines.

A batch request is one JSON object ``{"jobs": [...]}``; each job is a
JSON envelope whose readable fields (pipeline spec, seed, bindings,
library name) mirror :class:`~repro.flow.parallel.CompileJob`, while
the design inputs themselves (controller IR / RTL module / AIG /
annotations / a non-registered library object) ride as one
base64-encoded pickle blob -- the same serialization
:func:`~repro.flow.parallel.compile_many` already trusts across its
process pool, wrapped so the envelope stays a valid JSON document.

Jobs are keyed *positionally* on the wire (``id`` = index in the
batch): a client's real job keys can be arbitrary hashables (the
figure drivers use tuples), which JSON cannot carry faithfully, so
the client keeps the key mapping and the server echoes indices.

The response is NDJSON: one JSON object per job, written in
*completion* order as the pool finishes them, each carrying the
fingerprint, a cache-hit flag, a single-flight dedup flag, the
server-side wall time, and either the completed context (base64
pickle -- byte-identical to what a local compile would produce) or
the error.

Trust model: pickles execute what their bytes describe.  The server
deserializes job payloads and the client deserializes result
contexts, so both ends must trust each other exactly as much as the
on-disk cache trusts its writers (see :mod:`repro.flow.cache`); bind
the server to loopback or a network you control.
"""

from __future__ import annotations

import base64
import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.check.diagnostics import Diagnostic
from repro.flow.cache import UNPICKLE_ERRORS
from repro.flow.core import FlowError
from repro.flow.manager import PassManager
from repro.flow.parallel import CompileJob, CompileJobError

if TYPE_CHECKING:
    from repro.flow.core import FlowContext

#: Bump on incompatible wire changes; both ends send it and refuse
#: mismatches loudly instead of mis-decoding each other.
PROTOCOL_VERSION = 1


class ProtocolError(FlowError):
    """A malformed or version-incompatible wire message."""


class SpecCheckError(CompileJobError):
    """A job the static spec check rejected before any compile ran.

    Distinct from a runtime :class:`CompileJobError`: the server never
    resolved the pipeline, never touched the cache, and never consumed
    a compile -- the job was *statically* wrong for its inputs.
    Carries the full :class:`~repro.check.diagnostics.Diagnostic` list
    so the client can render codes and suggestions, not just a string.
    """

    def __init__(self, key, diagnostics, records=()) -> None:
        self.diagnostics = list(diagnostics)
        shown = "; ".join(str(d) for d in self.diagnostics[:3])
        if len(self.diagnostics) > 3:
            shown += f" (+{len(self.diagnostics) - 3} more)"
        super().__init__(key, f"rejected by spec check: {shown}", records)

    def __reduce__(self):
        return (SpecCheckError, (self.key, self.diagnostics, self.records))


def _b64(obj) -> str:
    return base64.b64encode(
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")


def _unb64(text: str):
    try:
        return pickle.loads(base64.b64decode(text.encode("ascii")))
    except (ValueError, *UNPICKLE_ERRORS) as exc:
        raise ProtocolError(f"undecodable payload: {exc}") from exc


def encode_job(job: CompileJob, index: int) -> dict:
    """One job as a JSON-safe envelope (see the module docstring).

    The pipeline travels as its *rendered spec string* -- the same
    canonical form the fingerprint hashes -- so a pipeline whose
    parameters cannot round-trip through spec syntax raises here
    rather than compiling something subtly different server-side.

    Args:
        job: the compile job; ``job.key`` stays client-side.
        index: the job's position in the batch (the wire ``id``).

    Raises:
        FlowError: an unparseable spec or spec-unrepresentable
            pipeline.
    """
    if isinstance(job.pipeline, str):
        spec = PassManager.parse(job.pipeline).spec()
    else:
        spec = job.pipeline.spec()
    library_name = None if job.library is None else job.library.name
    return {
        "id": index,
        "pipeline": spec,
        "seed": job.seed,
        "bindings": job.bindings,
        "library": library_name,
        "payload": _b64(
            {
                "ctrl": job.ctrl,
                "module": job.module,
                "aig": job.aig,
                "annotations": tuple(job.annotations),
                "library": job.library,
            }
        ),
    }


def decode_job(data: dict) -> tuple[int, CompileJob]:
    """Rebuild a (wire id, job) pair from :func:`encode_job` output.

    The rebuilt job's ``key`` is the wire id; the caller re-maps it to
    the client's real key.

    Raises:
        ProtocolError: missing fields or an undecodable payload.
    """
    try:
        index = int(data["id"])
        payload = _unb64(data["payload"])
        return index, CompileJob(
            key=index,
            pipeline=str(data["pipeline"]),
            ctrl=payload.get("ctrl"),
            module=payload.get("module"),
            aig=payload.get("aig"),
            annotations=tuple(payload.get("annotations", ())),
            bindings=data.get("bindings"),
            library=payload.get("library"),
            seed=int(data.get("seed", 2011)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed job envelope: {exc}") from exc


def encode_batch(jobs: list[CompileJob]) -> dict:
    """The request body for one ``POST /compile``."""
    return {
        "version": PROTOCOL_VERSION,
        "jobs": [encode_job(job, i) for i, job in enumerate(jobs)],
    }


def decode_batch(data: dict) -> list[CompileJob]:
    """Rebuild the jobs of one request body, in wire-id order.

    Raises:
        ProtocolError: version mismatch, duplicate or non-contiguous
            wire ids, or a malformed job.
    """
    if not isinstance(data, dict):
        raise ProtocolError("request body must be a JSON object")
    version = data.get("version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version {version!r} != {PROTOCOL_VERSION} "
            f"(client and server checkouts disagree)"
        )
    raw = data.get("jobs")
    if not isinstance(raw, list):
        raise ProtocolError("request body carries no job list")
    decoded = dict(decode_job(item) for item in raw)
    if sorted(decoded) != list(range(len(raw))):
        raise ProtocolError("job ids must be the batch indices 0..N-1")
    return [decoded[i] for i in range(len(raw))]


@dataclass(frozen=True)
class JobResult:
    """One job's outcome as both ends see it.

    Exactly one of ``ctx``/``error`` is set.  ``cache_hit`` means the
    server answered from its cache (memory or backend); ``deduped``
    means this job rode another in-flight identical compile
    (single-flight) instead of executing; ``wall_time_s`` is the
    server-side handling time of this job.
    """

    index: int
    fingerprint: str
    ctx: "FlowContext | None" = None
    error: CompileJobError | None = None
    cache_hit: bool = False
    deduped: bool = False
    wall_time_s: float = 0.0


def encode_result(result: JobResult) -> dict:
    """One NDJSON response line."""
    line = {
        "id": result.index,
        "fingerprint": result.fingerprint,
        "cache_hit": result.cache_hit,
        "deduped": result.deduped,
        "wall_time_s": result.wall_time_s,
    }
    if result.error is not None:
        error_line = {
            "message": str(result.error),
            "payload": _b64(result.error),
        }
        if isinstance(result.error, SpecCheckError):
            # Diagnostics also travel as plain JSON so a client can
            # render codes and suggestions without unpickling anything.
            error_line["kind"] = "spec_check"
            error_line["diagnostics"] = [
                diagnostic.to_json()
                for diagnostic in result.error.diagnostics
            ]
        line["error"] = error_line
    else:
        line["ctx"] = _b64(result.ctx)
    return line


def decode_result(line: dict) -> JobResult:
    """Rebuild a :class:`JobResult` from one response line.

    A result whose error payload does not unpickle client-side (e.g.
    the server saw an exception type this checkout lacks) degrades to
    a generic :class:`CompileJobError` carrying the server's rendered
    message instead of failing the decode.

    Raises:
        ProtocolError: missing fields or an undecodable context.
    """
    try:
        index = int(line["id"])
        fingerprint = str(line["fingerprint"])
        error_data = line.get("error")
        if error_data is not None:
            try:
                error = _unb64(error_data["payload"])
            except ProtocolError:
                error = None
            if not isinstance(error, CompileJobError):
                if error_data.get("kind") == "spec_check":
                    error = SpecCheckError(
                        index,
                        [
                            Diagnostic.from_json(item)
                            for item in error_data.get("diagnostics", [])
                        ],
                    )
                else:
                    error = CompileJobError(
                        index,
                        str(error_data.get("message", "remote failure")),
                    )
            return JobResult(
                index=index,
                fingerprint=fingerprint,
                error=error,
                cache_hit=bool(line.get("cache_hit", False)),
                deduped=bool(line.get("deduped", False)),
                wall_time_s=float(line.get("wall_time_s", 0.0)),
            )
        return JobResult(
            index=index,
            fingerprint=fingerprint,
            ctx=_unb64(line["ctx"]),
            cache_hit=bool(line.get("cache_hit", False)),
            deduped=bool(line.get("deduped", False)),
            wall_time_s=float(line.get("wall_time_s", 0.0)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed result line: {exc}") from exc
