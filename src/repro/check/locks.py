"""Lock-discipline analyzer: ``# guarded-by:`` annotations, enforced.

The serve stack and the compile cache share mutable counters across
threads, each guarded by a lock the surrounding code promises to hold.
That promise lives in comments -- which rot.  This analyzer makes the
comments checkable:

* a field initialised with a trailing (or immediately preceding)
  ``# guarded-by: <lock>`` comment -- in ``__init__`` for instance
  fields, in the class body for dataclass fields -- is *guarded*;
* every ``self.<field>`` read or write in any other method must occur
  lexically inside a ``with self.<lock>:`` (or ``with <lock>:``)
  block, else CHK601 fires;
* a field annotated with two different locks is CHK602;
* a deliberate unguarded access (a racy-but-monotonic fast path, say)
  is suppressed with ``# unguarded-ok`` on the access line.

The analysis is lexical, not a happens-before proof: it will not catch
a lock released early or an alias smuggled out, and nested functions
are assumed to run with no locks held (the conservative direction).
It catches the common regression -- a new method touching a counter
without taking the lock -- which is the one that actually happens.

Method *calls* on guarded fields' parents and non-``self`` bases
(``outcome.deduped``) are out of scope; attribute chains like
``self.stats.deduped`` resolve through the field name only when every
annotation in the scanned set agrees on a single lock for that name.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path

from repro.check.diagnostics import Diagnostic

_GUARD_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")
_SUPPRESS_RE = re.compile(r"#\s*unguarded-ok\b")


def default_lock_paths() -> "list[Path]":
    """The concurrency-sensitive modules the repo lints by default:
    every serve module plus the compile cache."""
    package = Path(__file__).resolve().parents[1]
    paths = sorted((package / "serve").glob("*.py"))
    paths.append(package / "flow" / "cache.py")
    return paths


def _comment_lines(source: str) -> "tuple[dict[int, str], set[int], set[int]]":
    """Map line -> lock name for ``guarded-by`` comments, the set of
    lines whose comment stands alone (annotating the *next* line, not
    trailing the statement it shares a line with), and the set of
    ``unguarded-ok`` suppression lines."""
    guards: dict[int, str] = {}
    standalone: set[int] = set()
    suppressed: set[int] = set()
    reader = io.StringIO(source).readline
    for token in tokenize.generate_tokens(reader):
        if token.type != tokenize.COMMENT:
            continue
        match = _GUARD_RE.search(token.string)
        if match:
            line = token.start[0]
            guards[line] = match.group(1)
            if token.line[: token.start[1]].strip() == "":
                standalone.add(line)
        if _SUPPRESS_RE.search(token.string):
            suppressed.add(token.start[0])
    return guards, standalone, suppressed


def _assigned_names(stmt) -> "list[tuple[str, bool]]":
    """Names a class-body or ``__init__`` statement assigns, as
    (field, is_self_attribute) pairs."""
    targets = []
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        targets = [stmt.target]
    names: list[tuple[str, bool]] = []
    for target in targets:
        if isinstance(target, ast.Name):
            names.append((target.id, False))
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ) and target.value.id == "self":
            names.append((target.attr, True))
    return names


class _ClassGuards:
    """The guarded fields of one class: field name -> lock name."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.fields: dict[str, str] = {}


def _collect_class(
    node: ast.ClassDef,
    guards: "dict[int, str]",
    standalone: "set[int]",
    path: Path,
    diagnostics: "list[Diagnostic]",
) -> _ClassGuards:
    info = _ClassGuards(node.name)

    def note(field: str, lock: str, lineno: int) -> None:
        known = info.fields.get(field)
        if known is not None and known != lock:
            diagnostics.append(
                Diagnostic(
                    code="CHK602",
                    severity="error",
                    location=f"{path.name}:{lineno}",
                    message=(
                        f"field {field!r} of {info.name} annotated "
                        f"guarded-by {lock!r} but already guarded-by "
                        f"{known!r}"
                    ),
                )
            )
            return
        info.fields[field] = lock

    def scan(stmt) -> None:
        lock = guards.get(stmt.lineno)
        if lock is None and stmt.lineno - 1 in standalone:
            lock = guards.get(stmt.lineno - 1)
        if lock is None:
            return
        for field, _ in _assigned_names(stmt):
            note(field, lock, stmt.lineno)

    for stmt in node.body:
        scan(stmt)
        if (
            isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name == "__init__"
        ):
            for inner in ast.walk(stmt):
                if isinstance(inner, (ast.Assign, ast.AnnAssign)):
                    scan(inner)
    return info


def _lock_names(with_node) -> "set[str]":
    """Lock names a ``with`` statement acquires: ``with self._lock:``
    and ``with lock:`` both count, by terminal name."""
    names: set[str] = set()
    for item in with_node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Attribute):
            names.add(expr.attr)
        elif isinstance(expr, ast.Name):
            names.add(expr.id)
    return names


def _check_method(
    func,
    info: _ClassGuards,
    shared: "dict[str, str]",
    suppressed: "set[int]",
    path: Path,
    diagnostics: "list[Diagnostic]",
) -> None:
    def guard_for(attribute: ast.Attribute) -> "str | None":
        base = attribute.value
        if isinstance(base, ast.Name) and base.id == "self":
            return info.fields.get(attribute.attr)
        # Deeper self-rooted chains (self.stats.deduped): resolve by
        # field name, but only through unambiguous annotations.
        root = base
        while isinstance(root, ast.Attribute):
            root = root.value
        if isinstance(root, ast.Name) and root.id == "self":
            return shared.get(attribute.attr)
        return None

    def visit(node, held: "frozenset[str]", skip_attrs: "set[int]") -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = held | _lock_names(node)
            for item in node.items:
                visit(item.context_expr, held, skip_attrs)
                if item.optional_vars is not None:
                    visit(item.optional_vars, held, skip_attrs)
            for stmt in node.body:
                visit(stmt, inner, skip_attrs)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A nested def may run after the enclosing with exits.
            for stmt in node.body:
                visit(stmt, frozenset(), skip_attrs)
            return
        if isinstance(node, ast.Lambda):
            visit(node.body, frozenset(), skip_attrs)
            return
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            # self._lock.acquire(), self._memory.move_to_end(...):
            # the *call* is not a field access, but its receiver is --
            # check the receiver chain, skip only the method name.
            skip_attrs = skip_attrs | {id(node.func)}
        if (
            isinstance(node, ast.Attribute)
            and id(node) not in skip_attrs
            and node.lineno not in suppressed
        ):
            lock = guard_for(node)
            if lock is not None and lock not in held:
                diagnostics.append(
                    Diagnostic(
                        code="CHK601",
                        severity="error",
                        location=f"{path.name}:{node.lineno}",
                        message=(
                            f"field {node.attr!r} is guarded by "
                            f"{lock!r} but accessed without holding it"
                        ),
                        suggestion=f"wrap the access in 'with self.{lock}:'",
                    )
                )
        for child in ast.iter_child_nodes(node):
            visit(child, held, skip_attrs)

    for stmt in func.body:
        visit(stmt, frozenset(), set())


def check_lock_discipline(paths=None) -> "list[Diagnostic]":
    """Run the lock-discipline lint over ``paths`` (default: the serve
    stack and the compile cache) and return the findings."""
    if paths is None:
        paths = default_lock_paths()
    paths = [Path(p) for p in paths]

    diagnostics: list[Diagnostic] = []
    parsed = []
    for path in paths:
        source = path.read_text()
        guards, standalone, suppressed = _comment_lines(source)
        tree = ast.parse(source, filename=str(path))
        parsed.append((path, tree, guards, standalone, suppressed))

    # Pass 1: every class's guarded fields, plus the cross-file map for
    # attribute chains (a field name maps through only when all
    # annotations agree on its lock).
    classes: list[tuple[Path, ast.ClassDef, _ClassGuards, set[int]]] = []
    seen: dict[str, set[str]] = {}
    for path, tree, guards, standalone, suppressed in parsed:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                info = _collect_class(
                    node, guards, standalone, path, diagnostics
                )
                classes.append((path, node, info, suppressed))
                for field, lock in info.fields.items():
                    seen.setdefault(field, set()).add(lock)
    shared = {
        field: next(iter(locks))
        for field, locks in seen.items()
        if len(locks) == 1
    }

    # Pass 2: check every method body except __init__ (construction
    # happens-before any other thread can hold a reference).  Classes
    # with no guarded fields of their own still get checked when a
    # cross-class chain (self.stats.deduped) could resolve.
    for path, node, info, suppressed in classes:
        if not info.fields and not shared:
            continue
        for stmt in node.body:
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if stmt.name == "__init__":
                continue
            _check_method(stmt, info, shared, suppressed, path, diagnostics)
    return diagnostics
