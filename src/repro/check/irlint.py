"""IR and netlist linters: structural checks on controller IRs, AIGs,
and mapped netlists.

The paper's controller IRs are *data* a generator emits -- FSM tables,
microcode images, dispatch tables -- and data can be malformed in ways
no type system catches: a state no input ever reaches, a jump into
unwritten microcode, a netlist net with two drivers.  These linters
walk the structures and report
:class:`~repro.check.diagnostics.Diagnostic` findings:

* :func:`lint_fsm` -- unreachable states (CHK201), trap states
  (CHK202);
* :func:`lint_transitions` -- sparse cube-form transition lists:
  overlapping cubes with conflicting next states (CHK203), uncovered
  (state, input) combinations (CHK204);
* :func:`lint_program` / :func:`lint_microcode` -- assembly failures
  (CHK300), out-of-program jump targets (CHK301), fall-through past
  the end (CHK302), field-width violations (CHK303), unreachable
  addresses (CHK304), undefined dispatch labels (CHK305);
* :func:`lint_aig` -- structural invariants (CHK401), dangling AND
  nodes (CHK402);
* :func:`lint_netlist` -- combinational loops (CHK501), multiple
  drivers (CHK502), floating input nets (CHK503);
* :func:`lint_ir` -- dispatch on the ControllerIR ``kind`` tag.

Reachability warnings are deliberate *warnings*, not errors: an
unreachable state is exactly what the paper's Manual flow pins modes
to eliminate, so shipping one is suspicious but not wrong.
"""

from __future__ import annotations

from repro.check.diagnostics import Diagnostic

#: Enumerating input words is exponential in input bits; transition
#: coverage beyond this is skipped (cube-form tables this wide should
#: be checked symbolically, which these fixtures never need).
MAX_COVERAGE_BITS = 16


def _diag(code, severity, location, message, suggestion=None) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=severity,
        location=location,
        message=message,
        suggestion=suggestion,
    )


# ---------------------------------------------------------------------
# FSM specs
# ---------------------------------------------------------------------
def lint_fsm(spec) -> "list[Diagnostic]":
    """Lint an :class:`~repro.controllers.fsm.FsmSpec`: states no input
    sequence reaches from reset (CHK201) and trap states that can
    never be left (CHK202)."""
    diagnostics: list[Diagnostic] = []
    where = f"fsm {spec.name!r}"
    reachable = set(spec.reachable_states())
    for state in range(spec.num_states):
        if state not in reachable:
            diagnostics.append(
                _diag(
                    "CHK201",
                    "warning",
                    f"{where} state {state}",
                    f"state {state} is unreachable from reset state "
                    f"{spec.reset_state}",
                    suggestion=(
                        "drop the state or annotate the register so "
                        "state folding can remove it"
                    ),
                )
            )
    for state in range(spec.num_states):
        if state not in reachable:
            continue  # already flagged; a trap you cannot enter is moot
        if all(target == state for target in spec.next_state[state]):
            diagnostics.append(
                _diag(
                    "CHK202",
                    "warning",
                    f"{where} state {state}",
                    f"state {state} is a trap: every input transitions "
                    f"back to it",
                )
            )
    return diagnostics


def _cubes_intersect(a: str, b: str) -> bool:
    return all(
        ca == "-" or cb == "-" or ca == cb for ca, cb in zip(a, b)
    )


def _cube_matches(cube: str, word: int, bits: int) -> bool:
    for position in range(bits):
        bit = (word >> position) & 1
        want = cube[bits - 1 - position]  # cube[0] is the MSB
        if want != "-" and int(want) != bit:
            return False
    return True


def lint_transitions(
    num_states: int, num_input_bits: int, rows
) -> "list[Diagnostic]":
    """Lint a sparse cube-form transition table.

    This is the tabular IR a generator emits before densification:
    ``rows`` is a sequence of ``(state, cube, next_state)`` where
    ``cube`` is a string over ``0``/``1``/``-`` (MSB first,
    ``num_input_bits`` long).  Reports rows whose cubes overlap with
    *conflicting* next states (CHK203 -- the realized FSM would be
    priority-dependent) and (state, input) combinations no row covers
    (CHK204 -- the realized FSM's behaviour there is undefined).

    Raises:
        ValueError: a malformed row (bad cube alphabet or length,
            state out of range) -- caller errors, not lint findings.
    """
    diagnostics: list[Diagnostic] = []
    by_state: dict[int, list[tuple[int, str, int]]] = {}
    for index, (state, cube, target) in enumerate(rows):
        if not 0 <= state < num_states or not 0 <= target < num_states:
            raise ValueError(
                f"row {index}: state {state} -> {target} out of range "
                f"for {num_states} states"
            )
        if len(cube) != num_input_bits or any(
            ch not in "01-" for ch in cube
        ):
            raise ValueError(
                f"row {index}: cube {cube!r} is not a "
                f"{num_input_bits}-bit pattern over 0/1/-"
            )
        by_state.setdefault(state, []).append((index, cube, target))
    for state in range(num_states):
        entries = by_state.get(state, [])
        for position, (index_a, cube_a, target_a) in enumerate(entries):
            for index_b, cube_b, target_b in entries[position + 1:]:
                if target_a != target_b and _cubes_intersect(cube_a, cube_b):
                    diagnostics.append(
                        _diag(
                            "CHK203",
                            "error",
                            f"state {state} rows {index_a} and {index_b}",
                            f"cubes {cube_a!r} and {cube_b!r} overlap but "
                            f"disagree on the next state "
                            f"({target_a} vs {target_b})",
                        )
                    )
        if num_input_bits > MAX_COVERAGE_BITS:
            continue
        uncovered = [
            word
            for word in range(1 << num_input_bits)
            if not any(
                _cube_matches(cube, word, num_input_bits)
                for _, cube, _ in entries
            )
        ]
        if uncovered:
            shown = ", ".join(
                format(word, f"0{num_input_bits}b") for word in uncovered[:4]
            )
            more = "" if len(uncovered) <= 4 else ", ..."
            diagnostics.append(
                _diag(
                    "CHK204",
                    "error",
                    f"state {state}",
                    f"{len(uncovered)} input combination(s) covered by no "
                    f"transition row ({shown}{more})",
                    suggestion="add a default (all '-') row for the state",
                )
            )
    return diagnostics


# ---------------------------------------------------------------------
# Microcode
# ---------------------------------------------------------------------
def lint_program(program) -> "list[Diagnostic]":
    """Lint a symbolic :class:`~repro.controllers.assembler.Program`
    by assembling it (CHK300 when that fails) and linting the image."""
    try:
        assembled = program.assemble()
    except (ValueError, KeyError) as exc:
        return [
            _diag(
                "CHK300",
                "error",
                f"program ({len(program.instructions)} instructions)",
                f"program fails to assemble: {exc}",
            )
        ]
    return lint_microcode(assembled)


def lint_microcode(program) -> "list[Diagnostic]":
    """Lint an :class:`~repro.controllers.assembler.AssembledProgram`:
    jump targets, widths, fall-through, reachability, dispatch labels.
    """
    from repro.controllers.microcode import SeqOp

    diagnostics: list[Diagnostic] = []
    length = program.length
    depth = program.depth

    if length > depth:
        diagnostics.append(
            _diag(
                "CHK303",
                "error",
                "program",
                f"{length} instructions exceed the {program.addr_bits}-bit "
                f"address space ({depth} words)",
            )
        )
    if len(program.seq_words) != length:
        diagnostics.append(
            _diag(
                "CHK303",
                "error",
                "program",
                f"{len(program.seq_words)} sequencer words for "
                f"{length} control words",
            )
        )

    control_limit = 1 << program.format.width
    cond_limit = 1 << program.cond_bits
    for addr, control in enumerate(program.control_words):
        if not 0 <= control < control_limit:
            diagnostics.append(
                _diag(
                    "CHK303",
                    "error",
                    f"addr {addr}",
                    f"control word {control:#x} does not fit the "
                    f"{program.format.width}-bit format",
                )
            )
    for addr, (seq_op, cond_sel, target) in enumerate(program.seq_words):
        if seq_op not in (
            int(SeqOp.NEXT),
            int(SeqOp.JUMP),
            int(SeqOp.BRANCH),
            int(SeqOp.DISPATCH),
        ):
            diagnostics.append(
                _diag(
                    "CHK303",
                    "error",
                    f"addr {addr}",
                    f"unknown sequencer op {seq_op}",
                )
            )
            continue
        if not 0 <= cond_sel < cond_limit:
            diagnostics.append(
                _diag(
                    "CHK303",
                    "error",
                    f"addr {addr}",
                    f"condition select {cond_sel} does not fit "
                    f"{program.cond_bits} bits",
                )
            )
        if seq_op in (int(SeqOp.JUMP), int(SeqOp.BRANCH)):
            if not 0 <= target < depth:
                diagnostics.append(
                    _diag(
                        "CHK303",
                        "error",
                        f"addr {addr}",
                        f"target {target} does not fit "
                        f"{program.addr_bits} address bits",
                    )
                )
            elif target >= length:
                diagnostics.append(
                    _diag(
                        "CHK301",
                        "error",
                        f"addr {addr}",
                        f"{SeqOp(seq_op).name} target {target} is past "
                        f"the last instruction (program length {length})",
                    )
                )
        if seq_op in (int(SeqOp.NEXT), int(SeqOp.BRANCH)):
            fallthrough = addr + 1
            if fallthrough >= length and length < depth:
                diagnostics.append(
                    _diag(
                        "CHK302",
                        "warning",
                        f"addr {addr}",
                        f"{SeqOp(seq_op).name} at the last instruction "
                        f"falls through to unwritten address "
                        f"{fallthrough % depth}",
                        suggestion="end the program with JUMP or DISPATCH",
                    )
                )

    if program.dispatch is not None:
        try:
            program.dispatch.resolve(program.labels)
        except KeyError as exc:
            diagnostics.append(
                _diag(
                    "CHK305",
                    "error",
                    f"dispatch {program.dispatch.name!r}",
                    str(exc).strip('"'),
                )
            )

    # Reachability comes from the generic worklist solver
    # (:func:`repro.check.dataflow.microcode_reachable`), which clones
    # the assembler's ``reachable_addresses`` semantics exactly --
    # CHK304's message and trigger set are unchanged.
    from repro.check.dataflow import microcode_reachable

    try:
        reachable = set(microcode_reachable(program))
    except KeyError:
        reachable = None  # already reported as CHK305
    if reachable is not None:
        unreachable = sorted(set(range(length)) - reachable)
        if unreachable:
            shown = ", ".join(str(a) for a in unreachable[:6])
            more = "" if len(unreachable) <= 6 else ", ..."
            diagnostics.append(
                _diag(
                    "CHK304",
                    "warning",
                    f"addrs {shown}{more}",
                    f"{len(unreachable)} instruction(s) unreachable from "
                    f"the entry points",
                )
            )
    return diagnostics


# ---------------------------------------------------------------------
# AIGs
# ---------------------------------------------------------------------
def lint_aig(aig) -> "list[Diagnostic]":
    """Lint an :class:`~repro.aig.graph.AIG`'s structural invariants.

    The construction API guarantees fanin literals reference
    lower-numbered nodes (which is what makes every AIG acyclic by
    construction); CHK401 reports violations -- possible only through
    direct mutation, which is exactly what a lint is for.  CHK402
    reports AND nodes outside every output or latch cone.
    """
    diagnostics: list[Diagnostic] = []
    num_nodes = aig.num_nodes
    for node in range(1, num_nodes):
        if not aig.is_and(node):
            continue
        for fanin in aig.fanins(node):
            source = fanin >> 1
            if source >= node:
                diagnostics.append(
                    _diag(
                        "CHK401",
                        "error",
                        f"node {node}",
                        f"AND node {node} has fanin literal {fanin} "
                        f"referencing node {source} (must reference a "
                        f"lower-numbered node; forward references break "
                        f"the acyclicity invariant)",
                    )
                )
    for latch in aig.latches:
        if latch.next_lit >> 1 >= num_nodes:
            diagnostics.append(
                _diag(
                    "CHK401",
                    "error",
                    f"latch {latch.name!r}",
                    f"next-state literal {latch.next_lit} references "
                    f"nonexistent node {latch.next_lit >> 1}",
                )
            )
    for name, lit in aig.pos:
        if lit >> 1 >= num_nodes:
            diagnostics.append(
                _diag(
                    "CHK401",
                    "error",
                    f"po {name!r}",
                    f"output literal {lit} references nonexistent node "
                    f"{lit >> 1}",
                )
            )
    if diagnostics:
        return diagnostics  # reach analysis is meaningless on a broken graph

    live: set[int] = set()
    frontier = [lit >> 1 for lit in aig.combinational_outputs()]
    while frontier:
        node = frontier.pop()
        if node in live:
            continue
        live.add(node)
        if aig.is_and(node):
            frontier.extend(fanin >> 1 for fanin in aig.fanins(node))
    dangling = [
        node
        for node in range(1, num_nodes)
        if aig.is_and(node) and node not in live
    ]
    if dangling:
        shown = ", ".join(str(n) for n in dangling[:6])
        more = "" if len(dangling) <= 6 else ", ..."
        diagnostics.append(
            _diag(
                "CHK402",
                "warning",
                f"nodes {shown}{more}",
                f"{len(dangling)} AND node(s) feed no output or latch",
                suggestion="run cleanup() or any sweep pass",
            )
        )
    return diagnostics


# ---------------------------------------------------------------------
# Mapped netlists
# ---------------------------------------------------------------------
def lint_netlist(netlist) -> "list[Diagnostic]":
    """Lint a :class:`~repro.tech.netlist.MappedNetlist`: combinational
    loops (CHK501), nets with several drivers (CHK502), and consumed
    nets nothing drives (CHK503)."""
    from repro.tech.netlist import CONST0_NET, CONST1_NET

    diagnostics: list[Diagnostic] = []

    drivers: dict[int, list[str]] = {}

    def drive(net: int, what: str) -> None:
        drivers.setdefault(net, []).append(what)

    drive(CONST0_NET, "constant 0")
    drive(CONST1_NET, "constant 1")
    for name, net in netlist.pi_nets.items():
        drive(net, f"primary input {name!r}")
    for flop in netlist.flops:
        drive(flop.q_net, f"flop {flop.name!r}")
    for index, inst in enumerate(netlist.instances):
        drive(inst.output, f"instance {index} ({inst.cell_name})")
    for net, sources in sorted(drivers.items()):
        if len(sources) > 1:
            diagnostics.append(
                _diag(
                    "CHK502",
                    "error",
                    f"net {net}",
                    f"net {net} has {len(sources)} drivers: "
                    f"{'; '.join(sources)}",
                )
            )

    consumers: dict[int, str] = {}
    for index, inst in enumerate(netlist.instances):
        for net in inst.inputs:
            consumers.setdefault(
                net, f"instance {index} ({inst.cell_name})"
            )
    for flop in netlist.flops:
        consumers.setdefault(flop.d_net, f"flop {flop.name!r} data")
    for name, net in netlist.po_nets.items():
        consumers.setdefault(net, f"primary output {name!r}")
    for net, consumer in sorted(consumers.items()):
        if net not in drivers:
            diagnostics.append(
                _diag(
                    "CHK503",
                    "error",
                    f"net {net}",
                    f"net {net} feeds {consumer} but nothing drives it",
                )
            )

    # Cycle detection: iterative colouring over the producer graph
    # (the netlist's own topo_instances() raises on the first cycle;
    # the lint names the net and keeps going).
    producer = {inst.output: inst for inst in netlist.instances}
    state: dict[int, int] = {}  # 0/absent new, 1 on stack, 2 done
    for root in netlist.instances:
        if state.get(root.output, 0) == 2:
            continue
        stack: list[tuple[object, int]] = [(root, 0)]
        state[root.output] = 1
        while stack:
            inst, cursor = stack[-1]
            if cursor < len(inst.inputs):
                stack[-1] = (inst, cursor + 1)
                child = producer.get(inst.inputs[cursor])
                if child is None:
                    continue
                status = state.get(child.output, 0)
                if status == 1:
                    diagnostics.append(
                        _diag(
                            "CHK501",
                            "error",
                            f"net {child.output}",
                            f"combinational loop through net "
                            f"{child.output} ({child.cell_name})",
                        )
                    )
                elif status == 0:
                    state[child.output] = 1
                    stack.append((child, 0))
            else:
                state[inst.output] = 2
                stack.pop()
    return diagnostics


# ---------------------------------------------------------------------
# Dispatch on the ControllerIR kind
# ---------------------------------------------------------------------
def lint_ir(ir) -> "list[Diagnostic]":
    """Lint any ControllerIR by its ``ir_stats()['kind']`` tag.

    Truth tables are dense (every row exists by construction) and a
    standalone dispatch table cannot be checked without its program's
    labels, so those kinds lint clean here.
    """
    kind = str(ir.ir_stats()["kind"])
    if kind == "fsm":
        return lint_fsm(ir)
    if kind == "program":
        return lint_program(ir)
    if kind == "microcode":
        return lint_microcode(ir)
    return []
