"""Abstract-interpretation dataflow engine over controller IRs.

The structural linters (:mod:`repro.check.irlint`) walk graphs; this
module *interprets* them: a generic worklist fixpoint solver
(:func:`solve`) over pluggable lattices, instantiated four ways:

* **predicate-aware FSM reachability** -- symbolic input conditions
  propagated through transitions.  Strictly stronger than CHK201/202's
  edge-existence walk: a state every edge can reach but no *allowed
  input* can reach is CHK701, and a cube-form transition guard no
  allowed input satisfies -- discharged via :mod:`repro.sat` -- is
  CHK702.
* **constant/interval propagation over microcode** -- reachability of
  :class:`~repro.controllers.assembler.AssembledProgram` addresses
  through the sequencer, then per-field constant folding over the
  reachable control words: CHK703 (a BRANCH whose taken and
  fall-through targets coincide), CHK704 (a control field holding one
  value at every reachable address), CHK705 (a dispatch table wired to
  a sequencer that never dispatches).
* **liveness on AIGs and mapped netlists** -- the CHK402/CHK503 walks
  root at *all* outputs including every latch next; the liveness
  fixpoint here roots at primary outputs only and adds a latch's next
  cone when (and only when) its output is observed, so self-sustaining
  but output-independent cones are found: CHK706.
* **pass-effect contracts** -- declared :class:`~repro.flow.schema.
  PassSchema` effects checked pipeline-wide by
  :func:`repro.check.spec.check_manager` (CHK710 lives there; the
  freshness lattice is this module's smallest instantiation).

Findings are warnings: a semantically unreachable state is exactly the
don't-care :mod:`repro.check.facts` feeds to the optimizer, so shipping
one is an opportunity, not a bug.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from repro.check.diagnostics import Diagnostic


def _diag(code, severity, location, message, suggestion=None) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=severity,
        location=location,
        message=message,
        suggestion=suggestion,
    )


# ---------------------------------------------------------------------
# The solver
# ---------------------------------------------------------------------
class Lattice:
    """A join-semilattice: the value domain of one analysis.

    Subclasses provide ``bottom``/``top`` elements and the
    ``join``/``leq`` operations; :func:`solve` only ever calls these
    four, so any domain with a finite ascending-chain height plugs in.
    """

    def bottom(self):
        raise NotImplementedError

    def top(self):
        raise NotImplementedError

    def join(self, a, b):
        raise NotImplementedError

    def leq(self, a, b) -> bool:
        raise NotImplementedError


class BoolLattice(Lattice):
    """Reachability: ``False`` (bottom, unreachable) below ``True``."""

    def bottom(self):
        return False

    def top(self):
        return True

    def join(self, a, b):
        return a or b

    def leq(self, a, b) -> bool:
        return (not a) or b


#: Bottom/top sentinels of :class:`ConstLattice` (``repr``-stable so
#: they can appear in messages).
CONST_BOTTOM = "<bottom>"
CONST_TOP = "<top>"


class ConstLattice(Lattice):
    """Constant propagation: bottom below every concrete value below
    top; two distinct values join to top."""

    def bottom(self):
        return CONST_BOTTOM

    def top(self):
        return CONST_TOP

    def join(self, a, b):
        if a == CONST_BOTTOM:
            return b
        if b == CONST_BOTTOM:
            return a
        if a == b:
            return a
        return CONST_TOP

    def leq(self, a, b) -> bool:
        return a == CONST_BOTTOM or b == CONST_TOP or a == b


class IntervalLattice(Lattice):
    """Integer intervals ``(lo, hi)``; ``None`` is bottom.  ``width``
    bounds the domain, making top ``(0, 2**width - 1)`` and chains
    finite without widening."""

    def __init__(self, width: int) -> None:
        self.width = width

    def bottom(self):
        return None

    def top(self):
        return (0, (1 << self.width) - 1)

    def join(self, a, b):
        if a is None:
            return b
        if b is None:
            return a
        return (min(a[0], b[0]), max(a[1], b[1]))

    def leq(self, a, b) -> bool:
        if a is None:
            return True
        if b is None:
            return False
        return b[0] <= a[0] and a[1] <= b[1]


#: An edge transfer function: input fact in, output fact out.
TransferFunction = Callable[[object], object]


def solve(
    successors: "Callable[[object], Iterable]",
    entries: dict,
    lattice: Lattice,
) -> dict:
    """Worklist fixpoint: propagate ``entries`` facts forward until
    stable.

    Args:
        successors: ``node -> iterable of (succ, transfer)`` where
            ``transfer`` is a :data:`TransferFunction` or ``None``
            (identity).  Nodes never yielded and never seeded stay at
            bottom (absent from the result).
        entries: seed facts, ``{node: fact}``.
        lattice: the value domain.

    Returns:
        ``{node: fact}`` at the least fixpoint over all nodes reached.
    """
    facts = dict(entries)
    worklist = deque(entries)
    while worklist:
        node = worklist.popleft()
        fact = facts[node]
        for succ, transfer in successors(node):
            out = fact if transfer is None else transfer(fact)
            old = facts.get(succ)
            new = out if old is None else lattice.join(old, out)
            if old is None or not lattice.leq(new, old):
                facts[succ] = new
                worklist.append(succ)
    return facts


def fold(lattice: Lattice, values: Iterable):
    """Join an iterable of facts (bottom when empty)."""
    result = lattice.bottom()
    for value in values:
        result = lattice.join(result, value)
    return result


# ---------------------------------------------------------------------
# FSM reachability under input predicates
# ---------------------------------------------------------------------
def _cube_matches(cube: str, word: int) -> bool:
    bits = len(cube)
    for position in range(bits):
        want = cube[bits - 1 - position]  # cube[0] is the MSB
        if want != "-" and int(want) != (word >> position) & 1:
            return False
    return True


def allowed_input_words(
    num_inputs: int, allowed_inputs=None
) -> "list[int]":
    """The concrete input words an input predicate admits.

    ``allowed_inputs`` is ``None`` (everything), an iterable of words,
    or an iterable of cube strings over ``0``/``1``/``-`` (MSB first,
    ``num_inputs`` long).  Mixing words and cubes is fine.
    """
    if allowed_inputs is None:
        return list(range(1 << num_inputs))
    cubes = []
    words: set[int] = set()
    for item in allowed_inputs:
        if isinstance(item, str):
            if len(item) != num_inputs or any(c not in "01-" for c in item):
                raise ValueError(
                    f"cube {item!r} is not a {num_inputs}-bit pattern "
                    f"over 0/1/-"
                )
            cubes.append(item)
        else:
            words.add(int(item))
    if cubes:
        for word in range(1 << num_inputs):
            if any(_cube_matches(cube, word) for cube in cubes):
                words.add(word)
    return sorted(words)


def fsm_reachable_states(spec, allowed_inputs=None) -> "set[int]":
    """States of an :class:`~repro.controllers.fsm.FsmSpec` reachable
    from reset when inputs are confined to ``allowed_inputs`` (see
    :func:`allowed_input_words`).  With no predicate this coincides
    with ``spec.reachable_states()``; a predicate makes it strictly
    stronger."""
    words = allowed_input_words(spec.num_inputs, allowed_inputs)

    def successors(state):
        return [
            (spec.next_state[state][word], None) for word in words
        ]

    lattice = BoolLattice()
    facts = solve(successors, {spec.reset_state: True}, lattice)
    return {state for state, fact in facts.items() if fact}


def analyze_fsm(spec, allowed_inputs=None) -> "list[Diagnostic]":
    """CHK701: states no *allowed* input sequence reaches from reset.

    The edge-existence walk (CHK201) asks "does a transition arrive
    here"; this asks "does a transition arrive here under the declared
    input predicate", which is what the Manual flow's mode pinning
    actually guarantees.
    """
    diagnostics: list[Diagnostic] = []
    where = f"fsm {spec.name!r}"
    reachable = fsm_reachable_states(spec, allowed_inputs)
    constrained = allowed_inputs is not None
    for state in range(spec.num_states):
        if state in reachable:
            continue
        qualifier = (
            "under the declared input predicate " if constrained else ""
        )
        diagnostics.append(
            _diag(
                "CHK701",
                "warning",
                f"{where} state {state}",
                f"state {state} is semantically unreachable "
                f"{qualifier}from reset state {spec.reset_state}",
                suggestion=(
                    "attach the proven reachable set as a fact sheet "
                    "so fsm_encode and dc_rewrite can exploit it"
                ),
            )
        )
    return diagnostics


def _cube_assumptions(cube: str, input_vars) -> "list[int]":
    """SAT assumptions asserting ``cube`` over ``input_vars`` (var of
    bit 0 first; ``cube[0]`` is the MSB)."""
    bits = len(cube)
    assumptions = []
    for position in range(bits):
        want = cube[bits - 1 - position]
        if want == "-":
            continue
        var = input_vars[position]
        assumptions.append(var if want == "1" else -var)
    return assumptions


def analyze_guards(
    num_states: int,
    num_input_bits: int,
    rows,
    reset_state: int = 0,
    allowed_cubes=None,
) -> "list[Diagnostic]":
    """Predicate-aware analysis of a sparse cube-form transition table
    (the format of :func:`repro.check.irlint.lint_transitions`).

    Emits CHK702 for rows whose guard cube no allowed input satisfies
    -- each discharged by :mod:`repro.sat` (the guard is asserted as
    assumptions against the allowed-cube disjunction; UNSAT is the
    proof) -- and CHK701 for states unreachable from ``reset_state``
    once unsatisfiable guards are deleted.
    """
    from repro.sat.solver import Solver

    diagnostics: list[Diagnostic] = []
    solver = Solver()
    input_vars = [solver.new_var() for _ in range(num_input_bits)]
    if allowed_cubes is not None:
        selectors = []
        for cube in allowed_cubes:
            if len(cube) != num_input_bits or any(
                c not in "01-" for c in cube
            ):
                raise ValueError(
                    f"cube {cube!r} is not a {num_input_bits}-bit "
                    f"pattern over 0/1/-"
                )
            member = solver.new_var()
            for literal in _cube_assumptions(cube, input_vars):
                solver.add_clause([-member, literal])
            selectors.append(member)
        solver.add_clause(selectors or [])

    satisfiable: list[tuple[int, str, int]] = []
    for index, (state, cube, target) in enumerate(rows):
        if solver.solve(_cube_assumptions(cube, input_vars)):
            satisfiable.append((state, cube, target))
            continue
        diagnostics.append(
            _diag(
                "CHK702",
                "warning",
                f"state {state} row {index}",
                f"guard {cube!r} is unsatisfiable under the allowed "
                f"input cubes (UNSAT)",
                suggestion="delete the row; it can never fire",
            )
        )

    edges: dict[int, list] = {}
    for state, _, target in satisfiable:
        edges.setdefault(state, []).append((target, None))
    facts = solve(
        lambda node: edges.get(node, []), {reset_state: True}, BoolLattice()
    )
    for state in range(num_states):
        if facts.get(state):
            continue
        diagnostics.append(
            _diag(
                "CHK701",
                "warning",
                f"state {state}",
                f"state {state} is semantically unreachable from reset "
                f"state {reset_state} (all paths go through "
                f"unsatisfiable guards)",
            )
        )
    return diagnostics


# ---------------------------------------------------------------------
# Microcode reachability + constant propagation
# ---------------------------------------------------------------------
def microcode_reachable(
    program, entry_labels=None, opcodes=None
) -> "set[int]":
    """Reachable addresses of an ``AssembledProgram`` via the worklist
    solver.  Byte-identical results to
    ``program.reachable_addresses()`` (the CHK304 walk this engine
    replaces), including the ``KeyError`` on undefined entry or
    dispatch labels."""
    from repro.controllers.microcode import SeqOp

    length = program.length
    depth = program.depth
    starts = {0}
    if entry_labels:
        starts = {program.labels[name] for name in entry_labels}
    dispatch_targets: set[int] = set()
    if program.dispatch is not None:
        dispatch_targets = program.dispatch.targets(program.labels, opcodes)

    def successors(addr):
        seq_op, _, target = program.seq_words[addr]
        succ: set[int] = set()
        if seq_op == SeqOp.NEXT:
            succ.add((addr + 1) % depth)
        elif seq_op == SeqOp.JUMP:
            succ.add(target)
        elif seq_op == SeqOp.BRANCH:
            succ.add(target)
            succ.add((addr + 1) % depth)
        elif seq_op == SeqOp.DISPATCH:
            succ |= dispatch_targets
        return [(s, None) for s in succ if s < length]

    entries = {addr: True for addr in starts if addr < length}
    facts = solve(successors, entries, BoolLattice())
    return {addr for addr, fact in facts.items() if fact}


def analyze_microcode(
    program, entry_labels=None, opcodes=None
) -> "list[Diagnostic]":
    """Constant/interval propagation over an ``AssembledProgram``.

    * CHK703 -- a reachable BRANCH whose taken target equals its
      fall-through: the condition is read but cannot matter.
    * CHK704 -- a control field that decodes to one value at every
      reachable address (the downstream register is provably constant).
    * CHK705 -- a dispatch table wired into the image while no
      reachable instruction dispatches: every target is dead.

    Undefined labels make reachability meaningless; those programs are
    skipped here (CHK305 already reports them).
    """
    from repro.controllers.microcode import SeqOp

    try:
        reachable = microcode_reachable(program, entry_labels, opcodes)
    except KeyError:
        return []
    diagnostics: list[Diagnostic] = []
    length = program.length
    depth = program.depth

    for addr in sorted(reachable):
        seq_op, _, target = program.seq_words[addr]
        if seq_op == SeqOp.BRANCH and target == (addr + 1) % depth:
            diagnostics.append(
                _diag(
                    "CHK703",
                    "warning",
                    f"addr {addr}",
                    f"branch at address {addr} is dead: taken target "
                    f"{target} equals the fall-through",
                    suggestion="replace the BRANCH with NEXT",
                )
            )

    if len(reachable) >= 2:
        lattice = ConstLattice()
        for field in program.format.fields:
            value = fold(
                lattice,
                (
                    program.format.unpack(program.control_words[addr])[
                        field.name
                    ]
                    for addr in sorted(reachable)
                ),
            )
            if value in (CONST_BOTTOM, CONST_TOP):
                continue
            diagnostics.append(
                _diag(
                    "CHK704",
                    "warning",
                    f"field {field.name!r}",
                    f"control field {field.name!r} decodes to "
                    f"{value!r} at every reachable address",
                    suggestion=(
                        "the downstream register is constant; tie it "
                        "off or let dc_rewrite consume the fact"
                    ),
                )
            )

    if program.dispatch is not None and not any(
        program.seq_words[addr][0] == SeqOp.DISPATCH
        for addr in reachable
    ):
        diagnostics.append(
            _diag(
                "CHK705",
                "warning",
                f"dispatch {program.dispatch.name!r}",
                f"dispatch table {program.dispatch.name!r} is wired "
                f"but no reachable instruction dispatches; none of its "
                f"targets can be taken",
            )
        )
    return diagnostics


# ---------------------------------------------------------------------
# Liveness on AIGs and mapped netlists
# ---------------------------------------------------------------------
def aig_live_nodes(aig) -> "set[int]":
    """Nodes that can influence a primary output.

    The liveness fixpoint: primary-output cones are live, and a
    latch's next-state cone is live iff the latch's *output* is --
    which is exactly where this beats the CHK402 walk (that one roots
    at every latch next unconditionally, so a latch feeding only
    itself keeps its whole cone "reachable")."""
    latch_by_node = {latch.node: latch for latch in aig.latches}

    def successors(node):
        succ = []
        if aig.is_and(node):
            succ.extend((fanin >> 1, None) for fanin in aig.fanins(node))
        latch = latch_by_node.get(node)
        if latch is not None:
            succ.append((latch.next_lit >> 1, None))
        return succ

    entries = {lit >> 1: True for _, lit in aig.pos}
    facts = solve(successors, entries, BoolLattice())
    return {node for node, fact in facts.items() if fact}


def analyze_aig(aig) -> "list[Diagnostic]":
    """CHK706: logic cones no primary output depends on.

    Reports AND nodes and latches outside every primary-output cone
    under the liveness fixpoint of :func:`aig_live_nodes` -- strictly
    stronger than CHK402's dangling-node walk, which keeps any cone a
    latch next references even when the latch itself is unobservable.
    """
    live = aig_live_nodes(aig)
    dead_latches = [
        latch.name for latch in aig.latches if latch.node not in live
    ]
    dead_ands = [
        node
        for node in range(1, aig.num_nodes)
        if aig.is_and(node) and node not in live
    ]
    if not dead_latches and not dead_ands:
        return []
    parts = []
    if dead_ands:
        shown = ", ".join(str(n) for n in dead_ands[:6])
        more = "" if len(dead_ands) <= 6 else ", ..."
        parts.append(f"nodes {shown}{more}")
    if dead_latches:
        shown = ", ".join(repr(n) for n in dead_latches[:4])
        more = "" if len(dead_latches) <= 4 else ", ..."
        parts.append(f"latches {shown}{more}")
    return [
        _diag(
            "CHK706",
            "warning",
            "; ".join(parts),
            f"{len(dead_ands)} AND node(s) and {len(dead_latches)} "
            f"latch(es) influence no primary output",
            suggestion=(
                "the cone is an observability don't-care; sweep it or "
                "let dc_rewrite absorb it"
            ),
        )
    ]


def analyze_netlist(netlist) -> "list[Diagnostic]":
    """CHK706 on a mapped netlist: instances and flops outside every
    primary-output cone (a flop's data cone counts only when its Q net
    is itself observed)."""
    producer = {inst.output: inst for inst in netlist.instances}
    flop_by_q = {flop.q_net: flop for flop in netlist.flops}

    def successors(net):
        succ = []
        inst = producer.get(net)
        if inst is not None:
            succ.extend((source, None) for source in inst.inputs)
        flop = flop_by_q.get(net)
        if flop is not None:
            succ.append((flop.d_net, None))
        return succ

    entries = {net: True for net in netlist.po_nets.values()}
    facts = solve(successors, entries, BoolLattice())
    live = {net for net, fact in facts.items() if fact}

    dead_instances = [
        index
        for index, inst in enumerate(netlist.instances)
        if inst.output not in live
    ]
    dead_flops = [
        flop.name for flop in netlist.flops if flop.q_net not in live
    ]
    if not dead_instances and not dead_flops:
        return []
    parts = []
    if dead_instances:
        shown = ", ".join(str(i) for i in dead_instances[:6])
        more = "" if len(dead_instances) <= 6 else ", ..."
        parts.append(f"instances {shown}{more}")
    if dead_flops:
        shown = ", ".join(repr(n) for n in dead_flops[:4])
        more = "" if len(dead_flops) <= 4 else ", ..."
        parts.append(f"flops {shown}{more}")
    return [
        _diag(
            "CHK706",
            "warning",
            "; ".join(parts),
            f"{len(dead_instances)} instance(s) and {len(dead_flops)} "
            f"flop(s) influence no primary output",
            suggestion="dead after mapping; re-run the sweep passes",
        )
    ]


# ---------------------------------------------------------------------
# Dispatch on the ControllerIR kind
# ---------------------------------------------------------------------
def analyze_ir(ir, allowed_inputs=None) -> "list[Diagnostic]":
    """Run the dataflow analyses matching an IR's ``kind`` tag (the
    :func:`repro.check.irlint.lint_ir` idiom)."""
    kind = str(ir.ir_stats()["kind"])
    if kind == "fsm":
        return analyze_fsm(ir, allowed_inputs)
    if kind == "program":
        try:
            assembled = ir.assemble()
        except (ValueError, KeyError):
            return []  # CHK300 territory
        return analyze_microcode(assembled)
    if kind == "microcode":
        return analyze_microcode(ir)
    return []
