"""``repro.check`` -- the static verification layer.

Three analyzer families report through one
:class:`~repro.check.diagnostics.Diagnostic` model:

* :mod:`repro.check.spec` typechecks pipeline specs against the pass
  registry without executing anything (unknown passes and options,
  option types and ranges, stage ordering, IR-kind compatibility,
  missing bindings);
* :mod:`repro.check.irlint` lints controller IRs, AIGs, and mapped
  netlists for structural defects (unreachable states, bad jump
  targets, combinational loops, multiple drivers);
* :mod:`repro.check.locks` enforces ``# guarded-by:`` lock
  annotations over the serve stack and the compile cache;
* :mod:`repro.check.dataflow` runs abstract-interpretation analyses
  (worklist fixpoints over pluggable lattices) proving reachability,
  constants, and dead logic -- the CHK7xx family -- and
  :mod:`repro.check.facts` packages the proofs as
  :class:`~repro.check.facts.FactSheet` advice the optimizing passes
  consume after SAT re-discharge.

``python -m repro.check`` is the CLI; ``PassManager.compile`` and the
compile server's ``POST /compile`` run the spec typechecker up front,
so a statically wrong pipeline fails before any pass executes.
"""

from repro.check.dataflow import (
    analyze_aig,
    analyze_fsm,
    analyze_guards,
    analyze_ir,
    analyze_microcode,
    analyze_netlist,
    fsm_reachable_states,
    microcode_reachable,
    solve,
)
from repro.check.diagnostics import (
    CODES,
    Diagnostic,
    errors,
    exit_code,
    has_errors,
    render,
)
from repro.check.facts import (
    Fact,
    FactSheet,
    derive_facts,
    discharge_register_invariant,
    register_values_fact,
    table_dontcare_fact,
)
from repro.check.irlint import (
    lint_aig,
    lint_fsm,
    lint_ir,
    lint_microcode,
    lint_netlist,
    lint_program,
    lint_transitions,
)
from repro.check.locks import check_lock_discipline, default_lock_paths
from repro.check.spec import check_job, check_manager, check_spec

__all__ = [
    "CODES",
    "Diagnostic",
    "Fact",
    "FactSheet",
    "analyze_aig",
    "analyze_fsm",
    "analyze_guards",
    "analyze_ir",
    "analyze_microcode",
    "analyze_netlist",
    "check_job",
    "check_lock_discipline",
    "check_manager",
    "check_spec",
    "default_lock_paths",
    "derive_facts",
    "discharge_register_invariant",
    "errors",
    "exit_code",
    "fsm_reachable_states",
    "has_errors",
    "lint_aig",
    "lint_fsm",
    "lint_ir",
    "lint_microcode",
    "lint_netlist",
    "lint_program",
    "lint_transitions",
    "microcode_reachable",
    "register_values_fact",
    "render",
    "solve",
    "table_dontcare_fact",
]
