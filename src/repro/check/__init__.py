"""``repro.check`` -- the static verification layer.

Three analyzer families report through one
:class:`~repro.check.diagnostics.Diagnostic` model:

* :mod:`repro.check.spec` typechecks pipeline specs against the pass
  registry without executing anything (unknown passes and options,
  option types and ranges, stage ordering, IR-kind compatibility,
  missing bindings);
* :mod:`repro.check.irlint` lints controller IRs, AIGs, and mapped
  netlists for structural defects (unreachable states, bad jump
  targets, combinational loops, multiple drivers);
* :mod:`repro.check.locks` enforces ``# guarded-by:`` lock
  annotations over the serve stack and the compile cache.

``python -m repro.check`` is the CLI; ``PassManager.compile`` and the
compile server's ``POST /compile`` run the spec typechecker up front,
so a statically wrong pipeline fails before any pass executes.
"""

from repro.check.diagnostics import (
    CODES,
    Diagnostic,
    errors,
    exit_code,
    has_errors,
    render,
)
from repro.check.irlint import (
    lint_aig,
    lint_fsm,
    lint_ir,
    lint_microcode,
    lint_netlist,
    lint_program,
    lint_transitions,
)
from repro.check.locks import check_lock_discipline, default_lock_paths
from repro.check.spec import check_job, check_manager, check_spec

__all__ = [
    "CODES",
    "Diagnostic",
    "check_job",
    "check_lock_discipline",
    "check_manager",
    "check_spec",
    "default_lock_paths",
    "errors",
    "exit_code",
    "has_errors",
    "lint_aig",
    "lint_fsm",
    "lint_ir",
    "lint_microcode",
    "lint_netlist",
    "lint_program",
    "lint_transitions",
    "render",
]
