"""The one diagnostic model every ``repro.check`` analyzer reports in.

A :class:`Diagnostic` is a code (``CHK101``), a severity, a location
string, a message, and an optional suggestion.  Codes are grouped by
analyzer family:

* ``CHK1xx`` -- spec typechecker (:mod:`repro.check.spec`)
* ``CHK2xx`` -- FSM linter (:mod:`repro.check.irlint`)
* ``CHK3xx`` -- microcode/dispatch linter
* ``CHK4xx`` -- AIG structural linter
* ``CHK5xx`` -- mapped-netlist linter
* ``CHK6xx`` -- lock-discipline analyzer (:mod:`repro.check.locks`)
* ``CHK7xx`` -- dataflow engine (:mod:`repro.check.dataflow`)

The model is deliberately wire-friendly (``to_json``/``from_json``):
the compile server attaches diagnostics to rejected jobs' NDJSON
result lines, and :class:`repro.serve.SpecCheckError` carries them
back to the client intact.
"""

from __future__ import annotations

from dataclasses import dataclass

SEVERITIES = ("error", "warning")

#: Code -> one-line title, the closed set of diagnostics any analyzer
#: may emit.  ``repro.check registry``-adjacent tooling and the docs
#: render from this, so adding a code here is adding it everywhere.
CODES = {
    # -- spec typechecker ---------------------------------------------
    "CHK100": "malformed pipeline spec",
    "CHK101": "unknown pass",
    "CHK102": "unknown option",
    "CHK103": "option type mismatch",
    "CHK104": "option value rejected",
    "CHK105": "stage-ordering error",
    "CHK106": "controller-IR kind mismatch",
    "CHK107": "missing configuration bindings",
    # -- FSM linter ---------------------------------------------------
    "CHK201": "unreachable FSM state",
    "CHK202": "dead (trap) FSM state",
    "CHK203": "overlapping transitions with conflicting next state",
    "CHK204": "uncovered (state, input) combination",
    # -- microcode / dispatch linter ----------------------------------
    "CHK300": "program fails to assemble",
    "CHK301": "jump target out of range",
    "CHK302": "fall-through past the end of the program",
    "CHK303": "field width violation",
    "CHK304": "unreachable microcode addresses",
    "CHK305": "undefined dispatch label",
    # -- AIG structural linter ----------------------------------------
    "CHK401": "AIG structural invariant violated",
    "CHK402": "dangling AND nodes",
    # -- mapped-netlist linter ----------------------------------------
    "CHK501": "combinational loop",
    "CHK502": "multiple drivers on a net",
    "CHK503": "floating input net",
    # -- lock-discipline analyzer -------------------------------------
    "CHK601": "guarded field accessed without its lock",
    "CHK602": "conflicting guarded-by annotations",
    # -- dataflow engine ----------------------------------------------
    "CHK701": "semantically unreachable FSM state",
    "CHK702": "transition guard unsatisfiable",
    "CHK703": "dead microcode branch",
    "CHK704": "register provably constant",
    "CHK705": "dispatch target never taken",
    "CHK706": "output-independent logic cone",
    "CHK710": "pass-effect contract violation",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static analyzer.

    Args:
        code: a key of :data:`CODES`.
        severity: ``"error"`` (the artifact is wrong) or ``"warning"``
            (the artifact is suspicious -- unreachable states, dangling
            nodes -- but executes).
        location: where, as a human-readable anchor -- a spec item
            (``item 2 ('rewritee')``), an IR element (``state 3``), or
            a ``file:line``.
        message: what is wrong, in one sentence.
        suggestion: an optional actionable fix (``did you mean ...``).
    """

    code: str
    severity: str
    location: str
    message: str
    suggestion: "str | None" = None

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}")

    def __str__(self) -> str:
        text = f"{self.code} {self.severity} at {self.location}: {self.message}"
        if self.suggestion:
            text += f" ({self.suggestion})"
        return text

    def to_json(self) -> dict:
        out = {
            "code": self.code,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
        }
        if self.suggestion is not None:
            out["suggestion"] = self.suggestion
        return out

    @classmethod
    def from_json(cls, data: dict) -> "Diagnostic":
        return cls(
            code=str(data["code"]),
            severity=str(data["severity"]),
            location=str(data["location"]),
            message=str(data["message"]),
            suggestion=(
                None if data.get("suggestion") is None
                else str(data["suggestion"])
            ),
        )


def errors(diagnostics) -> "list[Diagnostic]":
    """Just the error-severity findings."""
    return [d for d in diagnostics if d.severity == "error"]


def has_errors(diagnostics) -> bool:
    return any(d.severity == "error" for d in diagnostics)


def render(diagnostics) -> str:
    """One line per finding, errors first (stable within severity)."""
    ordered = sorted(
        diagnostics, key=lambda d: 0 if d.severity == "error" else 1
    )
    return "\n".join(str(d) for d in ordered)


def exit_code(diagnostics, strict: bool = False) -> int:
    """The CLI exit status for a finding set: 0 clean, 1 findings.

    Warnings only fail under ``--strict``.
    """
    if has_errors(diagnostics):
        return 1
    if strict and any(d.severity == "warning" for d in diagnostics):
        return 1
    return 0
