"""SARIF 2.1.0 emission for ``repro.check`` findings.

SARIF (Static Analysis Results Interchange Format) is the exchange
format code-review UIs ingest; ``python -m repro.check --format sarif``
renders any subcommand's findings through :func:`to_sarif`, and CI
uploads the resulting file as the run's analysis artifact.

The mapping is deliberately small: one ``run`` with one ``tool``
driver (``repro.check``), one reporting rule per diagnostic code seen
(titled from :data:`repro.check.diagnostics.CODES`), and one result
per finding.  Diagnostic locations in this project are logical --
"item 3 ('dc_rewrite')", "state 5", "addrs 9, 11" -- not file/line
pairs, so results carry ``logicalLocations`` (the lint target plus
the diagnostic's own location string) rather than physical ones.
"""

from __future__ import annotations

from repro.check.diagnostics import CODES, Diagnostic

#: The schema the emitted log declares.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Diagnostic severity -> SARIF result level (the two sets coincide).
_LEVELS = {"error": "error", "warning": "warning"}


def to_sarif(findings: "list[tuple[str, Diagnostic]]") -> dict:
    """A SARIF 2.1.0 log dict for ``(target, diagnostic)`` findings.

    Args:
        findings: what the CLI reporters collect -- ``target`` is the
            linted thing's label (``"fig6/case"``, ``"ir/tbl_i4w6"``).

    Returns:
        A JSON-safe dict; ``json.dumps`` it for the artifact file.
    """
    seen_codes = sorted({diagnostic.code for _, diagnostic in findings})
    rules = [
        {
            "id": code,
            "shortDescription": {"text": CODES.get(code, code)},
        }
        for code in seen_codes
    ]
    rule_index = {code: index for index, code in enumerate(seen_codes)}
    results = []
    for target, diagnostic in findings:
        message = diagnostic.message
        if diagnostic.suggestion:
            message = f"{message} ({diagnostic.suggestion})"
        result = {
            "ruleId": diagnostic.code,
            "ruleIndex": rule_index[diagnostic.code],
            "level": _LEVELS.get(diagnostic.severity, "warning"),
            "message": {"text": message},
            "locations": [
                {
                    "logicalLocations": [
                        {
                            "fullyQualifiedName": (
                                f"{target}:{diagnostic.location}"
                                if diagnostic.location
                                else target
                            ),
                        }
                    ]
                }
            ],
        }
        results.append(result)
    return {
        "version": SARIF_VERSION,
        "$schema": SARIF_SCHEMA,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro.check",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
