"""``python -m repro.check`` -- the static verification CLI.

Subcommands::

    spec SPEC        typecheck one pipeline spec (optionally against a
                     declared input stage / IR kind / bindings)
    specs            lint every shipped spec: the figure drivers, the
                     techsweep/replay job grid, and the default flow
    ir               lint the techsweep IR corpus (FSMs, truth tables)
    registry         the pass registry with per-pass option schemas
    self             lock-discipline lint over the serve stack and the
                     compile cache (``--self`` works as an alias)

Exit status: 0 clean, 1 findings (warnings count only under
``--strict``), 2 usage errors.  ``--format json`` emits one JSON array
of findings for tooling; the default is one human line per finding,
errors first.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.check.diagnostics import Diagnostic, exit_code
from repro.check.irlint import lint_ir
from repro.check.locks import check_lock_discipline, default_lock_paths
from repro.check.spec import check_job, check_spec

#: (label, spec, check_spec kwargs) for every spec the repo ships.
#: ``specs`` lints these plus the techsweep job grid; the acceptance
#: bar is zero diagnostics, so a pass rename or schema change that
#: breaks a figure driver fails CI before anyone runs the figure.


def shipped_specs() -> "list[tuple[str, str, dict]]":
    from repro.expts.fig5_tables import _comb_spec
    from repro.expts.fig6_fsm import LOWERINGS, default_body
    from repro.expts.fig8_stateprop import treatment_specs
    from repro.flow.pipeline import default_pipeline
    from repro.synth.dc_options import CompileOptions

    entries: list[tuple[str, str, dict]] = []
    comb = _comb_spec(20.0)
    entries.append(
        (
            "fig5/table",
            f"table_rom,{comb}",
            {"input_stage": "ctrl", "ir_kind": "table"},
        )
    )
    entries.append(
        (
            "fig5/sop",
            f"table_minimize,{comb}",
            {"input_stage": "ctrl", "ir_kind": "table"},
        )
    )
    body = default_body(20.0)
    for name, prefix in sorted(LOWERINGS.items()):
        entries.append(
            (
                f"fig6/{name}",
                f"{prefix},{body}",
                {"input_stage": "ctrl", "ir_kind": "fsm"},
            )
        )
    for name, spec in sorted(treatment_specs(20.0).items()):
        entries.append((f"fig8/{name}", spec, {"input_stage": "rtl"}))
    fig9 = default_pipeline(CompileOptions()).spec()
    entries.append(("fig9/auto", fig9, {"input_stage": "rtl"}))
    entries.append(
        (
            "fig9/manual",
            f"pe_bind,{fig9}",
            {"input_stage": "rtl", "has_bindings": True},
        )
    )
    for label, options in (
        ("default", CompileOptions()),
        ("retimed", CompileOptions(retime=True, fold_sync_reset=True)),
        ("no-state-folding", CompileOptions(use_state_folding=False)),
    ):
        entries.append(
            (
                f"flow/{label}",
                default_pipeline(options).spec(),
                {"input_stage": "rtl"},
            )
        )
    return entries


def _findings_specs() -> "list[tuple[str, Diagnostic]]":
    findings = []
    for label, spec, kwargs in shipped_specs():
        for diagnostic in check_spec(spec, **kwargs):
            findings.append((label, diagnostic))
    from repro.expts.techsweep import build_jobs

    for job in build_jobs("small"):
        for diagnostic in check_job(job):
            findings.append((f"techsweep/{'/'.join(map(str, job.key))}",
                             diagnostic))
    return findings


def _findings_ir() -> "list[tuple[str, Diagnostic]]":
    from repro.expts.techsweep import _designs

    findings = []
    for label, (_, ir) in sorted(_designs("small").items()):
        for diagnostic in lint_ir(ir):
            findings.append((f"ir/{label}", diagnostic))
    return findings


def _findings_self() -> "list[tuple[str, Diagnostic]]":
    return [("locks", d) for d in check_lock_discipline()]


def _report(findings, strict: bool, output_format: str) -> int:
    diagnostics = [diagnostic for _, diagnostic in findings]
    status = exit_code(diagnostics, strict=strict)
    if output_format == "json":
        print(
            json.dumps(
                [
                    {"target": label, **diagnostic.to_json()}
                    for label, diagnostic in findings
                ],
                indent=2,
            )
        )
        return status
    ordered = sorted(
        findings,
        key=lambda pair: (0 if pair[1].severity == "error" else 1, pair[0]),
    )
    for label, diagnostic in ordered:
        print(f"{label}: {diagnostic}")
    if not findings:
        print("clean: no diagnostics")
    else:
        errors = sum(1 for d in diagnostics if d.severity == "error")
        print(
            f"{len(findings)} finding(s): {errors} error(s), "
            f"{len(findings) - errors} warning(s)"
        )
    return status


def _render_registry(output_format: str) -> int:
    from repro.flow.passes import describe

    registry = describe()
    if output_format == "json":
        print(json.dumps(registry, indent=2, sort_keys=True))
        return 0
    for name in sorted(registry):
        entry = registry[name]
        stage = entry["stage"]
        arrow = (
            f"{stage}->{entry['produces']}"
            if entry.get("produces")
            else stage
        )
        print(f"{name} ({arrow}): {entry.get('summary', '')}")
        if entry.get("ir_kinds"):
            print(f"    accepts IR kinds: {', '.join(entry['ir_kinds'])}")
        if entry.get("needs_bindings"):
            print("    needs configuration bindings")
        for option_name, option in sorted(entry.get("options", {}).items()):
            bits = [option["type"]]
            if "default" in option:
                bits.append(f"default={option['default']!r}")
            if option.get("nullable"):
                bits.append("nullable")
            if option.get("choices"):
                bits.append(
                    "choices=" + "|".join(map(str, option["choices"]))
                )
            for bound in ("min", "max", "exclusive_min"):
                if option.get(bound) is not None:
                    bits.append(f"{bound}={option[bound]}")
            print(f"    {option_name}: {', '.join(bits)}")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # `python -m repro.check --self` is the documented CI shorthand.
    argv = ["self" if item == "--self" else item for item in argv]

    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Static verification: spec typechecking, IR "
        "linting, lock-discipline analysis.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on warnings too, not just errors",
    )
    common.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json"),
        default="text",
        help="findings as human lines (default) or one JSON array",
    )
    commands = parser.add_subparsers(dest="command")

    spec_cmd = commands.add_parser(
        "spec", parents=[common], help="typecheck one pipeline spec"
    )
    spec_cmd.add_argument("spec", help="the pipeline spec string")
    spec_cmd.add_argument(
        "--stage",
        choices=("ctrl", "rtl", "aig", "netlist"),
        default=None,
        help="the input's stage (defaults to whatever the first pass "
        "needs)",
    )
    spec_cmd.add_argument(
        "--ir",
        dest="ir_kind",
        default=None,
        help="the controller IR kind of a ctrl-stage input "
        "(fsm, table, program, microcode, dispatch, sequencer)",
    )
    spec_cmd.add_argument(
        "--bindings",
        action="store_true",
        help="the compile context will carry configuration bindings",
    )

    commands.add_parser(
        "specs",
        parents=[common],
        help="lint every shipped figure/techsweep spec and the "
        "default flow",
    )
    commands.add_parser(
        "ir", parents=[common], help="lint the techsweep IR corpus"
    )
    commands.add_parser(
        "registry",
        parents=[common],
        help="print the pass registry with option schemas",
    )
    commands.add_parser(
        "self",
        parents=[common],
        help="lock-discipline lint over repro.serve and the compile "
        "cache",
    )

    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "registry":
        return _render_registry(args.output_format)
    if args.command == "spec":
        findings = [
            ("spec", diagnostic)
            for diagnostic in check_spec(
                args.spec,
                input_stage=args.stage,
                ir_kind=args.ir_kind,
                has_bindings=True if args.bindings else None,
            )
        ]
    elif args.command == "specs":
        findings = _findings_specs()
    elif args.command == "ir":
        findings = _findings_ir()
    else:
        findings = _findings_self()
    return _report(findings, args.strict, args.output_format)


if __name__ == "__main__":
    sys.exit(main())
