"""``python -m repro.check`` -- the static verification CLI.

Subcommands::

    spec SPEC        typecheck one pipeline spec (optionally against a
                     declared input stage / IR kind / bindings)
    specs            lint every shipped spec: the figure drivers, the
                     techsweep/replay job grid, and the default flow
    ir               lint the techsweep IR corpus (FSMs, truth tables)
    dataflow         abstract-interpretation analyses over the IR
                     corpus (reachability, constants, dead logic --
                     the CHK7xx family)
    registry         the pass registry with per-pass option schemas
    self             lock-discipline lint over the serve stack and the
                     compile cache (``--self`` works as an alias)

Exit status: 0 clean, 1 findings (warnings count only under
``--strict``), 2 usage errors.  ``--format json`` emits one JSON array
of findings for tooling; ``--format sarif`` a SARIF 2.1.0 log (what CI
uploads); the default is one human line per finding, errors first.

``specs``, ``ir``, and ``dataflow`` accept ``--baseline FILE`` to
filter previously recorded warnings (write one with
``--write-baseline``); ``ir`` and ``dataflow`` additionally honour
``# repro-check: disable=CHKxxx`` comments in the corpus-defining
module.  Errors are never suppressible by either mechanism.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.check.dataflow import analyze_ir
from repro.check.diagnostics import Diagnostic, exit_code
from repro.check.irlint import lint_ir
from repro.check.locks import check_lock_discipline, default_lock_paths
from repro.check.sarif import to_sarif
from repro.check.spec import check_job, check_spec
from repro.check.suppress import (
    apply_suppressions,
    file_disables,
    load_baseline,
    write_baseline,
)

#: (label, spec, check_spec kwargs) for every spec the repo ships.
#: ``specs`` lints these plus the techsweep job grid; the acceptance
#: bar is zero diagnostics, so a pass rename or schema change that
#: breaks a figure driver fails CI before anyone runs the figure.


def shipped_specs() -> "list[tuple[str, str, dict]]":
    from repro.expts.fig5_tables import _comb_spec
    from repro.expts.fig6_fsm import LOWERINGS, default_body
    from repro.expts.fig8_stateprop import treatment_specs
    from repro.flow.pipeline import default_pipeline
    from repro.synth.dc_options import CompileOptions

    entries: list[tuple[str, str, dict]] = []
    comb = _comb_spec(20.0)
    entries.append(
        (
            "fig5/table",
            f"table_rom,{comb}",
            {"input_stage": "ctrl", "ir_kind": "table"},
        )
    )
    entries.append(
        (
            "fig5/sop",
            f"table_minimize,{comb}",
            {"input_stage": "ctrl", "ir_kind": "table"},
        )
    )
    body = default_body(20.0)
    for name, prefix in sorted(LOWERINGS.items()):
        entries.append(
            (
                f"fig6/{name}",
                f"{prefix},{body}",
                {"input_stage": "ctrl", "ir_kind": "fsm"},
            )
        )
    for name, spec in sorted(treatment_specs(20.0).items()):
        entries.append((f"fig8/{name}", spec, {"input_stage": "rtl"}))
    fig9 = default_pipeline(CompileOptions()).spec()
    entries.append(("fig9/auto", fig9, {"input_stage": "rtl"}))
    entries.append(
        (
            "fig9/manual",
            f"pe_bind,{fig9}",
            {"input_stage": "rtl", "has_bindings": True},
        )
    )
    for label, options in (
        ("default", CompileOptions()),
        ("retimed", CompileOptions(retime=True, fold_sync_reset=True)),
        ("no-state-folding", CompileOptions(use_state_folding=False)),
    ):
        entries.append(
            (
                f"flow/{label}",
                default_pipeline(options).spec(),
                {"input_stage": "rtl"},
            )
        )
    return entries


def _findings_specs() -> "list[tuple[str, Diagnostic]]":
    findings = []
    for label, spec, kwargs in shipped_specs():
        for diagnostic in check_spec(spec, **kwargs):
            findings.append((label, diagnostic))
    from repro.expts.techsweep import build_jobs

    for job in build_jobs("small"):
        for diagnostic in check_job(job):
            findings.append((f"techsweep/{'/'.join(map(str, job.key))}",
                             diagnostic))
    return findings


def _findings_ir() -> "list[tuple[str, Diagnostic]]":
    from repro.expts.techsweep import _designs

    findings = []
    for label, (_, ir) in sorted(_designs("small").items()):
        for diagnostic in lint_ir(ir):
            findings.append((f"ir/{label}", diagnostic))
    return findings


def _findings_dataflow() -> "list[tuple[str, Diagnostic]]":
    from repro.expts.techsweep import _designs

    findings = []
    for label, (_, ir) in sorted(_designs("small").items()):
        for diagnostic in analyze_ir(ir):
            findings.append((f"dataflow/{label}", diagnostic))
    return findings


def _findings_self() -> "list[tuple[str, Diagnostic]]":
    return [("locks", d) for d in check_lock_discipline()]


def _corpus_sources() -> "list[str]":
    """The modules whose inline ``repro-check: disable`` comments the
    corpus lints honour: where the shipped IRs are defined."""
    import repro.expts.techsweep as corpus

    return [corpus.__file__]


def _report(findings, strict: bool, output_format: str, suppressed: int = 0) -> int:
    diagnostics = [diagnostic for _, diagnostic in findings]
    status = exit_code(diagnostics, strict=strict)
    if output_format == "sarif":
        print(json.dumps(to_sarif(findings), indent=2))
        return status
    if output_format == "json":
        print(
            json.dumps(
                [
                    {"target": label, **diagnostic.to_json()}
                    for label, diagnostic in findings
                ],
                indent=2,
            )
        )
        return status
    ordered = sorted(
        findings,
        key=lambda pair: (0 if pair[1].severity == "error" else 1, pair[0]),
    )
    for label, diagnostic in ordered:
        print(f"{label}: {diagnostic}")
    suffix = f" ({suppressed} suppressed)" if suppressed else ""
    if not findings:
        print(f"clean: no diagnostics{suffix}")
    else:
        errors = sum(1 for d in diagnostics if d.severity == "error")
        print(
            f"{len(findings)} finding(s): {errors} error(s), "
            f"{len(findings) - errors} warning(s){suffix}"
        )
    return status


def _render_registry(output_format: str) -> int:
    from repro.flow.passes import describe

    registry = describe()
    if output_format == "json":
        print(json.dumps(registry, indent=2, sort_keys=True))
        return 0
    for name in sorted(registry):
        entry = registry[name]
        stage = entry["stage"]
        arrow = (
            f"{stage}->{entry['produces']}"
            if entry.get("produces")
            else stage
        )
        print(f"{name} ({arrow}): {entry.get('summary', '')}")
        if entry.get("ir_kinds"):
            print(f"    accepts IR kinds: {', '.join(entry['ir_kinds'])}")
        if entry.get("needs_bindings"):
            print("    needs configuration bindings")
        for option_name, option in sorted(entry.get("options", {}).items()):
            bits = [option["type"]]
            if "default" in option:
                bits.append(f"default={option['default']!r}")
            if option.get("nullable"):
                bits.append("nullable")
            if option.get("choices"):
                bits.append(
                    "choices=" + "|".join(map(str, option["choices"]))
                )
            for bound in ("min", "max", "exclusive_min"):
                if option.get(bound) is not None:
                    bits.append(f"{bound}={option[bound]}")
            print(f"    {option_name}: {', '.join(bits)}")
    return 0


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # `python -m repro.check --self` is the documented CI shorthand.
    argv = ["self" if item == "--self" else item for item in argv]

    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Static verification: spec typechecking, IR "
        "linting, lock-discipline analysis.",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on warnings too, not just errors",
    )
    common.add_argument(
        "--format",
        dest="output_format",
        choices=("text", "json", "sarif"),
        default="text",
        help="findings as human lines (default), one JSON array, or "
        "a SARIF 2.1.0 log",
    )
    baseline_opts = argparse.ArgumentParser(add_help=False)
    baseline_opts.add_argument(
        "--baseline",
        default=None,
        help="baseline JSON file; recorded (target, code) warnings "
        "are suppressed (errors never are)",
    )
    baseline_opts.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="record the current warnings to FILE and exit 0",
    )
    commands = parser.add_subparsers(dest="command")

    spec_cmd = commands.add_parser(
        "spec", parents=[common], help="typecheck one pipeline spec"
    )
    spec_cmd.add_argument("spec", help="the pipeline spec string")
    spec_cmd.add_argument(
        "--stage",
        choices=("ctrl", "rtl", "aig", "netlist"),
        default=None,
        help="the input's stage (defaults to whatever the first pass "
        "needs)",
    )
    spec_cmd.add_argument(
        "--ir",
        dest="ir_kind",
        default=None,
        help="the controller IR kind of a ctrl-stage input "
        "(fsm, table, program, microcode, dispatch, sequencer)",
    )
    spec_cmd.add_argument(
        "--bindings",
        action="store_true",
        help="the compile context will carry configuration bindings",
    )

    commands.add_parser(
        "specs",
        parents=[common, baseline_opts],
        help="lint every shipped figure/techsweep spec and the "
        "default flow",
    )
    commands.add_parser(
        "ir",
        parents=[common, baseline_opts],
        help="lint the techsweep IR corpus",
    )
    commands.add_parser(
        "dataflow",
        parents=[common, baseline_opts],
        help="dataflow analyses (CHK7xx) over the techsweep IR corpus",
    )
    commands.add_parser(
        "registry",
        parents=[common],
        help="print the pass registry with option schemas",
    )
    commands.add_parser(
        "self",
        parents=[common],
        help="lock-discipline lint over repro.serve and the compile "
        "cache",
    )

    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "registry":
        return _render_registry(args.output_format)
    if args.command == "spec":
        findings = [
            ("spec", diagnostic)
            for diagnostic in check_spec(
                args.spec,
                input_stage=args.stage,
                ir_kind=args.ir_kind,
                has_bindings=True if args.bindings else None,
            )
        ]
    elif args.command == "specs":
        findings = _findings_specs()
    elif args.command == "ir":
        findings = _findings_ir()
    elif args.command == "dataflow":
        findings = _findings_dataflow()
    else:
        findings = _findings_self()
    suppressed = 0
    if args.command in ("specs", "ir", "dataflow"):
        if args.write_baseline:
            write_baseline(args.write_baseline, findings)
            print(
                f"baseline: recorded "
                f"{sum(1 for _, d in findings if d.severity == 'warning')} "
                f"warning(s) to {args.write_baseline}"
            )
            return 0
        disabled = (
            file_disables(_corpus_sources())
            if args.command in ("ir", "dataflow")
            else set()
        )
        baseline = (
            load_baseline(args.baseline) if args.baseline else set()
        )
        findings, suppressed = apply_suppressions(
            findings, disabled, baseline
        )
    return _report(findings, args.strict, args.output_format, suppressed)


if __name__ == "__main__":
    sys.exit(main())
