"""Suppression for check findings: inline disables and baselines.

Two mechanisms, both explicit and both counted (a suppressed finding
is reported as suppressed, never silently vanished):

* **Inline**: a ``# repro-check: disable=CHK704`` comment (codes
  comma-separated) in a Python source file disables those codes for
  any lint run told to honour that file -- the CLI's ``ir`` and
  ``dataflow`` subcommands scan the module defining the shipped IR
  corpus, so the opt-out lives next to the definitions it excuses.
  The scan is tokenize-based (comments only), the same discipline the
  lock checker uses for ``# unguarded-ok``.

* **Baseline**: ``--baseline findings.json`` loads a recorded set of
  ``(target, code)`` pairs -- typically yesterday's warnings on legacy
  IRs -- and filters exact matches, so new findings still fail while
  the backlog burns down.  ``write_baseline`` produces the file from a
  current finding list.  A baseline never filters *errors*: legacy
  grace extends to warnings only, which is what keeps ``--strict``
  meaningful everywhere else.
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from pathlib import Path

from repro.check.diagnostics import CODES, Diagnostic

_DISABLE_RE = re.compile(
    r"#\s*repro-check:\s*disable=([A-Z0-9_,\s]+)"
)

#: Bumped when the baseline file shape changes.
BASELINE_VERSION = 1


def inline_disables(source: str) -> "set[str]":
    """Diagnostic codes disabled by ``# repro-check: disable=...``
    comments anywhere in ``source`` (Python text).  Unknown codes are
    ignored -- a typo in a disable comment must not hide anything."""
    disabled: set[str] = set()
    reader = io.StringIO(source).readline
    try:
        tokens = list(tokenize.generate_tokens(reader))
    except (tokenize.TokenError, IndentationError):
        return disabled
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DISABLE_RE.search(token.string)
        if not match:
            continue
        for item in match.group(1).split(","):
            code = item.strip()
            if code in CODES:
                disabled.add(code)
    return disabled


def file_disables(paths) -> "set[str]":
    """Union of :func:`inline_disables` over files (missing files are
    skipped -- a moved corpus module should not crash the linter)."""
    disabled: set[str] = set()
    for path in paths:
        path = Path(path)
        try:
            source = path.read_text()
        except OSError:
            continue
        disabled |= inline_disables(source)
    return disabled


def load_baseline(path) -> "set[tuple[str, str]]":
    """The ``(target, code)`` pairs recorded in a baseline file.

    Raises:
        ValueError: the file is not a baseline this version reads.
    """
    data = json.loads(Path(path).read_text())
    if not isinstance(data, dict) or "suppress" not in data:
        raise ValueError(f"{path}: not a repro-check baseline file")
    pairs = set()
    for entry in data["suppress"]:
        pairs.add((str(entry["target"]), str(entry["code"])))
    return pairs


def write_baseline(path, findings) -> None:
    """Record the current warnings as a baseline file.

    Only warnings are recorded; baselining an *error* would weaken
    the strict gate, which is exactly what baselines must not do.
    """
    entries = sorted(
        {
            (target, diagnostic.code)
            for target, diagnostic in findings
            if diagnostic.severity == "warning"
        }
    )
    payload = {
        "version": BASELINE_VERSION,
        "suppress": [
            {"target": target, "code": code} for target, code in entries
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def apply_suppressions(
    findings: "list[tuple[str, Diagnostic]]",
    disabled: "set[str] | None" = None,
    baseline: "set[tuple[str, str]] | None" = None,
) -> "tuple[list[tuple[str, Diagnostic]], int]":
    """Filter findings through the inline and baseline suppressions.

    Errors always survive: both mechanisms only reach warnings, so a
    suppression file (or comment) can never hide a hard failure.

    Returns:
        ``(kept, suppressed_count)``.
    """
    disabled = disabled or set()
    baseline = baseline or set()
    kept: list[tuple[str, Diagnostic]] = []
    suppressed = 0
    for target, diagnostic in findings:
        if diagnostic.severity != "error" and (
            diagnostic.code in disabled
            or (target, diagnostic.code) in baseline
        ):
            suppressed += 1
            continue
        kept.append((target, diagnostic))
    return kept, suppressed
