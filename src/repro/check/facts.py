"""The facts bridge: proven analysis results the optimizer may spend.

:mod:`repro.check.dataflow` proves properties -- "only these states
are reachable", "these table rows are never addressed".  This module
packages those proofs as :class:`Fact` records in a content-hashed
:class:`FactSheet` that rides on
:class:`~repro.flow.core.FlowContext` (and joins the flow
fingerprint, so a fact-assisted compile never collides with a plain
one in the cache).

Trust discipline: a fact is *advice*, never an axiom.  Every consumer
re-discharges the fact against the artifact it is about to optimize
-- :func:`discharge_register_invariant` proves a claimed value set is
an inductive invariant of the actual AIG via :mod:`repro.sat`, and
the table/SOP consumers prove equivalence-under-care -- so a stale or
simply wrong sheet degrades to the unassisted result instead of
miscompiling.

Fact kinds:

* ``reachable-states`` -- ``target`` is the FSM's ``ir_hash()``,
  ``values`` the proven-reachable state numbers.
* ``reachable-addresses`` -- ``target`` is the microcode image's
  ``ir_hash()``, ``values`` the reachable addresses.
* ``register-values`` -- ``target`` is a register (latch bus) name,
  ``values`` the value set it stays inside, ``width`` its bit width.
* ``table-dontcare`` -- ``target`` is the truth table's
  ``ir_hash()``, ``values`` the never-addressed row indices,
  ``width`` the table's input count.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

#: Bumped when the sheet hash preimage changes shape.
FACTS_VERSION = 1

KINDS = (
    "reachable-states",
    "reachable-addresses",
    "register-values",
    "table-dontcare",
)


@dataclass(frozen=True)
class Fact:
    """One proven property.

    Args:
        kind: a member of :data:`KINDS`.
        target: what the fact is about -- an IR content hash or a
            register name (see the kind's contract above).
        values: the proven value set, sorted ascending.
        width: bit width of the value domain (0 when the kind carries
            its own domain, e.g. state numbers).
        detail: a human-readable note (``fsm 'counter'``).
    """

    kind: str
    target: str
    values: "tuple[int, ...]"
    width: int = 0
    detail: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fact kind {self.kind!r}")
        if not self.values:
            raise ValueError("a fact needs at least one value")
        values = tuple(sorted(int(v) for v in self.values))
        if len(set(values)) != len(values):
            raise ValueError("fact values must be unique")
        object.__setattr__(self, "values", values)

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "values": list(self.values),
            "width": self.width,
            "detail": self.detail,
        }

    @classmethod
    def from_json(cls, data: dict) -> "Fact":
        return cls(
            kind=str(data["kind"]),
            target=str(data["target"]),
            values=tuple(int(v) for v in data["values"]),
            width=int(data.get("width", 0)),
            detail=str(data.get("detail", "")),
        )


@dataclass(frozen=True)
class FactSheet:
    """An immutable set of facts with a content hash.

    The hash is order-insensitive (sheets are sets), which is what
    lets :func:`~repro.flow.cache.flow_fingerprint` treat the sheet
    as one more input chunk.
    """

    facts: "tuple[Fact, ...]" = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "facts", tuple(self.facts))

    def __len__(self) -> int:
        return len(self.facts)

    def __iter__(self):
        return iter(self.facts)

    def sheet_hash(self) -> str:
        payload = tuple(
            sorted(
                (f.kind, f.target, f.width, f.values, f.detail)
                for f in self.facts
            )
        )
        blob = repr(("fact-sheet", FACTS_VERSION) + payload).encode()
        return hashlib.sha256(blob).hexdigest()

    def select(self, kind: str, target: "str | None" = None):
        """Facts of one kind, optionally narrowed to one target."""
        return [
            f
            for f in self.facts
            if f.kind == kind and (target is None or f.target == target)
        ]

    def without(self, kind: str, target: "str | None" = None) -> "FactSheet":
        """A sheet with the matching facts dropped (how a pass that
        invalidates a fact kind retires it)."""
        return FactSheet(
            tuple(
                f
                for f in self.facts
                if f.kind != kind
                or (target is not None and f.target != target)
            )
        )

    def replacing(self, fact: Fact) -> "FactSheet":
        """A sheet with ``fact`` added, displacing any existing fact of
        the same kind and target (how a re-encoding pass translates a
        fact instead of staling it)."""
        kept = tuple(
            f
            for f in self.facts
            if not (f.kind == fact.kind and f.target == fact.target)
        )
        return FactSheet(kept + (fact,))

    def to_json(self) -> dict:
        return {
            "version": FACTS_VERSION,
            "facts": [f.to_json() for f in self.facts],
        }

    @classmethod
    def from_json(cls, data: dict) -> "FactSheet":
        return cls(
            tuple(Fact.from_json(item) for item in data.get("facts", ()))
        )


# ---------------------------------------------------------------------
# Deriving sheets from IRs
# ---------------------------------------------------------------------
def derive_facts(ir, allowed_inputs=None) -> FactSheet:
    """Run the dataflow analyses over a controller IR and package the
    provable results as a :class:`FactSheet`.

    Args:
        ir: any ControllerIR (``ir_stats()['kind']`` dispatch).
        allowed_inputs: an optional input predicate for FSM
            reachability (see
            :func:`repro.check.dataflow.allowed_input_words`).

    Returns:
        A sheet with ``reachable-states`` / ``reachable-addresses``
        facts as applicable; empty for kinds the analyses cannot
        strengthen (dense truth tables, bare dispatch tables).
    """
    from repro.check import dataflow

    kind = str(ir.ir_stats()["kind"])
    facts: list[Fact] = []
    if kind == "fsm":
        reachable = dataflow.fsm_reachable_states(ir, allowed_inputs)
        facts.append(
            Fact(
                kind="reachable-states",
                target=ir.ir_hash(),
                values=tuple(sorted(reachable)),
                width=ir.state_bits,
                detail=f"fsm {ir.name!r}",
            )
        )
    elif kind in ("program", "microcode"):
        program = ir
        if kind == "program":
            try:
                program = ir.assemble()
            except (ValueError, KeyError):
                return FactSheet()
        try:
            reachable = dataflow.microcode_reachable(program)
        except KeyError:
            return FactSheet()
        if reachable:
            facts.append(
                Fact(
                    kind="reachable-addresses",
                    target=program.ir_hash(),
                    values=tuple(sorted(reachable)),
                    width=program.addr_bits,
                    detail=f"microcode ({program.length} words)",
                )
            )
    return FactSheet(tuple(facts))


def register_values_fact(
    reg_name: str, width: int, values, detail: str = ""
) -> Fact:
    """A ``register-values`` fact: the latch bus ``reg_name`` (bits
    ``reg_name[0]..reg_name[width-1]``) only ever holds ``values``."""
    return Fact(
        kind="register-values",
        target=reg_name,
        values=tuple(sorted(values)),
        width=width,
        detail=detail,
    )


def table_dontcare_fact(table, dc_rows, detail: str = "") -> Fact:
    """A ``table-dontcare`` fact: the rows (addresses) in ``dc_rows``
    of ``table`` are never presented, so their outputs are free."""
    return Fact(
        kind="table-dontcare",
        target=table.ir_hash(),
        values=tuple(sorted(dc_rows)),
        width=table.num_inputs,
        detail=detail,
    )


# ---------------------------------------------------------------------
# SAT discharge
# ---------------------------------------------------------------------
def latch_bus(aig, reg_name: str):
    """The latches forming register ``reg_name`` in bit order, found
    by the ``name[bit]`` latch naming convention (plus a bare ``name``
    single-bit fallback).  ``None`` when absent or gappy."""
    by_bit: dict[int, object] = {}
    for latch in aig.latches:
        name = latch.name
        if name == reg_name:
            by_bit.setdefault(0, latch)
            continue
        if name.startswith(reg_name + "[") and name.endswith("]"):
            index = name[len(reg_name) + 1:-1]
            if index.isdigit():
                by_bit[int(index)] = latch
    if not by_bit:
        return None
    width = max(by_bit) + 1
    if sorted(by_bit) != list(range(width)):
        return None
    return [by_bit[i] for i in range(width)]


def register_care(aig, reg_name: str, values):
    """A care predicate over the latch bus ``reg_name``, in the shape
    :func:`repro.aig.dontcare.dc_rewrite` accepts as ``external_care``:
    ``(sources, table)`` where ``sources`` are the bus's latch-output
    node ids sorted ascending and bit ``m`` of ``table`` is 1 exactly
    when the source assignment ``m`` decodes to a value in ``values``.
    ``None`` when the bus is absent or a value exceeds its width.
    """
    bus = latch_bus(aig, reg_name)
    if bus is None:
        return None
    width = len(bus)
    value_set = {int(v) for v in values}
    if not value_set or any(
        v < 0 or v >= (1 << width) for v in value_set
    ):
        return None
    nodes = [latch.node for latch in bus]
    order = sorted(range(width), key=lambda bit: nodes[bit])
    sources = tuple(nodes[bit] for bit in order)
    table = 0
    for value in value_set:
        minterm = 0
        for position, bit in enumerate(order):
            if (value >> bit) & 1:
                minterm |= 1 << position
        table |= 1 << minterm
    return sources, table


def discharge_register_invariant(aig, reg_name: str, values) -> bool:
    """Prove, via :mod:`repro.sat`, that the latch bus ``reg_name``
    never leaves ``values``: the reset value is in the set and the
    set is closed under the bus's next-state logic (an inductive
    invariant).  Returns ``False`` -- consumer must not use the fact
    -- whenever the proof does not go through, including when the bus
    cannot be found or the claimed set is malformed.
    """
    from repro.sat.cnf import CnfBuilder

    bus = latch_bus(aig, reg_name)
    if bus is None:
        return False
    width = len(bus)
    value_set = {int(v) for v in values}
    if not value_set or any(
        v < 0 or v >= (1 << width) for v in value_set
    ):
        return False
    reset = 0
    for index, latch in enumerate(bus):
        reset |= (latch.reset_value & 1) << index
    if reset not in value_set:
        return False

    builder = CnfBuilder()
    solver = builder.solver
    state_vars = [
        builder.input_var(f"latch:{latch.name}") for latch in bus
    ]
    next_lits = [builder.encode(aig, latch.next_lit) for latch in bus]

    # state-in-set selector: sel -> OR of per-value match variables.
    members = []
    for value in sorted(value_set):
        member = solver.new_var()
        for index, var in enumerate(state_vars):
            literal = var if (value >> index) & 1 else -var
            solver.add_clause([-member, literal])
        members.append(member)
    sel = solver.new_var()
    solver.add_clause([-sel] + members)

    # next-not-in-set selector: notsel -> next differs from every
    # member value in at least one bit.
    notsel = solver.new_var()
    for value in sorted(value_set):
        clause = [-notsel]
        for index, literal in enumerate(next_lits):
            clause.append(
                -literal if (value >> index) & 1 else literal
            )
        solver.add_clause(clause)

    # SAT would be a concrete in-set state stepping out of the set --
    # a counterexample to the claim.  UNSAT is the discharge.
    return not solver.solve(assumptions=[sel, notsel])
