"""The spec typechecker: validate a pipeline spec without executing.

A pipeline spec is a little program over the pass registry; this
module is its typechecker.  Given a spec string (or an already-built
:class:`~repro.flow.manager.PassManager`) and optionally what the
pipeline will be fed (input stage, controller-IR kind, bindings), it
simulates the stage machine ``ctrl -> rtl -> aig -> netlist`` against
the registered :class:`~repro.flow.schema.PassSchema` contracts and
reports every problem as a :class:`~repro.check.diagnostics.Diagnostic`
-- unknown passes and options (with near-miss suggestions), option
type/range violations, stage-ordering errors, IR-kind mismatches, and
missing bindings.

``PassManager.compile`` and the compile server's ``POST /compile``
handler run this checker up front, so a statically-invalid pipeline is
rejected with structured diagnostics instead of burning a worker; the
error messages deliberately embed the exact phrases the runtime stage
check would have raised (``needs an elaborated AIG``, ...), so nothing
downstream has to care *when* the problem was caught.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.check.diagnostics import Diagnostic
from repro.flow.combinators import Conditional, Repeat
from repro.flow.core import (
    PASS_REGISTRY,
    PASS_SCHEMAS,
    STAGES,
    FlowError,
    is_controller_ir,
    make_pass,
    registered_pass_names,
    suggest_name,
)
from repro.flow.manager import _parse_item, _parse_options, _split_items
from repro.flow.schema import IR_KIND_CLASSES, PassSchema, check_option

_STAGE_ORDER = {stage: index for index, stage in enumerate(STAGES)}

#: The exact runtime phrases of :meth:`repro.flow.core.Pass.requirement`,
#: embedded in CHK105 messages so static rejections read like the
#: runtime errors they preempt.
_REQUIREMENTS = {
    "ctrl": "needs a controller IR not yet lowered to RTL",
    "rtl": "needs an un-elaborated RTL module",
    "aig": "needs an elaborated AIG",
    "netlist": "needs a mapped netlist",
}

#: How to advance one stage, for CHK105 suggestions.
_LOWERING_HINTS = {
    ("ctrl", "rtl"): (
        "insert a lowering pass (fsm_encode, table_rom, table_minimize, "
        "or dispatch_rom) before this item"
    ),
    ("rtl", "aig"): "insert 'elaborate' before this item",
    ("aig", "netlist"): "insert 'map' before this item",
}


@dataclass(frozen=True)
class _Item:
    """One pipeline entry, normalized for simulation."""

    location: str
    name: str
    params: "dict | None"  # None: options did not parse / not rendered
    times: "int | None"
    conditional: bool
    instantiate: bool  # try the constructor for cross-option checks


def _strip_code(message: str) -> str:
    """Drop a leading ``[CHKxxx] `` tag from a registry error message
    (the structured diagnostic carries the code already)."""
    if message.startswith("[CHK") and "] " in message:
        return message.split("] ", 1)[1]
    return message


def input_stage_of(*, ctrl=None, module=None, aig=None):
    """The stage a compile with these inputs starts at, plus the
    controller-IR kind when at the ``ctrl`` stage.

    Mirrors :meth:`repro.flow.core.Pass.ready`: a controller IR only
    counts while no lowered representation exists, RTL only before
    elaboration.  All-``None`` inputs return ``(None, None)`` --
    statically unknown, so the checker only validates the pipeline's
    internal consistency.
    """
    if aig is not None:
        return "aig", None
    if module is not None:
        return "rtl", None
    if ctrl is not None:
        kind = None
        if is_controller_ir(ctrl):
            try:
                kind = str(ctrl.ir_stats()["kind"])
            except Exception:
                kind = None
        return "ctrl", kind
    return None, None


def check_spec(
    spec: str,
    *,
    input_stage: "str | None" = None,
    ir_kind: "str | None" = None,
    has_bindings: "bool | None" = None,
    has_facts: "bool | None" = None,
) -> "list[Diagnostic]":
    """Typecheck a pipeline spec string.

    Args:
        spec: the comma-separated pipeline spec.
        input_stage: the stage the design enters at (one of
            :data:`~repro.flow.core.STAGES`), or ``None`` when unknown
            -- the first pass's stage then seeds the simulation, so
            only internal ordering is checked.
        ir_kind: the controller-IR ``kind`` tag of the input, when
            ``input_stage`` is ``"ctrl"`` and it is known.
        has_bindings: whether the compile will carry configuration
            bindings; ``None`` skips the CHK107 check.
        has_facts: whether the compile will carry a
            :class:`~repro.check.facts.FactSheet`; truthy enables the
            CHK710 pass-effect contract check.

    Returns:
        Every finding, in spec order (parse problems first for an
        unsplittable spec).
    """
    items, diagnostics = _parse_spec(spec)
    diagnostics.extend(
        _simulate(
            items,
            input_stage=input_stage,
            ir_kind=ir_kind,
            has_bindings=has_bindings,
            has_facts=has_facts,
        )
    )
    return diagnostics


def check_manager(
    manager,
    *,
    input_stage: "str | None" = None,
    ir_kind: "str | None" = None,
    has_bindings: "bool | None" = None,
    has_facts: "bool | None" = None,
) -> "list[Diagnostic]":
    """Typecheck an already-built :class:`PassManager`.

    The constructors have run, so options are already valid; this
    checks stage ordering, IR kinds, and bindings.  The walk stops at
    the first pass whose name is not in the registry (hand-built or
    test-local passes carry no schema, and guessing their stage
    contract would produce false positives).
    """
    items: list[_Item] = []
    for position, entry in enumerate(manager, start=1):
        conditional = isinstance(entry, Conditional)
        inner = entry.inner if conditional else entry
        if isinstance(inner, Repeat):
            inner = inner.inner
        name = getattr(inner, "name", None)
        if name not in PASS_REGISTRY:
            break
        items.append(
            _Item(
                location=f"pass {position} ({name})",
                name=name,
                params=None,
                times=None,
                conditional=conditional,
                instantiate=False,
            )
        )
    return _simulate(
        items,
        input_stage=input_stage,
        ir_kind=ir_kind,
        has_bindings=has_bindings,
        has_facts=has_facts,
    )


def check_job(job) -> "list[Diagnostic]":
    """Typecheck one :class:`~repro.flow.parallel.CompileJob` -- the
    compile server's admission check.  A job's pipeline may be a spec
    string or a manager; its inputs determine the entry stage."""
    input_stage, ir_kind = input_stage_of(
        ctrl=job.ctrl, module=job.module, aig=job.aig
    )
    has_bindings = job.bindings is not None
    has_facts = getattr(job, "facts", None) is not None
    if isinstance(job.pipeline, str):
        return check_spec(
            job.pipeline,
            input_stage=input_stage,
            ir_kind=ir_kind,
            has_bindings=has_bindings,
            has_facts=has_facts,
        )
    return check_manager(
        job.pipeline,
        input_stage=input_stage,
        ir_kind=ir_kind,
        has_bindings=has_bindings,
        has_facts=has_facts,
    )


def _parse_spec(spec: str) -> "tuple[list[_Item], list[Diagnostic]]":
    """Split a spec into normalized items, reporting parse problems as
    CHK100 diagnostics (an unparseable item is dropped; the rest of
    the spec still simulates)."""
    diagnostics: list[Diagnostic] = []
    try:
        raw_items = _split_items(spec)
    except FlowError as exc:
        return [], [
            Diagnostic(
                code="CHK100",
                severity="error",
                location=f"pipeline spec {spec!r}",
                message=str(exc),
            )
        ]
    items: list[_Item] = []
    for position, item in enumerate(raw_items, start=1):
        location = f"item {position} ({item!r})"
        try:
            name, opts, times, cond = _parse_item(item)
            params = _parse_options(opts, item)
        except FlowError as exc:
            diagnostics.append(
                Diagnostic(
                    code="CHK100",
                    severity="error",
                    location=location,
                    message=str(exc),
                )
            )
            continue
        if times is not None and times < 1:
            diagnostics.append(
                Diagnostic(
                    code="CHK100",
                    severity="error",
                    location=location,
                    message=f"repeat count must be >= 1 in {item!r}",
                )
            )
            times = None
        items.append(
            _Item(
                location=location,
                name=name,
                params=params,
                times=times,
                conditional=cond,
                instantiate=True,
            )
        )
    return items, diagnostics


def _check_options(item: _Item, schema: PassSchema) -> "list[Diagnostic]":
    """Option-level checks for one item: unknown names (CHK102), type
    mismatches (CHK103), range/choice violations and anything else the
    constructor rejects (CHK104)."""
    diagnostics: list[Diagnostic] = []
    params = item.params or {}
    if schema.options:
        for key in sorted(set(params) - set(schema.options)):
            hint = suggest_name(key, schema.options)
            diagnostics.append(
                Diagnostic(
                    code="CHK102",
                    severity="error",
                    location=item.location,
                    message=(
                        f"pass {item.name!r} has no option {key!r}; "
                        f"accepted: {', '.join(sorted(schema.options))}"
                    ),
                    suggestion=None if hint is None
                    else f"did you mean {hint!r}?",
                )
            )
        for key in sorted(set(params) & set(schema.options)):
            problem = check_option(schema.options[key], key, params[key])
            if problem is None:
                continue
            kind, message = problem
            diagnostics.append(
                Diagnostic(
                    code="CHK103" if kind == "type" else "CHK104",
                    severity="error",
                    location=item.location,
                    message=f"pass {item.name!r}: {message}",
                )
            )
    if diagnostics or not item.instantiate:
        return diagnostics
    # Per-option checks passed (or the schema declares no options):
    # the constructor is the authority on cross-option constraints
    # ("a case-statement FSM cannot be flexible") and on options of
    # schema-less passes.
    try:
        make_pass(item.name, **params)
    except FlowError as exc:
        diagnostics.append(
            Diagnostic(
                code="CHK104",
                severity="error",
                location=item.location,
                message=_strip_code(str(exc)),
            )
        )
    return diagnostics


def _simulate(
    items: "list[_Item]",
    *,
    input_stage: "str | None",
    ir_kind: "str | None",
    has_bindings: "bool | None",
    has_facts: "bool | None" = None,
) -> "list[Diagnostic]":
    """Walk the stage machine over normalized items."""
    diagnostics: list[Diagnostic] = []
    current = input_stage
    kind = ir_kind if input_stage == "ctrl" else None
    # Pass-effect contract tracking (CHK710): a compile that carries a
    # fact sheet starts with fresh facts; a pass declaring
    # ``may_reencode_state`` without ``requires_facts`` stales them
    # (it changes the encoding without translating the sheet), and any
    # later ``requires_facts`` consumer is flagged.
    facts_fresh = bool(has_facts)
    for item in items:
        if item.name not in PASS_REGISTRY:
            hint = suggest_name(item.name, PASS_REGISTRY)
            diagnostics.append(
                Diagnostic(
                    code="CHK101",
                    severity="error",
                    location=item.location,
                    message=(
                        f"unknown pass {item.name!r}; registered passes: "
                        f"{', '.join(registered_pass_names())}"
                    ),
                    suggestion=None if hint is None
                    else f"did you mean {hint!r}?",
                )
            )
            continue  # an unknown pass cannot move the stage
        schema = PASS_SCHEMAS.get(item.name) or PassSchema(
            stage=PASS_REGISTRY[item.name].stage
        )
        diagnostics.extend(_check_options(item, schema))
        stage = schema.stage
        if current is None:
            # Unknown entry point: the first concrete pass seeds the
            # simulation, and only internal ordering is checked.
            current = stage
        if stage != current:
            if item.conditional:
                continue  # `name?` skips instead of erroring
            hint = _LOWERING_HINTS.get((current, stage))
            if hint is None and _STAGE_ORDER[stage] < _STAGE_ORDER[current]:
                hint = "move this pass earlier in the pipeline"
            diagnostics.append(
                Diagnostic(
                    code="CHK105",
                    severity="error",
                    location=item.location,
                    message=(
                        f"pass {item.name!r} (stage {stage}) "
                        f"{_REQUIREMENTS[stage]}, but the design here is "
                        f"at the {current} stage"
                    ),
                    suggestion=hint,
                )
            )
            # Assume the pass somehow ran, to limit cascades: one
            # misplaced 'elaborate' should not flag the whole tail.
            current = schema.out_stage
            kind = None
            continue
        if stage == "ctrl":
            if (
                kind is not None
                and schema.ir_kinds is not None
                and kind not in schema.ir_kinds
            ):
                wanted = " or ".join(
                    f"a {IR_KIND_CLASSES.get(k, k)}" for k in schema.ir_kinds
                )
                diagnostics.append(
                    Diagnostic(
                        code="CHK106",
                        severity="error",
                        location=item.location,
                        message=(
                            f"pass {item.name!r} needs {wanted} controller "
                            f"IR (kind "
                            f"{' or '.join(repr(k) for k in schema.ir_kinds)}"
                            f"), but the input IR kind is {kind!r}"
                        ),
                    )
                )
            if schema.produces_kind is not None:
                kind = schema.produces_kind
        if (
            item.times is not None
            and item.times > 1
            and schema.out_stage != stage
        ):
            # Repeating a lowering: iteration 2 finds its input gone.
            diagnostics.append(
                Diagnostic(
                    code="CHK105",
                    severity="error",
                    location=item.location,
                    message=(
                        f"pass {item.name!r} (stage {stage}) "
                        f"{_REQUIREMENTS[stage]}, but repeating it "
                        f"{item.times} times leaves the design at the "
                        f"{schema.out_stage} stage after the first run"
                    ),
                    suggestion="drop the repeat count",
                )
            )
        if schema.needs_bindings and has_bindings is False:
            diagnostics.append(
                Diagnostic(
                    code="CHK107",
                    severity="error",
                    location=item.location,
                    message=(
                        f"pass {item.name!r} needs configuration bindings "
                        f"on the context (compile(bindings=...) or "
                        f"CompileJob.bindings), and this compile has none"
                    ),
                )
            )
        if has_facts:
            if schema.requires_facts and not facts_fresh:
                diagnostics.append(
                    Diagnostic(
                        code="CHK710",
                        severity="warning",
                        location=item.location,
                        message=(
                            f"pass {item.name!r} consumes proven facts, "
                            f"but an earlier pass re-encoded state "
                            f"without translating the fact sheet; the "
                            f"facts here are stale and will be skipped"
                        ),
                        suggestion=(
                            "move the fact consumer before the "
                            "re-encoding pass, or use a re-encoding "
                            "pass that declares requires_facts"
                        ),
                    )
                )
            if schema.may_reencode_state:
                # A re-encoder that also declares requires_facts
                # translates the sheet through the re-encoding and
                # keeps it fresh; one that does not stales it.
                facts_fresh = schema.requires_facts and facts_fresh
        current = schema.out_stage
        if current != "ctrl":
            kind = None
    return diagnostics
