"""Standard pipeline builders.

:func:`default_pipeline` assembles, from a
:class:`~repro.synth.dc_options.CompileOptions`, exactly the flow the
old monolithic ``DesignCompiler.compile`` ran -- same passes, same
order, same convergence rules -- which is what keeps the facade
byte-compatible with the seed implementation.  The smaller builders
(:func:`optimize_loop`, :func:`retime_stage`, :func:`state_folding`)
are the stages experiments compose directly.
"""

from __future__ import annotations

from repro.flow.core import Pass
from repro.flow.manager import PassManager
from repro.flow.passes import (
    ElaboratePass,
    EncodePass,
    FsmInferPass,
    HonourAnnotationsPass,
    OptimizeLoop,
    RetimeStage,
    SizePass,
    StateFoldingStage,
    TechMapPass,
)
from repro.synth.dc_options import CompileOptions


def optimize_loop(
    effort_rounds: int = 2, support_limit: int | None = None
) -> Pass:
    """Sweep/balance/rewrite rounds until AND count converges."""
    return OptimizeLoop(effort_rounds, support_limit)


def retime_stage(
    effort_rounds: int = 2,
    support_limit: int | None = None,
    max_rounds: int = 4,
) -> Pass:
    """Backward retiming with re-optimization after each move."""
    return RetimeStage(effort_rounds, support_limit, max_rounds)


def state_folding(
    effort_rounds: int = 2, support_limit: int | None = None
) -> Pass:
    """Annotation-driven state folding, re-optimizing if it fired."""
    return StateFoldingStage(effort_rounds, support_limit)


def run_default_flow(module, options: CompileOptions, library=None, cache=None):
    """Run the facade's flow on ``module`` and return the context.

    Seeds the context with ``options.state_annotations`` -- the one
    piece of a ``CompileOptions`` that is design state rather than
    pipeline structure -- so this helper, unlike calling
    ``default_pipeline(options).compile(module)`` bare, honours the
    options completely.  ``cache`` is a
    :class:`~repro.flow.cache.CompileCache`; see
    :meth:`PassManager.compile`.
    """
    return default_pipeline(options).compile(
        module,
        annotations=list(options.state_annotations),
        library=library,
        cache=cache,
    )


def default_pipeline(options: CompileOptions) -> PassManager:
    """The facade's flow, assembled from the classic option knobs.

    Note that ``options.state_annotations`` are *context* state, not
    pipeline structure: pass them to ``compile(annotations=...)`` (or
    use :func:`run_default_flow`, which does) -- a bare
    ``default_pipeline(options).compile(module)`` runs un-annotated.
    """
    pipeline = PassManager()
    if options.infer_fsm:
        pipeline.append(FsmInferPass())
    pipeline.append(HonourAnnotationsPass())
    if options.fsm_encoding != "same":
        pipeline.append(EncodePass(options.fsm_encoding))
    pipeline.append(
        ElaboratePass(
            fold_sync_reset=options.fold_sync_reset or options.retime
        )
    )
    effort = options.effort_rounds
    limit = options.sweep_support_limit
    pipeline.append(optimize_loop(effort, limit))
    if options.retime:
        pipeline.append(retime_stage(effort, limit))
    if options.use_state_folding:
        pipeline.append(state_folding(effort, limit))
    pipeline.append(TechMapPass())
    pipeline.append(SizePass(options.clock_period_ns))
    return pipeline
