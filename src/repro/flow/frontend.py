"""The registered frontend (``ctrl``-stage) passes.

The paper's thesis is that chip generators should emit controller
*intermediate representations* -- FSM tables, microcode programs,
dispatch tables -- and let the tool chain transform them.  This module
is that thesis applied to the flow itself: the lowerings from
controller IR to RTL, which used to be ad-hoc calls inside the figure
drivers, are registered passes, so a complete run is one spec string
from IR to sized netlist.

======================  =======  =============================================
spec name               stage    lowering
======================  =======  =============================================
``fsm_encode``          ctrl     :class:`~repro.controllers.fsm.FsmSpec` ->
                                 case or table RTL, optional state
                                 re-encoding (``style=onehot|gray|binary``)
``table_rom``           ctrl     :class:`~repro.tables.truthtable.TruthTable`
                                 -> bound ROM read
``table_minimize``      ctrl     TruthTable -> two-level SOP RTL
                                 (``engine=isop|qm|espresso``)
``microcode_pack``      ctrl     :class:`~repro.controllers.assembler.Program`
                                 -> :class:`AssembledProgram` (IR -> IR)
``dispatch_rom``        ctrl     AssembledProgram -> bound (or flexible)
                                 sequencer RTL + generator uPC annotation
``pe_bind``             rtl      bind context ``bindings`` into the module's
                                 configuration memories (the Auto flow)
======================  =======  =============================================

A ``ctrl`` pass requires a context holding a controller IR and no
lowered module yet; running one on an RTL or AIG context raises
:class:`~repro.flow.core.FlowError` naming the pass.  Every lowering
leaves ``ctx.ctrl`` in place for provenance and records frontend
:class:`~repro.flow.core.CtrlStats` on its :class:`PassRecord`.
"""

from __future__ import annotations

from repro.controllers.assembler import AssembledProgram, Program
from repro.controllers.fsm import FsmSpec
from repro.controllers.fsm_rtl import fsm_to_case_rtl, fsm_to_table_rtl
from repro.controllers.sequencer import SequencerSpec, generate_sequencer
from repro.flow.core import FlowContext, FlowError, Pass, register_pass
from repro.flow.schema import Option, PassSchema
from repro.synth.dc_options import ENCODING_STYLES, StateAnnotation
from repro.synth.encode import reencode_register
from repro.tables.rtl import SOP_ENGINES, table_to_rom_rtl, table_to_sop_rtl
from repro.tables.truthtable import TruthTable

#: RTL realisations ``fsm_encode`` can lower to.
FSM_REALIZATIONS = ("table", "case")


def _require_ir(pass_: Pass, ctx: FlowContext, ir_type: type):
    """The context's controller IR, type-checked against the pass."""
    if not isinstance(ctx.ctrl, ir_type):
        raise FlowError(
            f"pass {pass_.name!r} needs a {ir_type.__name__} controller "
            f"IR, got {type(ctx.ctrl).__name__}"
        )
    return ctx.ctrl


@register_pass(
    "fsm_encode",
    PassSchema(
        stage="ctrl",
        produces="rtl",
        ir_kinds=("fsm",),
        options={
            "style": Option(
                "str",
                default="same",
                choices=tuple(ENCODING_STYLES),
                help="re-encode the state register while lowering",
            ),
            "realize": Option(
                "str",
                default="table",
                choices=FSM_REALIZATIONS,
                help="case statement vs table-memory RTL",
            ),
            "flexible": Option(
                "bool", default=False,
                help="keep the table memories programmable",
            ),
        },
        may_reencode_state=True,
        requires_facts=True,
    ),
)
class FsmEncodePass(Pass):
    """Lower an :class:`FsmSpec` to RTL in the chosen realisation.

    ``realize="case"`` emits the vendor-style case statement (the
    paper's *direct* implementation); ``realize="table"`` emits the
    Fig. 2 table memories, bound as ROMs (``flexible=true`` keeps them
    programmable).  A ``style`` other than ``same`` additionally
    re-encodes the state register at lowering time -- onehot vs gray
    encoding ablations are one spec-string edit -- and asserts the
    matching state annotation, exactly what a generator that knows its
    own tables can do.
    """

    stage = "ctrl"

    def __init__(
        self,
        style: str = "same",
        realize: str = "table",
        flexible: bool = False,
    ) -> None:
        super().__init__()
        if style not in ENCODING_STYLES:
            raise ValueError(f"unknown fsm encoding {style!r}")
        if realize not in FSM_REALIZATIONS:
            raise ValueError(
                f"unknown realisation {realize!r}; known: "
                f"{', '.join(FSM_REALIZATIONS)}"
            )
        if flexible and realize == "case":
            raise ValueError("a case-statement FSM cannot be flexible")
        self.style = style
        self.realize = realize
        self.flexible = flexible

    def params(self) -> dict:
        params = {}
        if self.style != "same":
            params["style"] = self.style
        if self.realize != "table":
            params["realize"] = self.realize
        if self.flexible:
            params["flexible"] = True
        return params

    def run(self, ctx: FlowContext) -> None:
        spec = _require_ir(self, ctx, FsmSpec)
        if self.realize == "case":
            module = fsm_to_case_rtl(spec)
        else:
            module = fsm_to_table_rtl(spec, flexible=self.flexible)
        self.note(
            f"fsm_encode: {spec.name} -> {self.realize} rtl "
            f"({spec.num_states} states)"
        )
        old_width = module.regs["state"].width
        if self.style != "same":
            values = tuple(range(spec.num_states))
            module, annotation = reencode_register(
                module, "state", values, self.style
            )
            ctx.annotations = [
                a for a in ctx.annotations if a.reg_name != "state"
            ] + [annotation]
            self.note(
                f"fsm_encode: state -> {self.style} "
                f"({spec.num_states} states)"
            )
        ctx.module = module
        self._lower_facts(ctx, spec, old_width)

    def _lower_facts(self, ctx: FlowContext, spec: FsmSpec, old_width: int) -> None:
        """Lower a ``reachable-states`` fact about this FSM into a
        ``register-values`` fact on the ``state`` register.

        This is the generator-knowledge handoff: the dataflow engine
        proved the set on the IR (:func:`repro.check.facts.derive_facts`),
        and the lowering -- the only pass that knows how states become
        register codes, including a ``style`` re-encoding -- rewrites
        it in the coordinates the AIG-stage consumers understand.
        """
        if ctx.facts is None:
            return
        from repro.check.facts import register_values_fact
        from repro.synth.encode import make_encoding

        for fact in ctx.facts.select("reachable-states", spec.ir_hash()):
            encoding = make_encoding(
                tuple(range(spec.num_states)), self.style, old_width
            )
            if any(v not in encoding.old_to_new for v in fact.values):
                continue  # a fact about states the spec does not have
            ctx.facts = ctx.facts.replacing(
                register_values_fact(
                    "state",
                    encoding.new_width,
                    tuple(encoding.old_to_new[v] for v in fact.values),
                    detail=fact.detail,
                )
            )
            self.note(
                f"fsm_encode: fact: state reaches {len(fact.values)} of "
                f"{spec.num_states} states"
            )


@register_pass(
    "table_rom",
    PassSchema(
        stage="ctrl",
        produces="rtl",
        ir_kinds=("table",),
        options={
            "name": Option(
                "str", default="table", help="generated module name"
            ),
        },
    ),
)
class TableRomPass(Pass):
    """Lower a :class:`TruthTable` to a bound ROM read (the flexible
    style after binding -- elaboration partially evaluates it)."""

    stage = "ctrl"

    def __init__(self, name: str = "table") -> None:
        super().__init__()
        self.module_name = name

    def params(self) -> dict:
        return {} if self.module_name == "table" else {"name": self.module_name}

    def run(self, ctx: FlowContext) -> None:
        table = _require_ir(self, ctx, TruthTable)
        ctx.module = table_to_rom_rtl(table, self.module_name)
        self.note(
            f"table_rom: {table.depth}x{table.num_outputs} table -> rom"
        )


@register_pass(
    "table_minimize",
    PassSchema(
        stage="ctrl",
        produces="rtl",
        ir_kinds=("table",),
        options={
            "engine": Option(
                "str",
                default="isop",
                choices=tuple(SOP_ENGINES),
                help="two-level minimization engine",
            ),
            "name": Option("str", default="sop", help="generated module name"),
        },
        requires_facts=True,
    ),
)
class TableMinimizePass(Pass):
    """Lower a :class:`TruthTable` to direct two-level SOP RTL,
    minimized by the chosen engine (``isop``, exact ``qm``, or
    ``espresso`` improvement) -- the paper's hand-written style, and
    the table-engine ablation knob.

    A ``table-dontcare`` fact matching the table's content hash frees
    the never-addressed rows during minimization.  The assisted
    lowering is only kept after the SAT harness proves it equivalent
    to the plain one on every cared-for row
    (:func:`repro.sat.equiv.check_equivalence_under_care`) *and* it
    elaborates to strictly fewer AND nodes; otherwise the plain
    lowering ships, so a fact can never make the result worse."""

    stage = "ctrl"

    def __init__(self, engine: str = "isop", name: str = "sop") -> None:
        super().__init__()
        if engine not in SOP_ENGINES:
            raise ValueError(
                f"unknown SOP engine {engine!r}; known: "
                f"{', '.join(SOP_ENGINES)}"
            )
        self.engine = engine
        self.module_name = name

    def params(self) -> dict:
        params = {}
        if self.engine != "isop":
            params["engine"] = self.engine
        if self.module_name != "sop":
            params["name"] = self.module_name
        return params

    def run(self, ctx: FlowContext) -> None:
        table = _require_ir(self, ctx, TruthTable)
        module = table_to_sop_rtl(table, self.module_name, self.engine)
        module = self._try_facts(ctx, table, module)
        ctx.module = module
        self.note(
            f"table_minimize: {table.depth}x{table.num_outputs} table -> "
            f"sop ({self.engine})"
        )

    def _try_facts(self, ctx: FlowContext, table: TruthTable, plain):
        """The fact-assisted lowering, when it survives its discharge."""
        if ctx.facts is None:
            return plain
        facts = ctx.facts.select("table-dontcare", table.ir_hash())
        if not facts:
            return plain
        from repro.sat.equiv import check_equivalence_under_care
        from repro.synth.elaborate import elaborate
        from repro.tables.rtl import _sop_expr
        from repro.rtl.builder import ModuleBuilder

        dc_set = 0
        for fact in facts:
            for row in fact.values:
                if 0 <= row < table.depth:
                    dc_set |= 1 << row
        care_set = ((1 << table.depth) - 1) & ~dc_set
        if not dc_set or not care_set:
            return plain
        assisted = table_to_sop_rtl(
            table, self.module_name, self.engine, dc_set=dc_set
        )
        plain_aig = elaborate(plain).aig
        assisted_aig = elaborate(assisted).aig
        if assisted_aig.num_ands >= plain_aig.num_ands:
            return plain  # the freedom bought nothing: ship the plain SOP
        care_builder = ModuleBuilder("care")
        addr = care_builder.input("addr", table.num_inputs)
        care_builder.output(
            "care", _sop_expr(addr, care_set, table.num_inputs, "isop")
        )
        care_aig = elaborate(care_builder.build()).aig
        verdict = check_equivalence_under_care(
            plain_aig, assisted_aig, care_aig, "care[0]"
        )
        if not verdict.equivalent:
            self.note(
                "table_minimize: fact-assisted sop failed its SAT "
                "discharge (kept the plain lowering)"
            )
            return plain
        self.note(
            f"table_minimize: fact freed {table.depth - bin(care_set).count('1')} "
            f"rows, -{plain_aig.num_ands - assisted_aig.num_ands} ands "
            f"(SAT-discharged)"
        )
        return assisted


@register_pass(
    "microcode_pack",
    PassSchema(
        stage="ctrl",
        ir_kinds=("program",),
        produces_kind="microcode",
        options={
            "addr_bits": Option(
                "int", default=None, nullable=True, min=1,
                help="microcode address width (default: fit the program)",
            ),
            "cond_bits": Option(
                "int", default=2, min=1, help="condition-select field width"
            ),
        },
    ),
)
class MicrocodePackPass(Pass):
    """Assemble a symbolic :class:`Program` into its bit-level
    :class:`AssembledProgram` image (IR -> IR: labels resolve, fields
    pack, the attached dispatch table rides along)."""

    stage = "ctrl"

    def __init__(
        self, addr_bits: int | None = None, cond_bits: int = 2
    ) -> None:
        super().__init__()
        if addr_bits is not None and addr_bits < 1:
            raise ValueError(f"addr_bits must be >= 1, got {addr_bits}")
        if cond_bits < 1:
            raise ValueError(f"cond_bits must be >= 1, got {cond_bits}")
        self.addr_bits = addr_bits
        self.cond_bits = cond_bits

    def params(self) -> dict:
        params = {}
        if self.addr_bits is not None:
            params["addr_bits"] = self.addr_bits
        if self.cond_bits != 2:
            params["cond_bits"] = self.cond_bits
        return params

    def run(self, ctx: FlowContext) -> None:
        program = _require_ir(self, ctx, Program)
        ctx.ctrl = program.assemble(
            addr_bits=self.addr_bits, cond_bits=self.cond_bits
        )
        self.note(
            f"microcode_pack: {ctx.ctrl.length} instructions -> "
            f"{ctx.ctrl.word_width}-bit words @ {ctx.ctrl.addr_bits} "
            f"addr bits"
        )


@register_pass(
    "dispatch_rom",
    PassSchema(
        stage="ctrl",
        produces="rtl",
        ir_kinds=("microcode",),
        options={
            "name": Option(
                "str", default="useq", help="generated module name"
            ),
            "flexible": Option(
                "bool", default=False,
                help="programmable config memories instead of ROMs",
            ),
            "annotate": Option(
                "bool", default=True,
                help="assert the generator-side uPC reachability annotation",
            ),
            "num_conditions": Option(
                "int", default=None, nullable=True, min=1,
                help="condition inputs (default: the program's)",
            ),
        },
    ),
)
class DispatchRomPass(Pass):
    """Lower an :class:`AssembledProgram` to the Fig. 3 sequencer RTL.

    The microcode and dispatch table become ROMs (``flexible=true``
    keeps them programmable config memories instead), and -- for bound
    programs -- the generator-side uPC reachability annotation is
    asserted on the context, the paper's "straightforward for a
    generator to produce these annotations" in pass form.
    """

    stage = "ctrl"

    def __init__(
        self,
        name: str = "useq",
        flexible: bool = False,
        annotate: bool = True,
        num_conditions: int | None = None,
    ) -> None:
        super().__init__()
        self.module_name = name
        self.flexible = flexible
        self.annotate = annotate
        if num_conditions is not None and num_conditions < 1:
            raise ValueError(
                f"num_conditions must be >= 1, got {num_conditions}"
            )
        self.num_conditions = num_conditions

    def params(self) -> dict:
        params = {}
        if self.module_name != "useq":
            params["name"] = self.module_name
        if self.flexible:
            params["flexible"] = True
        if not self.annotate:
            params["annotate"] = False
        if self.num_conditions is not None:
            params["num_conditions"] = self.num_conditions
        return params

    def run(self, ctx: FlowContext) -> None:
        program = _require_ir(self, ctx, AssembledProgram)
        num_conditions = self.num_conditions or max(
            1, len(program.condition_names)
        )
        spec = SequencerSpec(
            name=self.module_name,
            format=program.format,
            addr_bits=program.addr_bits,
            cond_bits=program.cond_bits,
            num_conditions=num_conditions,
            opcode_bits=(
                0 if program.dispatch is None else program.dispatch.opcode_bits
            ),
            flexible=self.flexible,
        )
        generated = generate_sequencer(
            spec, program=None if self.flexible else program
        )
        ctx.module = generated.module
        self.note(
            f"dispatch_rom: {program.length} instructions -> "
            f"{'flexible' if self.flexible else 'bound'} sequencer "
            f"{spec.name!r}"
        )
        annotation = generated.upc_annotation
        if self.annotate and annotation is not None:
            if not any(
                a.reg_name == annotation.reg_name for a in ctx.annotations
            ):
                ctx.annotations.append(annotation)
                self.note(
                    f"dispatch_rom: upc reaches "
                    f"{len(annotation.values)} addresses"
                )


@register_pass(
    "pe_bind",
    PassSchema(
        stage="rtl",
        needs_bindings=True,
        options={
            "annotate": Option(
                "bool", default=False,
                help="derive reachability annotations from the bound design",
            ),
            "regs": Option(
                "str", default=None, nullable=True,
                help="comma-separated registers to annotate (default: all)",
            ),
        },
    ),
)
class PeBindPass(Pass):
    """Bind the context's configuration contents into the module.

    The bindings (``{memory name: row words}``) are design state, not
    pipeline structure: seed them through ``compile(bindings=...)`` or
    :class:`~repro.flow.parallel.CompileJob.bindings`, the same way
    state annotations travel.  ``annotate=true`` additionally derives
    reachability annotations from the bound design (``regs`` narrows
    the derivation to a comma-separated register list) -- the Auto
    flow of the Fig. 9 study as one pipeline item.
    """

    stage = "rtl"

    def __init__(self, annotate: bool = False, regs: str | None = None) -> None:
        super().__init__()
        self.annotate = annotate
        self.regs = regs

    def params(self) -> dict:
        params = {}
        if self.annotate:
            params["annotate"] = True
        if self.regs is not None:
            params["regs"] = self.regs
        return params

    def run(self, ctx: FlowContext) -> None:
        # Imported here: repro.pe re-exports the specialize drivers,
        # which import repro.flow -- a module-level import would cycle
        # during package initialisation.
        from repro.pe.annotations import derive_annotations
        from repro.pe.bind import bind_tables

        if ctx.bindings is None:
            raise FlowError(
                f"pass {self.name!r} needs configuration bindings on the "
                f"context (compile(bindings=...) or CompileJob.bindings)"
            )
        ctx.module = bind_tables(ctx.module, ctx.bindings)
        self.note(f"pe_bind: bound {len(ctx.bindings)} table(s)")
        if self.annotate:
            regs = None if self.regs is None else [
                name for name in self.regs.split(",") if name
            ]
            for annotation in derive_annotations(ctx.module, regs):
                if not any(
                    a.reg_name == annotation.reg_name for a in ctx.annotations
                ):
                    ctx.annotations.append(annotation)
                    self.note(
                        f"pe_bind: {annotation.reg_name} reaches "
                        f"{len(annotation.values)} states"
                    )
