"""Pass combinators: repetition, conditionals, and fixed points.

These are what turn a flat pass list into a real pipeline language:

* :class:`Repeat` -- run a pass a fixed number of times (``rewrite[2]``
  in spec syntax);
* :class:`Conditional` -- skip a pass, instead of erroring, when it is
  not applicable (``retime?``);
* :func:`until_converged` / :class:`FixedPoint` -- iterate a body of
  passes until a metric stops improving (the old
  ``DesignCompiler._optimize`` convergence loop, generalized);
* :class:`WhileProgress` -- re-run a driver pass (plus follow-up
  passes) for as long as the driver reports structural progress (the
  retime and state-folding stages of the classic flow).
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Callable, Sequence

from repro.flow.core import FlowContext, FlowError, Pass, PassRecord


class Repeat(Pass):
    """Run ``inner`` exactly ``times`` times."""

    def __init__(self, inner: Pass, times: int) -> None:
        super().__init__()
        if times < 1:
            raise ValueError(f"repeat count must be >= 1, got {times}")
        self.inner = inner
        self.times = times
        self.name = f"{inner.name}[{times}]"
        self.stage = inner.stage

    def ready(self, ctx: FlowContext) -> bool:
        return self.inner.ready(ctx)

    def applies(self, ctx: FlowContext) -> bool:
        return self.inner.applies(ctx)

    def run(self, ctx: FlowContext) -> None:
        for _ in range(self.times):
            self.inner.execute(ctx)

    def spec(self) -> str:
        return f"{self.inner.spec()}[{self.times}]"


class Conditional(Pass):
    """Run ``inner`` only when it is ready and applicable.

    Where a bare pass *errors* on a stage mismatch, a conditional entry
    records a skipped :class:`PassRecord` and moves on -- that is what
    the ``?`` suffix in a pipeline spec means.
    """

    def __init__(self, inner: Pass) -> None:
        super().__init__()
        self.inner = inner
        self.name = f"{inner.name}?"
        self.stage = inner.stage

    def ready(self, ctx: FlowContext) -> bool:
        return True  # never errors; skipping is the whole point

    def execute(self, ctx: FlowContext) -> PassRecord:
        if self.inner.ready(ctx) and self.inner.applies(ctx):
            return self.inner.execute(ctx)
        record = PassRecord(
            name=self.name,
            stage=self.stage,
            wall_time_s=0.0,
            before=ctx.aig_stats(),
            after=ctx.aig_stats(),
            skipped=True,
        )
        ctx.records.append(record)
        return record

    def run(self, ctx: FlowContext) -> None:  # pragma: no cover
        raise AssertionError("Conditional overrides execute()")

    def spec(self) -> str:
        return f"{self.inner.spec()}?"


def _num_ands(ctx: FlowContext) -> int:
    assert ctx.aig is not None
    return ctx.aig.num_ands


class FixedPoint(Pass):
    """Iterate a body of AIG passes until a metric stops improving.

    Faithful generalization of the classic convergence loop: every
    round snapshots the metric, runs the body, and logs a
    ``label[round]: before -> after`` line.  A round that *grows* the
    metric (after the first round, with no structural progress flagged)
    is rejected -- the pre-round AIG is restored -- and iteration
    stops; a round that neither shrinks the metric nor makes progress
    is accepted and iteration stops.
    """

    stage = "aig"

    def __init__(
        self,
        passes: Sequence[Pass],
        max_rounds: int = 4,
        label: str = "optimize",
        metric: Callable[[FlowContext], int] | None = None,
    ) -> None:
        super().__init__()
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.passes = list(passes)
        self.max_rounds = max_rounds
        self.label = label
        self.metric = metric or _num_ands
        self.name = label

    def run(self, ctx: FlowContext) -> None:
        # The progress flag is shared context state; preserve the
        # caller's signal and report our own aggregate on exit so
        # fixed points nest (an inner loop's per-round resets must not
        # erase an outer combinator's view of what this body did).
        outer_progress = ctx.progress
        initial = self.metric(ctx)
        any_progress = False
        for round_index in range(self.max_rounds):
            start = time.perf_counter()
            round_start = len(ctx.records)
            before_aig = ctx.aig
            before_stats = ctx.aig_stats()
            before = self.metric(ctx)
            ctx.progress = False
            for item in self.passes:
                item.execute(ctx)
            after = self.metric(ctx)
            progress = ctx.progress
            any_progress = any_progress or progress
            ctx.emit(
                f"{self.label}[{round_index}]",
                f"{self.label}[{round_index}]: {before} -> "
                f"{after} ands, depth {ctx.aig.depth()}",
                before=before_stats,
                wall_time_s=time.perf_counter() - start,
            )
            if after >= before and round_index > 0 and not progress:
                ctx.aig = before_aig  # reject the growing round
                # Flag the round's records: their stats describe work
                # that was just rolled back (log lines untouched).
                ctx.records[round_start:] = [
                    replace(record, rejected=True)
                    for record in ctx.records[round_start:]
                ]
                break
            if after == before and not progress:
                break
        ctx.progress = (
            outer_progress or any_progress or self.metric(ctx) < initial
        )

    def spec(self) -> str:
        if self.metric is not _num_ands:
            # A callable has no faithful spec form, and spec() doubles
            # as the cache fingerprint: two loops differing only in
            # metric must never collide.  Register a named pass (like
            # OptimizeLoop) to make such a loop fingerprintable.
            raise FlowError(
                f"fixed point {self.label!r} with a custom metric has "
                f"no spec form"
            )
        body = ",".join(item.spec() for item in self.passes)
        return f"{self.label}({body})[{self.max_rounds}]"


def until_converged(
    *passes: Pass,
    max_rounds: int = 4,
    label: str = "optimize",
    metric: Callable[[FlowContext], int] | None = None,
) -> FixedPoint:
    """Fixed-point combinator over a body of passes (see
    :class:`FixedPoint` for the exact acceptance rule)."""
    return FixedPoint(passes, max_rounds=max_rounds, label=label, metric=metric)


class WhileProgress(Pass):
    """Re-run ``driver`` (then ``then``) while the driver progresses.

    Each round clears the context progress flag and executes the
    driver; if the driver did not flag progress the loop stops
    immediately (without running the follow-up passes).  This is the
    shape of the classic retime stage (retime, then re-optimize, up to
    four times) and of the state-folding stage (fold once, then
    re-optimize only if folding happened).
    """

    stage = "aig"

    def __init__(
        self,
        driver: Pass,
        then: Sequence[Pass] = (),
        max_rounds: int = 1,
        label: str | None = None,
    ) -> None:
        super().__init__()
        if max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
        self.driver = driver
        self.then = list(then)
        self.max_rounds = max_rounds
        self.name = label or f"{driver.name}_stage"

    def applies(self, ctx: FlowContext) -> bool:
        return self.driver.applies(ctx)

    def run(self, ctx: FlowContext) -> None:
        outer_progress = ctx.progress
        any_progress = False
        for _ in range(self.max_rounds):
            ctx.progress = False
            self.driver.execute(ctx)
            if not ctx.progress:
                break
            any_progress = True
            for item in self.then:
                item.execute(ctx)
        ctx.progress = outer_progress or any_progress

    def spec(self) -> str:
        body = ",".join(item.spec() for item in [self.driver] + self.then)
        return f"{self.name}({body})[{self.max_rounds}]"
