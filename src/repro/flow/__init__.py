"""``repro.flow`` -- a composable pass-pipeline API for synthesis.

The paper's argument is that explicit intermediate representations let
the tool chain transform controllers aggressively; this package applies
the same argument to the tool chain itself.  Instead of one monolithic
``compile`` function, the flow is a :class:`PassManager` over small
:class:`Pass` objects threading a :class:`FlowContext` (RTL module,
AIG, annotations, netlist, RNG seed) from elaboration to sized
netlist, in the style of MLIR's and Calyx's pass managers.

Quick tour::

    from repro.flow import PassManager, FlowContext
    from repro.flow.passes import ElaboratePass, TechMapPass, SizePass
    from repro.flow.pipeline import optimize_loop

    # String specs over the registry: repeats ([k]) and conditionals (?).
    comb = PassManager.parse("seq_sweep,tt_sweep,balance,rewrite[2]")
    ctx = comb.compile(aig=my_elaborated_aig)

    # Or compose pass objects, mixing in fixed-point stages.
    full = PassManager([
        ElaboratePass(),
        optimize_loop(effort_rounds=2),
        TechMapPass(),
        SizePass(clock_period_ns=5.0),
    ])
    ctx = full.compile(my_module)
    print(ctx.area.total, ctx.timing.critical_delay)
    for record in ctx.records:          # structured instrumentation
        print(record.name, record.wall_time_s, record.delta_ands)

New transforms plug in by registering a pass::

    @register_pass("my_pass")
    class MyPass(Pass):
        stage = "aig"
        def run(self, ctx):
            ctx.aig = my_transform(ctx.aig)

after which ``PassManager.parse("...,my_pass,...")`` just works.  The
``DesignCompiler`` facade in :mod:`repro.synth.compiler` is a thin
wrapper that builds :func:`~repro.flow.pipeline.default_pipeline` from
``CompileOptions`` -- same numbers, same logs, but every stage now
composable, reorderable, and individually timed.

Compiles are cacheable and parallelizable::

    from repro.flow import CompileCache, CompileJob, compile_many

    cache = CompileCache(".repro-cache")        # memory LRU + disk
    ctx = full.compile(my_module, cache=cache)  # fingerprint-keyed
    results = compile_many(                     # process-pool fan-out
        [CompileJob(i, full, module=m) for i, m in enumerate(modules)],
        workers=8, cache=cache,
    )

(see :mod:`repro.flow.cache` and :mod:`repro.flow.parallel`).
"""

from repro.flow.cache import (
    CacheBackend,
    CompileCache,
    LocalDirBackend,
    SnapshotPolicy,
    StageSnapshot,
    SweepStats,
    fingerprint_prefixes,
    flow_fingerprint,
    resolve_snapshot_policy,
    snapshot_key,
)
from repro.flow.combinators import (
    Conditional,
    FixedPoint,
    Repeat,
    WhileProgress,
    until_converged,
)
from repro.flow.core import (
    PASS_REGISTRY,
    AigStats,
    ControllerIR,
    CtrlStats,
    FlowContext,
    FlowError,
    Pass,
    PassRecord,
    is_controller_ir,
    make_pass,
    register_pass,
    registered_pass_names,
    render_log,
)
from repro.flow.manager import PassManager
from repro.flow.parallel import (
    CompileJob,
    CompileJobError,
    compile_many,
    default_workers,
)
from repro.flow.pipeline import (
    default_pipeline,
    optimize_loop,
    retime_stage,
    run_default_flow,
    state_folding,
)
from repro.flow.store import (
    RunDiff,
    RunRecord,
    RunStore,
    StoreError,
    diff_runs,
)

# Importing the pass modules populates the registry: the synthesis
# passes first, then the frontend (controller-IR) lowerings.
from repro.flow import passes as passes  # noqa: F401
from repro.flow import frontend as frontend  # noqa: F401

__all__ = [
    "AigStats",
    "CacheBackend",
    "CompileCache",
    "CompileJob",
    "CompileJobError",
    "Conditional",
    "ControllerIR",
    "CtrlStats",
    "FixedPoint",
    "FlowContext",
    "FlowError",
    "LocalDirBackend",
    "PASS_REGISTRY",
    "Pass",
    "PassManager",
    "PassRecord",
    "Repeat",
    "RunDiff",
    "RunRecord",
    "RunStore",
    "SnapshotPolicy",
    "StageSnapshot",
    "StoreError",
    "SweepStats",
    "WhileProgress",
    "compile_many",
    "default_pipeline",
    "default_workers",
    "diff_runs",
    "fingerprint_prefixes",
    "flow_fingerprint",
    "frontend",
    "is_controller_ir",
    "make_pass",
    "optimize_loop",
    "passes",
    "register_pass",
    "registered_pass_names",
    "render_log",
    "resolve_snapshot_policy",
    "retime_stage",
    "snapshot_key",
    "run_default_flow",
    "state_folding",
    "until_converged",
]
