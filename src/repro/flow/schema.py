"""Per-pass option schemas: the registry's static self-description.

Every pass registered with :func:`repro.flow.core.register_pass`
carries a :class:`PassSchema` describing what the pass consumes and
produces (stages, controller-IR kinds) and which options its
constructor accepts (:class:`Option`: type, default, range, choices).
The schema is what makes a pipeline spec *checkable without
executing*: :mod:`repro.check.spec` walks a spec against these
schemas to catch unknown passes, bad options, stage-ordering errors,
and IR-kind mismatches before any elaboration happens -- the paper's
analyzable-intent claim applied to the flow itself.

Schemas only encode constraints the constructors actually enforce;
they never tighten beyond the runtime behaviour, so a spec the
checker accepts is a spec the constructors accept.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

#: The controller-IR ``kind`` tags (from ``ir_stats()``) mapped to the
#: class a pass's runtime ``_require_ir`` check would name.  Used by
#: diagnostics so static messages match runtime ones.
IR_KIND_CLASSES = {
    "fsm": "FsmSpec",
    "table": "TruthTable",
    "program": "Program",
    "microcode": "AssembledProgram",
    "dispatch": "DispatchTable",
    "sequencer": "SequencerSpec",
}

#: Option value types a schema may declare.  ``float`` accepts ints
#: (the constructors do); ``bool`` is checked before ``int`` because
#: Python bools *are* ints but ``encode{style=true}`` is still wrong.
OPTION_TYPES = ("int", "float", "str", "bool")


@dataclass(frozen=True)
class Option:
    """One constructor option of a registered pass.

    Args:
        type: one of :data:`OPTION_TYPES`.
        default: the constructor's default value (``None`` for
            required-less passes; informational only).
        nullable: whether ``none`` is an accepted value.
        min: inclusive lower bound, when the constructor enforces one.
        max: inclusive upper bound.
        exclusive_min: exclusive lower bound (``size`` wants a
            strictly positive clock period).
        choices: the closed set of accepted values -- a tuple, or a
            zero-argument callable returning the current set (used by
            ``map`` so the schema tracks library registration).
        help: a one-line description for ``repro.check registry``.
    """

    type: str
    default: object = None
    nullable: bool = False
    min: "int | float | None" = None
    max: "int | float | None" = None
    exclusive_min: "int | float | None" = None
    choices: "tuple | Callable[[], list] | None" = None
    help: str = ""

    def __post_init__(self) -> None:
        if self.type not in OPTION_TYPES:
            raise ValueError(
                f"option type must be one of {OPTION_TYPES}, "
                f"got {self.type!r}"
            )

    def choice_values(self) -> "tuple | None":
        """The current accepted-value set, resolving callables."""
        if self.choices is None:
            return None
        if callable(self.choices):
            return tuple(self.choices())
        return tuple(self.choices)

    def describe(self) -> dict:
        """A JSON-safe form for registry introspection."""
        out: dict = {"type": self.type, "default": self.default}
        if self.nullable:
            out["nullable"] = True
        if self.min is not None:
            out["min"] = self.min
        if self.max is not None:
            out["max"] = self.max
        if self.exclusive_min is not None:
            out["exclusive_min"] = self.exclusive_min
        choices = self.choice_values()
        if choices is not None:
            out["choices"] = list(choices)
        if self.help:
            out["help"] = self.help
        return out


_TYPE_CLASSES = {
    "int": int,
    "float": (int, float),
    "str": str,
    "bool": bool,
}


def check_option(option: Option, name: str, value) -> "tuple[str, str] | None":
    """Statically validate one option value against its schema.

    Returns:
        ``None`` when the value is acceptable, else ``(kind, message)``
        where ``kind`` is ``"type"`` (wrong value type) or ``"range"``
        (right type, out of bounds / not in the choice set).
    """
    if value is None:
        if option.nullable:
            return None
        return ("type", f"option {name} expects {option.type}, got none")
    if isinstance(value, bool) != (option.type == "bool"):
        return (
            "type",
            f"option {name} expects {option.type}, "
            f"got {type(value).__name__} {value!r}",
        )
    if not isinstance(value, _TYPE_CLASSES[option.type]):
        return (
            "type",
            f"option {name} expects {option.type}, "
            f"got {type(value).__name__} {value!r}",
        )
    if option.min is not None and value < option.min:
        return ("range", f"option {name} must be >= {option.min}, got {value}")
    if option.max is not None and value > option.max:
        return ("range", f"option {name} must be <= {option.max}, got {value}")
    if option.exclusive_min is not None and value <= option.exclusive_min:
        return (
            "range",
            f"option {name} must be > {option.exclusive_min}, got {value}",
        )
    choices = option.choice_values()
    if choices is not None and value not in choices:
        return (
            "range",
            f"option {name} must be one of "
            f"{', '.join(repr(c) for c in choices)}; got {value!r}",
        )
    return None


@dataclass(frozen=True)
class PassSchema:
    """The static contract of one registered pass.

    Args:
        stage: the representation the pass consumes (one of
            :data:`repro.flow.core.STAGES`).
        produces: the representation it leaves the context in;
            ``None`` means the pass stays at ``stage`` (the common
            case -- only lowerings like ``elaborate`` and ``map``
            advance the stage).
        ir_kinds: for ``ctrl``-stage passes, the controller-IR
            ``kind`` tags the pass accepts (``None``: any IR).
        produces_kind: for ``ctrl``-to-``ctrl`` transforms, the IR
            kind left behind (``microcode_pack`` turns a ``program``
            into ``microcode``).
        needs_bindings: the pass requires configuration bindings on
            the context (``pe_bind``).
        options: option name -> :class:`Option`.
        preserves_equivalence: the pass leaves the design's sequential
            behaviour intact (every shipped pass does; a future lossy
            approximation pass would declare ``False`` so the contract
            checker can flag it ahead of equivalence-checked stages).
        may_reencode_state: the pass may change how register values
            are encoded (``encode``, state folding, retiming), which
            invalidates ``register-values`` facts unless the pass also
            declares ``requires_facts`` (meaning it translates the
            sheet through the re-encoding instead of staling it).
        requires_facts: the pass reads the context's
            :class:`~repro.check.facts.FactSheet` when one is present.
            ``check_manager`` reports CHK710 when such a pass runs
            after an undeclared re-encoding -- the facts it would read
            are stale (consumers re-discharge and skip them at
            runtime, so this is a warning, not a miscompile).
    """

    stage: str = "aig"
    produces: "str | None" = None
    ir_kinds: "tuple[str, ...] | None" = None
    produces_kind: "str | None" = None
    needs_bindings: bool = False
    options: "dict[str, Option]" = field(default_factory=dict)
    preserves_equivalence: bool = True
    may_reencode_state: bool = False
    requires_facts: bool = False

    @property
    def out_stage(self) -> str:
        """The stage the context is at after this pass runs."""
        return self.produces if self.produces is not None else self.stage

    def describe(self) -> dict:
        """A JSON-safe form for registry introspection."""
        out: dict = {"stage": self.stage, "produces": self.out_stage}
        if self.ir_kinds is not None:
            out["ir_kinds"] = list(self.ir_kinds)
        if self.produces_kind is not None:
            out["produces_kind"] = self.produces_kind
        if self.needs_bindings:
            out["needs_bindings"] = True
        if not self.preserves_equivalence:
            out["preserves_equivalence"] = False
        if self.may_reencode_state:
            out["may_reencode_state"] = True
        if self.requires_facts:
            out["requires_facts"] = True
        out["options"] = {
            name: option.describe()
            for name, option in sorted(self.options.items())
        }
        return out
