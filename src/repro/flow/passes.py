"""The registered synthesis passes.

Each pass wraps one engine from :mod:`repro.synth`, :mod:`repro.aig`,
or :mod:`repro.tech` and declares the representation it consumes:

======================  =======  =============================================
spec name               stage    engine
======================  =======  =============================================
``fsm_infer``           rtl      :func:`repro.synth.fsm_infer.infer_fsms`
``honour_annotations``  rtl      :func:`repro.synth.dc_options.effective_annotations`
``encode``              rtl      :func:`repro.synth.encode.reencode_register`
``elaborate``           rtl      :func:`repro.synth.elaborate.elaborate`
``seq_sweep``           aig      :func:`repro.synth.sweep.seq_sweep`
``tt_sweep``            aig      :func:`repro.aig.rewrite.tt_sweep`
``balance``             aig      :func:`repro.aig.balance.balance`
``rewrite``             aig      :func:`repro.aig.rewrite.rewrite`
``resub``               aig      :func:`repro.aig.resub.resub`
``dc_rewrite``          aig      :func:`repro.aig.dontcare.dc_rewrite`
``retime``              aig      :func:`repro.synth.retime.retime_backward`
``stateprop``           aig      :func:`repro.synth.stateprop.fold_states`
``optimize``            aig      fixed point of sweep/balance/rewrite
``map``                 aig      :func:`repro.tech.mapper.map_aig`
``size``                netlist  sizing + STA + area report
======================  =======  =============================================

The message strings passes :meth:`~repro.flow.core.Pass.note` are the
exact legacy ``CompileResult.log`` lines; do not reword them casually.
"""

from __future__ import annotations

import random

from repro.aig.balance import balance
from repro.aig.dontcare import dc_rewrite
from repro.aig.graph import AIG
from repro.aig.kernel import KERNEL_CHOICES
from repro.aig.resub import MAX_RESUB_K, resub
from repro.aig.rewrite import rewrite, tt_sweep
from repro.flow.combinators import FixedPoint, WhileProgress
from repro.flow.core import (
    FlowContext,
    FlowError,
    Pass,
    describe_registry,
    register_pass,
)
from repro.flow.schema import Option, PassSchema
from repro.synth.dc_options import (
    ENCODING_STYLES,
    StateAnnotation,
    effective_annotations,
)
from repro.synth.elaborate import elaborate
from repro.synth.encode import reencode_register
from repro.synth.fsm_infer import infer_fsms
from repro.synth.retime import retime_backward
from repro.synth.stateprop import fold_states
from repro.synth.statesets import ValueSet
from repro.synth.sweep import seq_sweep
from repro.tech.cells import Library, default_library
from repro.tech.mapper import map_aig
from repro.tech.sizing import size_for_clock
from repro.tech.sta import analyze_timing


@register_pass("fsm_infer", PassSchema(stage="rtl"))
class FsmInferPass(Pass):
    """Recognise case-style FSMs and add their state sets as
    annotations (user annotations on the same register win)."""

    stage = "rtl"

    def run(self, ctx: FlowContext) -> None:
        inferred = infer_fsms(ctx.module)
        ctx.inferred_fsms = list(inferred)
        for fsm in inferred:
            if any(a.reg_name == fsm.reg_name for a in ctx.annotations):
                continue
            ctx.annotations.append(StateAnnotation(fsm.reg_name, fsm.states))
            self.note(
                f"fsm_infer: {fsm.reg_name} has {fsm.num_states} "
                f"reachable states"
            )


@register_pass("honour_annotations", PassSchema(stage="rtl"))
class HonourAnnotationsPass(Pass):
    """Drop annotations the tool cannot honour (unknown registers,
    state vectors wider than the 32-bit cap) with a warning."""

    stage = "rtl"

    def run(self, ctx: FlowContext) -> None:
        reg_widths = {
            name: reg.width for name, reg in ctx.module.regs.items()
        }
        ctx.annotations = effective_annotations(ctx.annotations, reg_widths)


@register_pass(
    "encode",
    PassSchema(
        stage="rtl",
        options={
            "style": Option(
                "str",
                default="binary",
                choices=tuple(ENCODING_STYLES),
                help="target state encoding for annotated registers",
            ),
        },
        may_reencode_state=True,
        requires_facts=True,
    ),
)
class EncodePass(Pass):
    """Re-encode every annotated state register (``set_fsm_encoding``).

    Declares ``may_reencode_state`` *and* ``requires_facts``: any
    ``register-values`` fact on a re-encoded register is translated
    through the encoding map (or retired when it no longer fits), so
    the sheet stays honest downstream."""

    stage = "rtl"

    def __init__(self, style: str = "binary") -> None:
        super().__init__()
        if style not in ENCODING_STYLES:
            raise ValueError(f"unknown fsm encoding {style!r}")
        self.style = style

    def params(self) -> dict:
        return {"style": self.style} if self.style != "binary" else {}

    def applies(self, ctx: FlowContext) -> bool:
        return self.style != "same" and bool(ctx.annotations)

    def run(self, ctx: FlowContext) -> None:
        if self.style == "same":
            return
        reencoded: list[StateAnnotation] = []
        for annotation in ctx.annotations:
            old_width = ctx.module.regs[annotation.reg_name].width
            ctx.module, new_annotation = reencode_register(
                ctx.module,
                annotation.reg_name,
                annotation.values,
                self.style,
            )
            reencoded.append(new_annotation)
            self.note(
                f"encode: {annotation.reg_name} -> "
                f"{self.style} ({len(annotation.values)} states)"
            )
            self._translate_facts(ctx, annotation, old_width)
        ctx.annotations = reencoded

    def _translate_facts(
        self, ctx: FlowContext, annotation: StateAnnotation, old_width: int
    ) -> None:
        """Carry ``register-values`` facts through the re-encoding.

        The fact's values map through the same
        :func:`~repro.synth.encode.make_encoding` table the register
        rewrite used; a fact mentioning a value outside the annotated
        set has no image and is retired instead of guessed at.
        """
        if ctx.facts is None:
            return
        from repro.check.facts import register_values_fact
        from repro.synth.encode import make_encoding

        for fact in ctx.facts.select("register-values", annotation.reg_name):
            encoding = make_encoding(
                tuple(annotation.values), self.style, old_width
            )
            if any(v not in encoding.old_to_new for v in fact.values):
                ctx.facts = ctx.facts.without(
                    "register-values", annotation.reg_name
                )
                self.note(
                    f"encode: fact {annotation.reg_name!r} outside the "
                    f"annotated set (retired)"
                )
                continue
            ctx.facts = ctx.facts.replacing(
                register_values_fact(
                    annotation.reg_name,
                    encoding.new_width,
                    tuple(encoding.old_to_new[v] for v in fact.values),
                    detail=fact.detail,
                )
            )


@register_pass(
    "elaborate",
    PassSchema(
        stage="rtl",
        produces="aig",
        options={
            "fold_sync_reset": Option(
                "bool",
                default=False,
                help="constant-propagate the synchronous reset state",
            ),
        },
    ),
)
class ElaboratePass(Pass):
    """Elaborate RTL to a sequential AIG (bound tables partially
    evaluate here by construction)."""

    stage = "rtl"

    def __init__(self, fold_sync_reset: bool = False) -> None:
        super().__init__()
        self.fold_sync_reset = fold_sync_reset

    def params(self) -> dict:
        return {"fold_sync_reset": True} if self.fold_sync_reset else {}

    def run(self, ctx: FlowContext) -> None:
        ctx.elaboration = elaborate(
            ctx.module, fold_sync_reset=self.fold_sync_reset
        )
        ctx.aig = ctx.elaboration.aig
        self.note(f"elaborate: {ctx.aig.stats()}")


@register_pass("seq_sweep", PassSchema(stage="aig"))
class SeqSweepPass(Pass):
    """Remove stuck/duplicate registers; flags progress when it does."""

    def run(self, ctx: FlowContext) -> None:
        ctx.aig, removed = seq_sweep(ctx.aig)
        if removed:
            self.note(f"seq_sweep: removed {removed} registers")
            ctx.mark_progress()


@register_pass(
    "tt_sweep",
    PassSchema(
        stage="aig",
        options={
            "support_limit": Option(
                "int",
                default=None,
                nullable=True,
                min=1,
                help="skip nodes whose cone support exceeds this",
            ),
        },
    ),
)
class TtSweepPass(Pass):
    """Functional sweep: merge nodes with identical truth tables."""

    def __init__(self, support_limit: int | None = None) -> None:
        super().__init__()
        if support_limit is not None and support_limit < 1:
            raise ValueError(
                f"support_limit must be None or >= 1, got {support_limit}"
            )
        self.support_limit = support_limit

    def params(self) -> dict:
        if self.support_limit is None:
            return {}
        return {"support_limit": self.support_limit}

    def run(self, ctx: FlowContext) -> None:
        ctx.aig = tt_sweep(ctx.aig, support_limit=self.support_limit)


@register_pass("balance", PassSchema(stage="aig"))
class BalancePass(Pass):
    """Tree-balance AND cones to reduce depth."""

    def run(self, ctx: FlowContext) -> None:
        ctx.aig = balance(ctx.aig)


def _kernel_option() -> Option:
    """The ``kernel=`` option of the truth-table passes.

    Registered in the schema so ``repro.check`` typechecks it, but
    deliberately EXCLUDED from every ``params()``: backends produce
    byte-identical results, so the choice must stay invisible to
    ``flow_fingerprint`` -- a compile cached under one backend is valid
    under the other.
    """
    return Option(
        "str",
        default=None,
        nullable=True,
        choices=KERNEL_CHOICES,
        help="truth-table kernel backend (fingerprint-invisible)",
    )


def _check_kernel(kernel) -> None:
    if kernel is not None and kernel not in KERNEL_CHOICES:
        raise ValueError(
            f"kernel must be one of {', '.join(KERNEL_CHOICES)}, "
            f"got {kernel!r}"
        )


@register_pass(
    "rewrite",
    PassSchema(
        stage="aig",
        options={
            "k": Option("int", default=4, help="cut input size"),
            "max_cuts": Option(
                "int", default=6, help="cuts enumerated per node"
            ),
            "kernel": _kernel_option(),
        },
    ),
)
class RewritePass(Pass):
    """Cut-based rewriting against precomputed NPN structures."""

    def __init__(
        self, k: int = 4, max_cuts: int = 6, kernel: str | None = None
    ) -> None:
        super().__init__()
        _check_kernel(kernel)
        self.k = k
        self.max_cuts = max_cuts
        self.kernel = kernel

    def params(self) -> dict:
        # `kernel` is intentionally absent: fingerprint-invisible.
        params = {}
        if self.k != 4:
            params["k"] = self.k
        if self.max_cuts != 6:
            params["max_cuts"] = self.max_cuts
        return params

    def run(self, ctx: FlowContext) -> None:
        ctx.aig = rewrite(
            ctx.aig, k=self.k, max_cuts=self.max_cuts, kernel=self.kernel
        )


@register_pass(
    "resub",
    PassSchema(
        stage="aig",
        options={
            "k": Option(
                "int",
                default=3,
                min=1,
                max=MAX_RESUB_K,
                help="divisors substituted per node",
            ),
            "max_divisors": Option(
                "int", default=16, min=1, help="candidate divisors per node"
            ),
            "support_limit": Option(
                "int", default=8, min=1,
                help="skip nodes whose cone support exceeds this",
            ),
            "kernel": _kernel_option(),
        },
    ),
)
class ResubPass(Pass):
    """Resubstitution: re-express nodes through existing divisors
    (:func:`repro.aig.resub.resub`); flags progress when the AND count
    actually dropped, so convergence loops can gate on it."""

    def __init__(
        self,
        k: int = 3,
        max_divisors: int = 16,
        support_limit: int = 8,
        kernel: str | None = None,
    ) -> None:
        super().__init__()
        if k < 1 or k > MAX_RESUB_K:
            raise ValueError(f"k must be in 1..{MAX_RESUB_K}, got {k}")
        if max_divisors < 1:
            raise ValueError(f"max_divisors must be >= 1, got {max_divisors}")
        if support_limit < 1:
            raise ValueError(
                f"support_limit must be >= 1, got {support_limit}"
            )
        _check_kernel(kernel)
        self.k = k
        self.max_divisors = max_divisors
        self.support_limit = support_limit
        self.kernel = kernel

    def params(self) -> dict:
        # `kernel` is intentionally absent: fingerprint-invisible.
        params = {}
        if self.k != 3:
            params["k"] = self.k
        if self.max_divisors != 16:
            params["max_divisors"] = self.max_divisors
        if self.support_limit != 8:
            params["support_limit"] = self.support_limit
        return params

    def run(self, ctx: FlowContext) -> None:
        before = ctx.aig.num_ands
        ctx.aig = resub(
            ctx.aig,
            k=self.k,
            max_divisors=self.max_divisors,
            support_limit=self.support_limit,
            kernel=self.kernel,
        )
        saved = before - ctx.aig.num_ands
        if saved:
            self.note(f"resub: -{saved} ands via divisor substitution")
            ctx.mark_progress()


@register_pass(
    "dc_rewrite",
    PassSchema(
        stage="aig",
        options={
            "k": Option("int", default=4, help="cut input size"),
            "max_cuts": Option(
                "int", default=6, help="cuts enumerated per node"
            ),
            "tfo_depth": Option(
                "int", default=2, min=1,
                help="fanout-window depth for observability don't-cares",
            ),
            "support_limit": Option(
                "int", default=10, min=1,
                help="skip windows whose support exceeds this",
            ),
            "kernel": _kernel_option(),
        },
        requires_facts=True,
    ),
)
class DcRewritePass(Pass):
    """Don't-care-aware rewriting (:func:`repro.aig.dontcare.dc_rewrite`):
    windowed satisfiability/observability don't-cares relax each cut's
    ON-set before ISOP resynthesis, accepting covers the exact
    ``rewrite`` pass must reject.

    When the context carries a :class:`~repro.check.facts.FactSheet`,
    every ``register-values`` fact is first re-discharged against the
    *current* AIG by the SAT harness
    (:func:`~repro.check.facts.discharge_register_invariant`); the
    proven ones become external care predicates that widen the
    windowed don't-cares.  The pass runs both the assisted and the
    unassisted rewrite and keeps the smaller result (ties go to the
    unassisted one), so a fact-carrying compile is byte-identical or
    strictly better, never worse."""

    def __init__(
        self,
        k: int = 4,
        max_cuts: int = 6,
        tfo_depth: int = 2,
        support_limit: int = 10,
        kernel: str | None = None,
    ) -> None:
        super().__init__()
        if tfo_depth < 1:
            raise ValueError(f"tfo_depth must be >= 1, got {tfo_depth}")
        if support_limit < 1:
            raise ValueError(
                f"support_limit must be >= 1, got {support_limit}"
            )
        _check_kernel(kernel)
        self.k = k
        self.max_cuts = max_cuts
        self.tfo_depth = tfo_depth
        self.support_limit = support_limit
        self.kernel = kernel

    def params(self) -> dict:
        # `kernel` is intentionally absent: fingerprint-invisible.
        params = {}
        if self.k != 4:
            params["k"] = self.k
        if self.max_cuts != 6:
            params["max_cuts"] = self.max_cuts
        if self.tfo_depth != 2:
            params["tfo_depth"] = self.tfo_depth
        if self.support_limit != 10:
            params["support_limit"] = self.support_limit
        return params

    def run(self, ctx: FlowContext) -> None:
        before = ctx.aig.num_ands
        plain = dc_rewrite(
            ctx.aig,
            k=self.k,
            max_cuts=self.max_cuts,
            tfo_depth=self.tfo_depth,
            support_limit=self.support_limit,
            kernel=self.kernel,
        )
        external_care = self._discharged_care(ctx)
        if external_care:
            assisted = dc_rewrite(
                ctx.aig,
                k=self.k,
                max_cuts=self.max_cuts,
                tfo_depth=self.tfo_depth,
                support_limit=self.support_limit,
                kernel=self.kernel,
                external_care=external_care,
            )
            if assisted.num_ands < plain.num_ands:
                self.note(
                    f"dc_rewrite: facts saved "
                    f"{plain.num_ands - assisted.num_ands} extra ands"
                )
                plain = assisted
        ctx.aig = plain
        saved = before - ctx.aig.num_ands
        if saved:
            self.note(f"dc_rewrite: -{saved} ands via don't-cares")
            ctx.mark_progress()

    def _discharged_care(self, ctx: FlowContext) -> list:
        """External care predicates from the context's fact sheet.

        Every ``register-values`` fact is re-proven against the AIG the
        pass is about to rewrite; facts whose invariant no longer
        discharges (stale after an undeclared re-encoding, or simply
        wrong) are skipped with a log line instead of being trusted.
        """
        if ctx.facts is None:
            return []
        from repro.check.facts import (
            discharge_register_invariant,
            register_care,
        )

        care = []
        for fact in ctx.facts.select("register-values"):
            if not discharge_register_invariant(
                ctx.aig, fact.target, fact.values
            ):
                self.note(
                    f"dc_rewrite: fact {fact.target!r} failed its SAT "
                    f"re-discharge (skipped)"
                )
                continue
            pair = register_care(ctx.aig, fact.target, fact.values)
            if pair is None:
                continue
            care.append(pair)
            self.note(
                f"dc_rewrite: fact {fact.target!r} discharged "
                f"({len(fact.values)} values)"
            )
        return care


@register_pass(
    "retime", PassSchema(stage="aig", may_reencode_state=True)
)
class RetimePass(Pass):
    """One backward-retime step; flags progress when flops moved.

    Declares ``may_reencode_state``: moved flops dissolve the named
    latch buses that ``register-values`` facts refer to, and the pass
    does not translate the sheet -- downstream fact consumers see
    their re-discharge fail and fall back (CHK710 flags the ordering
    statically)."""

    def run(self, ctx: FlowContext) -> None:
        ctx.aig, stats = retime_backward(ctx.aig)
        if stats.changed:
            self.note(
                f"retime: moved {stats.latches_removed} flops back to "
                f"{stats.latches_added} cone inputs"
            )
            ctx.mark_progress()


@register_pass(
    "stateprop",
    PassSchema(
        stage="aig",
        options={
            "rounds": Option(
                "int", default=2, min=1,
                help="value-set propagation rounds",
            ),
        },
    ),
)
class FoldStatesPass(Pass):
    """Fold unreachable states under the honoured annotations.

    Locates each annotated register's latch bus in the AIG (annotations
    whose bus optimization already dissolved are dropped with a log
    line), then runs randomized value-set propagation.  Flags progress
    when any folding actually ran, which is what gates the follow-up
    re-optimization in the default flow.
    """

    def __init__(self, rounds: int = 2) -> None:
        super().__init__()
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        self.rounds = rounds

    def params(self) -> dict:
        return {"rounds": self.rounds} if self.rounds != 2 else {}

    def applies(self, ctx: FlowContext) -> bool:
        return bool(ctx.annotations)

    def run(self, ctx: FlowContext) -> None:
        if not ctx.annotations:
            return
        buses = {}
        for annotation in ctx.annotations:
            if ctx.module is not None:
                width = (
                    ctx.module.regs[annotation.reg_name].width
                    if annotation.reg_name in ctx.module.regs
                    else None
                )
            else:
                # AIG-only context: recover the width from latch names.
                width = latch_bus_width(ctx.aig, annotation.reg_name)
            if width is None:
                continue
            bus = find_bus(ctx.aig, annotation.reg_name, width)
            if bus is None:
                self.note(
                    f"stateprop: bus {annotation.reg_name} no longer "
                    f"exists (dropped)"
                )
                continue
            buses[annotation.reg_name] = (
                bus,
                ValueSet(width, tuple(sorted(annotation.values))),
            )
        if not buses:
            return
        ctx.aig, ctx.fold_stats = fold_states(
            ctx.aig, buses, rounds=self.rounds, rng=random.Random(ctx.seed)
        )
        self.note(
            f"stateprop: {ctx.fold_stats.constants_proven} constants, "
            f"{ctx.fold_stats.merges_proven} merges over "
            f"{ctx.fold_stats.rounds} rounds"
        )
        ctx.mark_progress()


@register_pass(
    "optimize",
    PassSchema(
        stage="aig",
        options={
            "effort_rounds": Option(
                "int", default=2, min=1,
                help="maximum sweep/balance/rewrite rounds",
            ),
            "support_limit": Option(
                "int", default=None, nullable=True, min=1,
                help="tt_sweep support cap inside the loop",
            ),
        },
    ),
)
class OptimizeLoop(FixedPoint):
    """The classic sweep/balance/rewrite rounds, as a fixed point."""

    def __init__(
        self, effort_rounds: int = 2, support_limit: int | None = None
    ) -> None:
        self.effort_rounds = effort_rounds
        self.support_limit = support_limit
        super().__init__(
            [
                SeqSweepPass(),
                TtSweepPass(support_limit),
                BalancePass(),
                RewritePass(),
            ],
            max_rounds=effort_rounds,
            label="optimize",
        )

    def params(self) -> dict:
        params = {}
        if self.effort_rounds != 2:
            params["effort_rounds"] = self.effort_rounds
        if self.support_limit is not None:
            params["support_limit"] = self.support_limit
        return params

    def spec(self) -> str:
        # The registered name plus the effort knobs; the body is fixed.
        return Pass.spec(self)


@register_pass(
    "retime_stage",
    PassSchema(
        stage="aig",
        options={
            "effort_rounds": Option(
                "int", default=2, min=1,
                help="optimize rounds after each retime step",
            ),
            "support_limit": Option(
                "int", default=None, nullable=True, min=1,
                help="tt_sweep support cap inside the loop",
            ),
            "max_rounds": Option(
                "int", default=4, min=1, help="maximum retime steps"
            ),
        },
        may_reencode_state=True,
    ),
)
class RetimeStage(WhileProgress):
    """The classic retiming stage: backward retiming with
    re-optimization after each move, while flops keep moving.

    Registered so pipeline specs can place it freely -- the ROADMAP's
    "retime before vs after folding" ablations need no code changes.
    """

    def __init__(
        self,
        effort_rounds: int = 2,
        support_limit: int | None = None,
        max_rounds: int = 4,
    ) -> None:
        self.effort_rounds = effort_rounds
        self.support_limit = support_limit
        super().__init__(
            RetimePass(),
            then=[OptimizeLoop(effort_rounds, support_limit)],
            max_rounds=max_rounds,
            label="retime_stage",
        )

    def params(self) -> dict:
        params = {}
        if self.effort_rounds != 2:
            params["effort_rounds"] = self.effort_rounds
        if self.support_limit is not None:
            params["support_limit"] = self.support_limit
        if self.max_rounds != 4:
            params["max_rounds"] = self.max_rounds
        return params

    def spec(self) -> str:
        # The registered name plus the knobs; the body is fixed.
        return Pass.spec(self)


@register_pass(
    "state_folding",
    PassSchema(
        stage="aig",
        options={
            "effort_rounds": Option(
                "int", default=2, min=1,
                help="stateprop rounds and follow-up optimize rounds",
            ),
            "support_limit": Option(
                "int", default=None, nullable=True, min=1,
                help="tt_sweep support cap inside the loop",
            ),
        },
    ),
)
class StateFoldingStage(WhileProgress):
    """Annotation-driven state folding, re-optimizing if it fired --
    the classic flow's folding stage as a registered, spec-placeable
    pass."""

    def __init__(
        self, effort_rounds: int = 2, support_limit: int | None = None
    ) -> None:
        self.effort_rounds = effort_rounds
        self.support_limit = support_limit
        super().__init__(
            FoldStatesPass(effort_rounds),
            then=[OptimizeLoop(effort_rounds, support_limit)],
            max_rounds=1,
            label="state_folding",
        )

    def params(self) -> dict:
        params = {}
        if self.effort_rounds != 2:
            params["effort_rounds"] = self.effort_rounds
        if self.support_limit is not None:
            params["support_limit"] = self.support_limit
        return params

    def spec(self) -> str:
        return Pass.spec(self)


#: Libraries reconstructible from a spec string (``map{library=...}``).
#: Every entry is a zero-argument factory; registering here is what
#: makes a library addressable from pipeline specs, the ``techsweep``
#: experiment driver, and cache fingerprints.
LIBRARY_FACTORIES = {
    "tsmc90ish": Library.tsmc90ish,
    "generic45ish": Library.generic45ish,
    "lowpowerish": Library.lowpowerish,
}


def registered_library_names() -> list[str]:
    """The library names ``map{library=...}`` accepts, sorted."""
    return sorted(LIBRARY_FACTORIES)


def libraries_digest(names) -> str:
    """Content digest over the named registered libraries (sorted):
    the one definition of "what do these kits' cells hash to" shared
    by the cache fingerprint and the techsweep run-store records."""
    import hashlib

    digest = hashlib.sha256()
    for name in sorted(names):
        digest.update(
            repr((name, LIBRARY_FACTORIES[name]().canonical_hash())).encode()
        )
    return digest.hexdigest()


#: (registry snapshot the digest was computed from, digest) -- the
#: snapshot holds the factory objects themselves, so the identity
#: check can never be fooled by object-id reuse.
_LIBRARIES_DIGEST_CACHE: tuple[tuple, str] | None = None


def registered_libraries_digest() -> str:
    """One content digest over every registered library.

    ``map{library=...}`` renders a library into specs (and hence cache
    fingerprints) by *name*; the definitions behind the names live in
    code, which fingerprints deliberately do not cover -- so an edit
    to a registered library's cells would otherwise replay stale
    cached results under the new definition's label.  Mixing this
    digest into :func:`repro.flow.cache.flow_fingerprint` closes that
    hole: any change to any registered kit (or registering a new one)
    invalidates the cache.  Memoized per registry snapshot -- the
    factories are module-level code objects, so recomputation only
    happens when a test swaps one in.
    """
    global _LIBRARIES_DIGEST_CACHE
    snapshot = tuple(
        sorted(LIBRARY_FACTORIES.items(), key=lambda item: item[0])
    )
    if _LIBRARIES_DIGEST_CACHE is not None:
        cached_snapshot, cached_digest = _LIBRARIES_DIGEST_CACHE
        if len(cached_snapshot) == len(snapshot) and all(
            old[0] == new[0] and old[1] is new[1]
            for old, new in zip(cached_snapshot, snapshot)
        ):
            return cached_digest
    _LIBRARIES_DIGEST_CACHE = (snapshot, libraries_digest(LIBRARY_FACTORIES))
    return _LIBRARIES_DIGEST_CACHE[1]


@register_pass(
    "map",
    PassSchema(
        stage="aig",
        produces="netlist",
        options={
            # choices is the registry accessor itself, so the schema
            # can never drift from LIBRARY_FACTORIES.
            "library": Option(
                "str",
                default=None,
                nullable=True,
                choices=registered_library_names,
                help="registered cell library (default: context's)",
            ),
        },
    ),
)
class TechMapPass(Pass):
    """Technology-map the AIG onto the context's cell library.

    A library pinned on the pass (object or registered name) overrides
    the context's; it is rendered into ``spec()`` by name so pipelines
    differing only in library fingerprint differently.
    """

    def __init__(self, library: Library | str | None = None) -> None:
        super().__init__()
        if isinstance(library, str):
            try:
                library = LIBRARY_FACTORIES[library]()
            except KeyError:
                raise ValueError(
                    f"unknown library {library!r}; known: "
                    f"{', '.join(sorted(LIBRARY_FACTORIES))}"
                ) from None
        self.library = library

    def params(self) -> dict:
        if self.library is None:
            return {}
        factory = LIBRARY_FACTORIES.get(self.library.name)
        if (
            factory is None
            or factory().canonical_hash() != self.library.canonical_hash()
        ):
            # The name alone would render (and fingerprint) a modified
            # library as the stock one.
            raise FlowError(
                f"library {self.library.name!r} pinned on map is not a "
                f"registered library; the pipeline has no spec form"
            )
        return {"library": self.library.name}

    def run(self, ctx: FlowContext) -> None:
        # The same default the cache fingerprint resolves
        # (flow_fingerprint hashes default_library() for a None
        # library), so a changed default can never serve stale hits.
        library = self.library or ctx.library or default_library()
        ctx.netlist = map_aig(ctx.aig, library)
        self.note(f"map: {ctx.netlist.stats()}")


@register_pass(
    "size",
    PassSchema(
        stage="netlist",
        options={
            "clock_period_ns": Option(
                "float", default=5.0, exclusive_min=0,
                help="target clock period for sizing and STA",
            ),
        },
    ),
)
class SizePass(Pass):
    """Gate sizing against the clock target, then STA + area report."""

    stage = "netlist"

    def __init__(self, clock_period_ns: float = 5.0) -> None:
        super().__init__()
        if clock_period_ns <= 0:
            raise ValueError("clock period must be positive")
        self.clock_period_ns = clock_period_ns

    def params(self) -> dict:
        if self.clock_period_ns == 5.0:
            return {}
        return {"clock_period_ns": self.clock_period_ns}

    def run(self, ctx: FlowContext) -> None:
        ctx.sizing = size_for_clock(ctx.netlist, self.clock_period_ns)
        ctx.timing = analyze_timing(ctx.netlist)
        ctx.area = ctx.netlist.area_report()
        self.note(
            f"size: met={ctx.sizing.met} "
            f"achieved={ctx.sizing.achieved_delay:.3f} ns "
            f"({ctx.sizing.upsized} upsizes)"
        )


def describe() -> "dict[str, dict]":
    """Every registered pass with its stage and option schema
    (:func:`repro.flow.core.describe_registry`), after making sure the
    frontend lowerings have registered too -- importing this module
    alone must still describe the whole registry."""
    import repro.flow.frontend  # noqa: F401  (registration side effect)

    return describe_registry()


def latch_bus_width(aig: AIG, reg_name: str) -> int | None:
    """Infer a register's width from its ``name[bit]`` latches (used
    when a pipeline starts from an AIG with no RTL module attached)."""
    prefix = f"{reg_name}["
    bits = [
        int(latch.name[len(prefix):-1])
        for latch in aig.latches
        if latch.name.startswith(prefix) and latch.name.endswith("]")
        and latch.name[len(prefix):-1].isdigit()
    ]
    if not bits:
        return None
    return max(bits) + 1


def find_bus(aig: AIG, reg_name: str, width: int) -> list[int] | None:
    """Locate the latch-output literals of a register by name."""
    by_name = {latch.name: latch.node << 1 for latch in aig.latches}
    bus = []
    for bit in range(width):
        lit = by_name.get(f"{reg_name}[{bit}]")
        if lit is None:
            return None
        bus.append(lit)
    return bus
