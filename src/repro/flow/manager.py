"""The pass manager: an ordered pipeline of passes over one context.

A :class:`PassManager` can be built three ways:

* directly from pass objects -- ``PassManager([ElaboratePass(), ...])``;
* from a string spec over the global registry --
  ``PassManager.parse("seq_sweep,tt_sweep,balance,rewrite[2],retime?")``
  where ``name{key=value,...}`` sets constructor parameters
  (``encode{style=gray}``), ``name[k]`` repeats a pass ``k`` times,
  and ``name?`` makes it conditional (skipped instead of erroring
  when not applicable);
* by the synthesis facade, which assembles the default pipeline from
  :class:`repro.synth.dc_options.CompileOptions`.

``spec()`` renders a manager back to the string form; for pipelines
built purely from registered passes the two round-trip.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

from repro.flow.combinators import Conditional, Repeat
from repro.flow.core import (
    FlowContext,
    FlowError,
    Pass,
    ensure_recursion_headroom,
    make_pass,
    parse_spec_value,
)

_ITEM_RE = re.compile(
    r"^(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"(?:\{(?P<opts>[^{}]*)\})?"
    r"(?:\[(?P<times>\d+)\])?"
    r"(?P<cond>\?)?$"
)


def _split_items(spec: str) -> list[str]:
    """Split a spec on top-level commas (commas inside ``{...}``
    option blocks belong to the item)."""
    items: list[str] = []
    depth = 0
    current: list[str] = []
    for char in spec:
        if char == "," and depth == 0:
            items.append("".join(current))
            current = []
            continue
        if char == "{":
            depth += 1
        elif char == "}":
            depth = max(depth - 1, 0)
        current.append(char)
    items.append("".join(current))
    stripped = [item.strip() for item in items]
    for item in stripped:
        if not item:
            raise FlowError(f"empty pass name in pipeline spec {spec!r}")
    return stripped


def _parse_options(opts: str | None, item: str) -> dict:
    """Parse a ``{key=value,...}`` option block into kwargs."""
    if opts is None:
        return {}
    params: dict = {}
    for chunk in opts.split(","):
        chunk = chunk.strip()
        if not chunk or "=" not in chunk:
            raise FlowError(
                f"malformed option {chunk!r} in spec item {item!r} "
                f"(expected key=value)"
            )
        key, _, value = chunk.partition("=")
        params[key.strip()] = parse_spec_value(value.strip())
    return params


class PassManager:
    """An ordered list of passes executed over a :class:`FlowContext`."""

    def __init__(self, passes: Sequence[Pass] = ()) -> None:
        self.passes: list[Pass] = list(passes)

    # -- construction -------------------------------------------------
    def append(self, item: Pass) -> "PassManager":
        self.passes.append(item)
        return self

    def extend(self, items: Iterable[Pass]) -> "PassManager":
        self.passes.extend(items)
        return self

    @classmethod
    def parse(cls, spec: str) -> "PassManager":
        """Build a pipeline from a comma-separated spec string.

        Grammar per item: ``NAME``, optionally ``{key=value,...}``
        (constructor parameters, e.g. ``encode{style=gray}``),
        optionally ``[count]`` (repeat the pass ``count`` >= 1 times),
        optionally a trailing ``?`` (run only if applicable).  Unknown
        names, unknown options, and malformed items raise
        :class:`FlowError`.
        """
        passes: list[Pass] = []
        for item in _split_items(spec):
            match = _ITEM_RE.match(item)
            if match is None:
                raise FlowError(
                    f"cannot parse pipeline spec item {item!r} "
                    f"(expected NAME, NAME{{k=v}}, NAME[count], or NAME?)"
                )
            instance = make_pass(
                match["name"], **_parse_options(match["opts"], item)
            )
            if match["times"] is not None:
                times = int(match["times"])
                if times < 1:
                    raise FlowError(
                        f"repeat count must be >= 1 in {item!r}"
                    )
                instance = Repeat(instance, times)
            if match["cond"]:
                instance = Conditional(instance)
            passes.append(instance)
        return cls(passes)

    def spec(self) -> str:
        """Render back to the string form ``parse`` accepts (for
        pipelines made of registered passes, a round-trip)."""
        return ",".join(item.spec() for item in self.passes)

    # -- execution ----------------------------------------------------
    def run(self, ctx: FlowContext) -> FlowContext:
        """Execute every pass in order on ``ctx`` and return it."""
        ensure_recursion_headroom()
        for item in self.passes:
            item.execute(ctx)
        return ctx

    def compile(
        self,
        module=None,
        *,
        aig=None,
        annotations: Sequence = (),
        library=None,
        seed: int = 2011,
    ) -> FlowContext:
        """Convenience: build a fresh context and run the pipeline.

        Start from RTL (``module``), an already-elaborated ``aig``, or
        both; ``annotations`` seed the context's state annotations.
        """
        ctx = FlowContext(
            module=module,
            aig=aig,
            annotations=list(annotations),
            library=library,
            seed=seed,
        )
        return self.run(ctx)

    def __len__(self) -> int:
        return len(self.passes)

    def __iter__(self):
        return iter(self.passes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PassManager({self.spec()!r})"
