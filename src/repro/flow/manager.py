"""The pass manager: an ordered pipeline of passes over one context.

A :class:`PassManager` can be built three ways:

* directly from pass objects -- ``PassManager([ElaboratePass(), ...])``;
* from a string spec over the global registry --
  ``PassManager.parse("seq_sweep,tt_sweep,balance,rewrite[2],retime?")``
  where ``name{key=value,...}`` sets constructor parameters
  (``encode{style=gray}``), ``name[k]`` repeats a pass ``k`` times,
  and ``name?`` makes it conditional (skipped instead of erroring
  when not applicable); string values containing spec structure are
  single-quoted with backslash escapes (``tag='a,b'``);
* by the synthesis facade, which assembles the default pipeline from
  :class:`repro.synth.dc_options.CompileOptions`.

``spec()`` renders a manager back to the string form; for pipelines
built purely from registered passes the two round-trip.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

from repro.flow.combinators import Conditional, Repeat
from repro.flow.core import (
    FlowContext,
    FlowError,
    Pass,
    context_stage,
    ensure_recursion_headroom,
    make_pass,
    parse_spec_value,
)

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_TIMES_RE = re.compile(r"\[(\d+)\]")


def _split_top_level(
    text: str, source: str, *, track_braces: bool
) -> list[str]:
    """Split on top-level commas, honouring single-quoted values (and,
    optionally, ``{...}`` nesting).  Unbalanced braces and unterminated
    quotes are hard errors -- silently clamping them would mis-split
    items instead of reporting the malformed spec."""
    items: list[str] = []
    current: list[str] = []
    depth = 0
    in_quote = False
    escaped = False
    for char in text:
        if in_quote:
            current.append(char)
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == "'":
                in_quote = False
            continue
        if char == "'":
            in_quote = True
            current.append(char)
            continue
        if char == "," and depth == 0:
            items.append("".join(current))
            current = []
            continue
        if track_braces and char == "{":
            depth += 1
        elif track_braces and char == "}":
            if depth == 0:
                raise FlowError(f"unbalanced '}}' in pipeline spec {source!r}")
            depth -= 1
        current.append(char)
    if in_quote:
        raise FlowError(f"unterminated quote in pipeline spec {source!r}")
    if depth:
        raise FlowError(f"unbalanced '{{' in pipeline spec {source!r}")
    items.append("".join(current))
    return items


def _split_items(spec: str) -> list[str]:
    """Split a spec on top-level commas (commas inside ``{...}``
    option blocks and quoted values belong to the item)."""
    stripped = [
        item.strip()
        for item in _split_top_level(spec, spec, track_braces=True)
    ]
    for position, item in enumerate(stripped, start=1):
        if not item:
            raise FlowError(
                f"empty pass name at item {position} of pipeline spec "
                f"{spec!r}"
            )
    return stripped


def _option_block_end(text: str, item: str) -> int:
    """Index of the ``}`` closing the option block ``text`` starts
    with, honouring nesting and quoted values."""
    depth = 0
    in_quote = False
    escaped = False
    for index, char in enumerate(text):
        if in_quote:
            if escaped:
                escaped = False
            elif char == "\\":
                escaped = True
            elif char == "'":
                in_quote = False
            continue
        if char == "'":
            in_quote = True
        elif char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
            if depth == 0:
                return index
    raise FlowError(f"unbalanced '{{' in spec item {item!r}")


def _parse_item(item: str) -> tuple[str, str | None, int | None, bool]:
    """Decompose one spec item into (name, options, times, cond)."""
    syntax_hint = (
        f"cannot parse pipeline spec item {item!r} "
        f"(expected NAME, NAME{{k=v}}, NAME[count], or NAME?)"
    )
    match = _NAME_RE.match(item)
    if match is None:
        raise FlowError(syntax_hint)
    name = match.group()
    rest = item[match.end():]
    opts: str | None = None
    if rest.startswith("{"):
        end = _option_block_end(rest, item)
        opts = rest[1:end]
        rest = rest[end + 1:]
    times: int | None = None
    if rest.startswith("["):
        times_match = _TIMES_RE.match(rest)
        if times_match is None:
            raise FlowError(syntax_hint)
        times = int(times_match.group(1))
        rest = rest[times_match.end():]
    cond = rest == "?"
    if rest and not cond:
        raise FlowError(syntax_hint)
    return name, opts, times, cond


def _parse_options(opts: str | None, item: str) -> dict:
    """Parse a ``{key=value,...}`` option block into kwargs."""
    if opts is None:
        return {}
    params: dict = {}
    for chunk in _split_top_level(opts, item, track_braces=False):
        chunk = chunk.strip()
        if not chunk or "=" not in chunk:
            raise FlowError(
                f"malformed option {chunk!r} in spec item {item!r} "
                f"(expected key=value)"
            )
        key, _, value = chunk.partition("=")
        params[key.strip()] = parse_spec_value(value.strip())
    return params


class PassManager:
    """An ordered list of passes executed over a :class:`FlowContext`."""

    def __init__(self, passes: Sequence[Pass] = ()) -> None:
        self.passes: list[Pass] = list(passes)

    # -- construction -------------------------------------------------
    def append(self, item: Pass) -> "PassManager":
        self.passes.append(item)
        return self

    def extend(self, items: Iterable[Pass]) -> "PassManager":
        self.passes.extend(items)
        return self

    @classmethod
    def parse(cls, spec: str) -> "PassManager":
        """Build a pipeline from a comma-separated spec string.

        Grammar per item: ``NAME``, optionally ``{key=value,...}``
        (constructor parameters, e.g. ``encode{style=gray}``),
        optionally ``[count]`` (repeat the pass ``count`` >= 1 times),
        optionally a trailing ``?`` (run only if applicable).  Unknown
        names, unknown options, and malformed items raise
        :class:`FlowError` quoting the offending item and its
        1-based position in the spec.
        """
        passes: list[Pass] = []
        for position, item in enumerate(_split_items(spec), start=1):
            try:
                name, opts, times, cond = _parse_item(item)
                instance = make_pass(name, **_parse_options(opts, item))
                if times is not None:
                    if times < 1:
                        raise FlowError(
                            f"repeat count must be >= 1 in {item!r}"
                        )
                    instance = Repeat(instance, times)
            except FlowError as exc:
                # Re-raise with the failing item pinpointed: a long
                # generated spec is unreadable without knowing *which*
                # entry the complaint is about.
                raise FlowError(
                    f"at item {position} ({item!r}) of pipeline spec "
                    f"{spec!r}: {exc}"
                ) from None
            if cond:
                instance = Conditional(instance)
            passes.append(instance)
        return cls(passes)

    def spec(self) -> str:
        """Render back to the string form ``parse`` accepts (for
        pipelines made of registered passes, a round-trip)."""
        return ",".join(item.spec() for item in self.passes)

    def prefix_specs(self) -> list[str]:
        """The rendered spec of every pipeline prefix, shortest first
        (element ``k`` covers passes ``0..k``; the last element equals
        :meth:`spec`).  Because :meth:`spec` is a comma-join, a prefix
        spec is exactly what a pipeline genuinely ending there would
        render -- which is what makes prefix fingerprints shareable."""
        parts: list[str] = []
        specs: list[str] = []
        for item in self.passes:
            parts.append(item.spec())
            specs.append(",".join(parts))
        return specs

    def prefix_fingerprints(
        self,
        *,
        ctrl=None,
        module=None,
        aig=None,
        annotations: Sequence = (),
        bindings=None,
        library=None,
        seed: int = 2011,
        facts=None,
    ) -> list[str]:
        """:func:`~repro.flow.cache.fingerprint_prefixes` over this
        pipeline's prefixes with these inputs.  The last element is
        the full compile fingerprint."""
        from repro.flow.cache import fingerprint_prefixes

        return fingerprint_prefixes(
            self.prefix_specs(),
            ctrl=ctrl,
            module=module,
            aig=aig,
            annotations=annotations,
            bindings=bindings,
            library=library,
            seed=seed,
            facts=facts,
        )

    # -- execution ----------------------------------------------------
    def run(self, ctx: FlowContext) -> FlowContext:
        """Execute every pass in order on ``ctx`` and return it."""
        ensure_recursion_headroom()
        for item in self.passes:
            item.execute(ctx)
        return ctx

    def compile(
        self,
        module=None,
        *,
        ctrl=None,
        aig=None,
        annotations: Sequence = (),
        bindings=None,
        library=None,
        seed: int = 2011,
        facts=None,
        cache=None,
        snapshots=None,
    ) -> FlowContext:
        """Convenience: build a fresh context and run the pipeline.

        Start from a controller IR (``ctrl`` -- the frontend stage
        lowers it), RTL (``module``), an already-elaborated ``aig``,
        or a combination; ``annotations`` seed the context's state
        annotations, ``bindings`` its configuration-memory contents
        (consumed by the ``pe_bind`` pass), and ``facts`` an optional
        :class:`~repro.check.facts.FactSheet` of statically proven
        properties the optimizing passes may consume (each
        re-discharged via SAT before use).

        With a :class:`~repro.flow.cache.CompileCache` as ``cache``,
        the run is keyed on the fingerprint of (inputs, rendered
        pipeline spec, seed, library): a hit returns the cached
        completed context without executing any pass -- for an IR
        input that means zero lowerings *and* zero synthesis -- a miss
        runs the pipeline and stores the result.  Treat cached
        contexts as read-only -- in-memory hits share one object.

        On a full-key miss the compile is *incrementally resumable*:
        the longest cached stage snapshot of a pipeline prefix (see
        :func:`~repro.flow.cache.fingerprint_prefixes`) is restored
        and only the remaining passes execute, with the resume point
        recorded in ``ctx.meta`` (``resumed_at``/``passes_skipped``).
        ``snapshots`` tunes the
        :class:`~repro.flow.cache.SnapshotPolicy`: ``None`` reads the
        environment (``REPRO_SNAPSHOTS=0`` disables), ``True``/
        ``False`` toggle the default policy, or pass a policy.  A
        resumed result is byte-identical to a from-scratch run
        (canonical hashes and pass records modulo wall times).

        The spec typechecker (:mod:`repro.check.spec`) runs first:
        a pipeline that is statically wrong for these inputs (stage
        ordering, IR kind, missing bindings) raises :class:`FlowError`
        carrying the diagnostics before any pass executes.
        """
        # Imported here: repro.check.spec imports this module.
        from repro.check.spec import check_manager, input_stage_of

        input_stage, ir_kind = input_stage_of(
            ctrl=ctrl, module=module, aig=aig
        )
        problems = [
            diagnostic
            for diagnostic in check_manager(
                self,
                input_stage=input_stage,
                ir_kind=ir_kind,
                has_bindings=bindings is not None,
                has_facts=facts is not None,
            )
            if diagnostic.severity == "error"
        ]
        if problems:
            raise FlowError(
                "pipeline spec check failed: "
                + "; ".join(str(problem) for problem in problems)
            )
        policy = None
        fingerprint = None
        prefix_fps: list[str] = []
        if cache is not None:
            from repro.flow.cache import (
                flow_fingerprint,
                resolve_snapshot_policy,
            )

            policy = resolve_snapshot_policy(snapshots)
            if policy.enabled and len(self.passes) > 1:
                prefix_fps = self.prefix_fingerprints(
                    ctrl=ctrl,
                    module=module,
                    aig=aig,
                    annotations=annotations,
                    bindings=bindings,
                    library=library,
                    seed=seed,
                    facts=facts,
                )
            fingerprint = (
                prefix_fps[-1]
                if prefix_fps
                else flow_fingerprint(
                    self.spec(),
                    ctrl=ctrl,
                    module=module,
                    aig=aig,
                    annotations=annotations,
                    bindings=bindings,
                    library=library,
                    seed=seed,
                    facts=facts,
                )
            )
            hit = cache.get(fingerprint)
            if hit is not None:
                return hit
        ctx, start = prepare_resume(
            self,
            ctrl=ctrl,
            module=module,
            aig=aig,
            annotations=annotations,
            bindings=bindings,
            library=library,
            seed=seed,
            facts=facts,
            cache=cache,
            prefix_fingerprints=prefix_fps,
        )
        run_resumable(
            self,
            ctx,
            start=start,
            cache=cache,
            prefix_fingerprints=prefix_fps,
            policy=policy,
        )
        if cache is not None:
            cache.put(fingerprint, ctx)
        return ctx

    def __len__(self) -> int:
        return len(self.passes)

    def __iter__(self):
        return iter(self.passes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        try:
            return f"PassManager({self.spec()!r})"
        except FlowError:
            return f"PassManager(<{len(self.passes)} passes, no spec form>)"


def prepare_resume(
    pipeline: PassManager,
    *,
    ctrl=None,
    module=None,
    aig=None,
    annotations: Sequence = (),
    bindings=None,
    library=None,
    seed: int = 2011,
    facts=None,
    cache=None,
    prefix_fingerprints: Sequence[str] = (),
) -> tuple[FlowContext, int]:
    """The context a miss starts from: the deepest restorable stage
    snapshot, or a fresh context.

    Probes ``cache`` for resume points of the pipeline's prefixes,
    deepest first.  Two kinds qualify at each depth: a stage snapshot
    of the prefix, and -- because prefix fingerprints are
    digest-identical to a shorter pipeline's full fingerprint -- the
    *completed entry* of a compile whose whole pipeline was this
    prefix (restored as a fresh copy via
    :meth:`~repro.flow.cache.CompileCache.get_prefix_entry`; the
    shared read-only hit object must never be mutated by a resume).
    A restored context gets the resume provenance written into
    ``ctx.meta``: ``resumed_at`` (the name of the last skipped pass),
    ``passes_skipped`` (top-level count), and ``resumed_records``
    (how many pass records came from the resume point rather than
    this run -- what lets pass-execution accounting subtract them).

    Returns:
        ``(ctx, start)`` -- run the pipeline from top-level pass index
        ``start`` (0 means from scratch).
    """
    fps = list(prefix_fingerprints)
    if cache is not None and len(fps) == len(pipeline.passes) > 1:
        for done in range(len(pipeline.passes), 0, -1):
            restored = cache.get_snapshot(fps[done - 1])
            if restored is None and done < len(pipeline.passes):
                # The caller already ruled out a full-key entry hit,
                # so only proper prefixes are probed as entries.
                restored = cache.get_prefix_entry(fps[done - 1])
            if restored is None:
                continue
            restored.meta.update(
                resumed_at=pipeline.passes[done - 1].name,
                passes_skipped=done,
                resumed_records=len(restored.records),
            )
            return restored, done
    return (
        FlowContext(
            ctrl=ctrl,
            module=module,
            aig=aig,
            annotations=list(annotations),
            bindings=bindings,
            library=library,
            seed=seed,
            facts=facts,
        ),
        0,
    )


def run_resumable(
    pipeline: PassManager,
    ctx: FlowContext,
    *,
    start: int = 0,
    cache=None,
    prefix_fingerprints: Sequence[str] = (),
    policy=None,
    force_snapshot_after: frozenset[int] | set[int] = frozenset(),
) -> FlowContext:
    """Execute ``pipeline`` on ``ctx`` from pass ``start``, persisting
    stage snapshots where the policy says a boundary is worth keeping.

    The final pass never snapshots -- the completed cache entry covers
    the full pipeline.  ``force_snapshot_after`` holds top-level pass
    indices whose boundary must snapshot regardless of wall time or
    stage (the prefix-trie planner marks prefixes other jobs in the
    batch share).

    Failures propagate exactly as :meth:`PassManager.run`'s would --
    no snapshot is taken at or after a failing pass.
    """
    ensure_recursion_headroom()
    snapshotting = (
        cache is not None
        and policy is not None
        and policy.enabled
        and len(prefix_fingerprints) == len(pipeline.passes)
    )
    specs = pipeline.prefix_specs() if snapshotting else []
    last = len(pipeline.passes) - 1
    stage = context_stage(ctx)
    for index in range(start, len(pipeline.passes)):
        record = pipeline.passes[index].execute(ctx)
        if not snapshotting or index >= last:
            continue
        previous, stage = stage, context_stage(ctx)
        if policy.should_snapshot(
            wall_time_s=record.wall_time_s,
            stage_changed=stage != previous,
            forced=index in force_snapshot_after,
        ):
            cache.put_snapshot(
                prefix_fingerprints[index],
                ctx,
                prefix_spec=specs[index],
                passes_done=index + 1,
            )
    return ctx
