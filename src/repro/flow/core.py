"""Core of the pass pipeline: context, records, passes, registry.

The design state a synthesis run threads from RTL to sized netlist
lives in one :class:`FlowContext`.  A :class:`Pass` is a named,
stage-declared transform over that context; running one through
:meth:`Pass.execute` appends a structured :class:`PassRecord`
(wall-clock time, before/after AIG statistics, and any human-readable
detail lines) to the context, which is what
``CompileResult.log`` renders for backward compatibility.

Passes register themselves under a short name with
:func:`register_pass`, which is what makes string pipeline specs like
``"seq_sweep,balance,rewrite[2]"`` parseable (see
:mod:`repro.flow.manager`).
"""

from __future__ import annotations

import difflib
import math
import sys
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.flow.schema import PassSchema

if TYPE_CHECKING:
    from repro.aig.graph import AIG
    from repro.rtl.module import Module
    from repro.synth.dc_options import StateAnnotation
    from repro.synth.elaborate import Elaboration
    from repro.synth.stateprop import FoldStats
    from repro.tech.cells import Library
    from repro.tech.netlist import AreaReport, MappedNetlist
    from repro.tech.sizing import SizingResult
    from repro.tech.sta import TimingReport

#: Elaborating deep RTL expressions recurses; keep plenty of headroom.
RECURSION_HEADROOM = 100_000

#: The representations a pass may declare it operates on.  ``ctrl`` is
#: the frontend stage: the context holds a controller intermediate
#: representation (FSM spec, microprogram, truth table, ...) that has
#: not been lowered to RTL yet.
STAGES = ("ctrl", "rtl", "aig", "netlist")


class FlowError(Exception):
    """A malformed pipeline: unknown pass, bad spec, stage misuse."""


def is_controller_ir(value) -> bool:
    """Does ``value`` implement the :class:`ControllerIR` protocol?"""
    return hasattr(value, "ir_hash") and hasattr(value, "ir_stats")


class ControllerIR:
    """The structural protocol of a controller intermediate
    representation (duck-typed -- IR classes do not inherit from this).

    A controller IR is what a chip generator emits *before* RTL: an
    :class:`~repro.controllers.fsm.FsmSpec`, a symbolic or assembled
    microprogram, a dispatch table, a sequencer spec, or a truth
    table.  To participate in the flow's ``ctrl`` stage an IR class
    implements two methods (and nothing else -- the IR layer stays
    free of any dependency on the pass framework):

    * ``ir_hash() -> str``: a stable content hash covering everything
      a lowering's output can depend on; the compile cache keys warm
      runs on it, so two IRs with equal hashes must lower to
      equal hardware.
    * ``ir_stats() -> dict``: cheap summary statistics with the keys
      ``kind`` (a short IR-type tag), ``items`` (states /
      instructions / rows), and ``bits`` (the IR's characteristic
      word width) -- the frontend analogue of :class:`AigStats`,
      recorded on ``ctrl``-stage :class:`PassRecord` entries.
    """


@dataclass(frozen=True)
class CtrlStats:
    """A cheap snapshot of a controller IR (the frontend counterpart
    of :class:`AigStats`): what kind of IR the context holds, how many
    items it has (states, instructions, table rows), and its
    characteristic bit width."""

    kind: str
    items: int
    bits: int

    @classmethod
    def of(cls, ir) -> "CtrlStats | None":
        if ir is None or not is_controller_ir(ir):
            return None
        stats = ir.ir_stats()
        return cls(
            kind=str(stats["kind"]),
            items=int(stats["items"]),
            bits=int(stats["bits"]),
        )

    def to_json(self) -> dict:
        """A plain-JSON form (see :meth:`from_json` for the inverse)."""
        return {"kind": self.kind, "items": self.items, "bits": self.bits}

    @classmethod
    def from_json(cls, data: "dict | None") -> "CtrlStats | None":
        """Rebuild from :meth:`to_json` output (``None`` passes
        through, mirroring the optional slots of a record)."""
        if data is None:
            return None
        return cls(
            kind=str(data["kind"]),
            items=int(data["items"]),
            bits=int(data["bits"]),
        )


@dataclass(frozen=True)
class AigStats:
    """A cheap structural snapshot of the AIG for instrumentation."""

    num_ands: int
    num_latches: int

    @classmethod
    def of(cls, aig: "AIG | None") -> "AigStats | None":
        if aig is None:
            return None
        return cls(num_ands=aig.num_ands, num_latches=len(aig.latches))

    def to_json(self) -> dict:
        """A plain-JSON form (see :meth:`from_json` for the inverse)."""
        return {"num_ands": self.num_ands, "num_latches": self.num_latches}

    @classmethod
    def from_json(cls, data: "dict | None") -> "AigStats | None":
        """Rebuild from :meth:`to_json` output (``None`` passes through,
        mirroring the optional before/after slots of a record)."""
        if data is None:
            return None
        return cls(
            num_ands=int(data["num_ands"]),
            num_latches=int(data["num_latches"]),
        )


@dataclass(frozen=True)
class PassRecord:
    """What one pass execution did: the structured successor of the
    old free-form ``log: list[str]``."""

    name: str
    stage: str
    wall_time_s: float
    before: AigStats | None
    after: AigStats | None
    messages: tuple[str, ...] = ()
    skipped: bool = False
    #: True when a fixed-point combinator rolled this round back: the
    #: stats describe work that never reached the final design (the
    #: legacy log line is still emitted, matching the seed flow).
    rejected: bool = False
    #: True when ``run()`` raised: the record preserves whatever notes
    #: the pass emitted before dying, so error reports (and parallel
    #: job failures) keep their log context.
    failed: bool = False
    #: Frontend statistics, recorded by ``ctrl``-stage passes only:
    #: the controller-IR snapshots beside the AIG ones, so lowering
    #: passes are instrumented the same way synthesis passes are.
    ctrl_before: CtrlStats | None = None
    ctrl_after: CtrlStats | None = None

    @property
    def delta_ands(self) -> int | None:
        """AND-node change (negative means the pass shrank the AIG)."""
        if self.before is None or self.after is None:
            return None
        return self.after.num_ands - self.before.num_ands

    def to_json(self) -> dict:
        """A plain-JSON form of the record, suitable for the run store.

        Every field round-trips (including the ``skipped`` /
        ``rejected`` / ``failed`` flags); :meth:`from_json` is the
        exact inverse.
        """
        return {
            "name": self.name,
            "stage": self.stage,
            "wall_time_s": self.wall_time_s,
            "before": None if self.before is None else self.before.to_json(),
            "after": None if self.after is None else self.after.to_json(),
            "messages": list(self.messages),
            "skipped": self.skipped,
            "rejected": self.rejected,
            "failed": self.failed,
            "ctrl_before": (
                None if self.ctrl_before is None else self.ctrl_before.to_json()
            ),
            "ctrl_after": (
                None if self.ctrl_after is None else self.ctrl_after.to_json()
            ),
        }

    @classmethod
    def from_json(cls, data: dict) -> "PassRecord":
        """Rebuild a record from :meth:`to_json` output (records
        written before the ``ctrl`` stage existed load with empty
        frontend slots)."""
        return cls(
            name=data["name"],
            stage=data["stage"],
            wall_time_s=float(data["wall_time_s"]),
            before=AigStats.from_json(data["before"]),
            after=AigStats.from_json(data["after"]),
            messages=tuple(data["messages"]),
            skipped=bool(data["skipped"]),
            rejected=bool(data["rejected"]),
            failed=bool(data["failed"]),
            ctrl_before=CtrlStats.from_json(data.get("ctrl_before")),
            ctrl_after=CtrlStats.from_json(data.get("ctrl_after")),
        )


def render_log(records: list["PassRecord"]) -> list[str]:
    """Flatten pass records back into the legacy log-line format."""
    return [message for record in records for message in record.messages]


@dataclass
class FlowContext:
    """The design state threaded through a pipeline.

    A context starts from a controller IR (``ctrl``), RTL
    (``module``), an elaborated ``aig``, or a combination; passes move
    the design forward and deposit their results (netlist, reports,
    fold statistics) and instrumentation (``records``) here.
    """

    module: "Module | None" = None
    aig: "AIG | None" = None
    netlist: "MappedNetlist | None" = None
    annotations: list["StateAnnotation"] = field(default_factory=list)
    library: "Library | None" = None
    seed: int = 2011
    elaboration: "Elaboration | None" = None
    inferred_fsms: list = field(default_factory=list)
    fold_stats: "FoldStats | None" = None
    sizing: "SizingResult | None" = None
    timing: "TimingReport | None" = None
    area: "AreaReport | None" = None
    records: list[PassRecord] = field(default_factory=list)
    #: Set by passes that made structural progress this round; reset
    #: and read by the fixed-point combinators.
    progress: bool = False
    #: The controller IR (:class:`ControllerIR` protocol) a frontend
    #: pipeline starts from; ``ctrl``-stage passes transform or lower
    #: it.  Left in place after lowering for provenance.
    ctrl: object | None = None
    #: Configuration-memory contents for :class:`PeBindPass`
    #: (``{memory name: row words}``) -- design state like
    #: ``annotations``, seeded at compile time, fingerprinted by the
    #: cache.
    bindings: "dict[str, list[int]] | None" = None
    #: A :class:`repro.check.facts.FactSheet` of statically proven
    #: properties the optimizing passes may consume (after
    #: re-discharging them).  Design state like ``annotations``:
    #: seeded at compile time, fingerprinted by the cache, and
    #: translated or retired by passes that re-encode state.
    facts: object | None = None
    #: Free-form JSON-safe provenance recorded by the executors (where
    #: a resumed compile restarted, how many passes it skipped).  Never
    #: part of the fingerprint and never compared by ``diff_runs``:
    #: two byte-identical results may legitimately differ here.
    meta: dict = field(default_factory=dict)

    def mark_progress(self) -> None:
        self.progress = True

    def aig_stats(self) -> AigStats | None:
        return AigStats.of(self.aig)

    def ctrl_stats(self) -> CtrlStats | None:
        return CtrlStats.of(self.ctrl)

    def emit(
        self,
        name: str,
        *messages: str,
        stage: str = "aig",
        wall_time_s: float = 0.0,
        before: AigStats | None = None,
    ) -> PassRecord:
        """Append an inline record (used by combinators for per-round
        lines so the legacy log order is preserved exactly)."""
        record = PassRecord(
            name=name,
            stage=stage,
            wall_time_s=wall_time_s,
            before=before,
            after=self.aig_stats(),
            messages=messages,
        )
        self.records.append(record)
        return record

    @property
    def log(self) -> list[str]:
        """The legacy free-form log, rendered from the records."""
        return render_log(self.records)


def context_stage(ctx: FlowContext) -> str:
    """The deepest representation ``ctx`` currently holds -- how the
    snapshot policy detects stage boundaries (a pass whose execution
    moved the context to a new representation)."""
    if ctx.netlist is not None:
        return "netlist"
    if ctx.aig is not None:
        return "aig"
    if ctx.module is not None:
        return "rtl"
    return "ctrl"


class Pass:
    """One named transform over a :class:`FlowContext`.

    Subclasses declare ``stage`` -- the representation they consume
    (``"ctrl"`` passes transform or lower a controller IR before any
    RTL exists, ``"rtl"`` passes run before elaboration, ``"aig"``
    passes need an elaborated graph, ``"netlist"`` passes need a
    mapped netlist) -- and implement :meth:`run`.  Detail lines for
    the legacy log are reported through :meth:`note`.
    """

    name: str = "pass"
    stage: str = "aig"

    def __init__(self) -> None:
        self._notes: list[str] = []

    # -- the transform ------------------------------------------------
    def run(self, ctx: FlowContext) -> None:
        raise NotImplementedError

    def note(self, message: str) -> None:
        """Attach a legacy-format log line to this execution's record."""
        self._notes.append(message)

    # -- applicability ------------------------------------------------
    def ready(self, ctx: FlowContext) -> bool:
        """Is the context in the representation this pass consumes?"""
        if self.stage == "ctrl":
            return (
                ctx.ctrl is not None
                and ctx.module is None
                and ctx.aig is None
            )
        if self.stage == "rtl":
            return ctx.module is not None and ctx.aig is None
        if self.stage == "aig":
            return ctx.aig is not None
        return ctx.netlist is not None

    def applies(self, ctx: FlowContext) -> bool:
        """Would running this pass do anything useful?  Conditional
        pipeline entries (``name?``) are skipped when this is False."""
        return True

    def requirement(self) -> str:
        return {
            "ctrl": "needs a controller IR not yet lowered to RTL",
            "rtl": "needs an un-elaborated RTL module",
            "aig": "needs an elaborated AIG",
            "netlist": "needs a mapped netlist",
        }[self.stage]

    # -- execution ----------------------------------------------------
    def execute(self, ctx: FlowContext) -> PassRecord:
        """Stage-check, run, and record this pass on ``ctx``."""
        if not self.ready(ctx):
            raise FlowError(
                f"pass {self.name!r} (stage {self.stage}) cannot run here: "
                f"{self.requirement()}"
            )
        before = ctx.aig_stats()
        # Frontend stats only on ctrl-stage passes: downstream records
        # keep their exact legacy shape.
        ctrl_before = ctx.ctrl_stats() if self.stage == "ctrl" else None
        self._notes = []
        start = time.perf_counter()
        try:
            self.run(ctx)
        except Exception:
            # Record the failed execution anyway: the notes emitted up
            # to the failure are exactly the log context an error
            # report needs, and dropping them here would also leak
            # stale notes into the next execution.
            ctx.records.append(
                PassRecord(
                    name=self.name,
                    stage=self.stage,
                    wall_time_s=time.perf_counter() - start,
                    before=before,
                    after=ctx.aig_stats(),
                    messages=tuple(self._notes),
                    failed=True,
                    ctrl_before=ctrl_before,
                    ctrl_after=(
                        ctx.ctrl_stats() if self.stage == "ctrl" else None
                    ),
                )
            )
            raise
        finally:
            notes = tuple(self._notes)
            self._notes = []
        record = PassRecord(
            name=self.name,
            stage=self.stage,
            wall_time_s=time.perf_counter() - start,
            before=before,
            after=ctx.aig_stats(),
            messages=notes,
            ctrl_before=ctrl_before,
            ctrl_after=ctx.ctrl_stats() if self.stage == "ctrl" else None,
        )
        ctx.records.append(record)
        return record

    def params(self) -> dict:
        """Non-default constructor parameters, for spec rendering and
        fingerprinting.  Parameterized passes override this; only
        spec-representable values (numbers, strings, bools, None)
        belong here."""
        return {}

    def spec(self) -> str:
        """The pipeline-spec syntax that reconstructs this pass,
        including non-default parameters (``encode{style=gray}``).

        ``spec()`` doubles as the compile-cache fingerprint, so an
        anonymous pass (one that never set ``name``) has no spec form:
        two distinct anonymous passes would otherwise fingerprint --
        and cache -- identically.
        """
        if self.name == Pass.name:
            raise FlowError(
                f"{type(self).__name__} has no spec form: set a "
                f"distinct `name` (or register it) so pipelines "
                f"containing it render and fingerprint unambiguously"
            )
        params = self.params()
        if not params:
            return self.name
        body = ",".join(
            f"{key}={render_spec_value(value)}"
            for key, value in sorted(params.items())
        )
        return f"{self.name}{{{body}}}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        try:
            return f"<{type(self).__name__} {self.spec()!r}>"
        except FlowError:
            return f"<{type(self).__name__} (no spec form)>"


#: Global registry: spec name -> zero-argument pass factory.
PASS_REGISTRY: dict[str, Callable[[], Pass]] = {}

#: Spec name -> :class:`PassSchema`, populated alongside the registry.
#: The static contract :mod:`repro.check.spec` checks pipelines
#: against; passes registered without an explicit schema get a
#: stage-only default (any option is then a constructor question).
PASS_SCHEMAS: dict[str, PassSchema] = {}


def register_pass(name: str, schema: "PassSchema | None" = None):
    """Class decorator adding a pass to the global registry.

    The registered class must be constructible with no arguments (its
    defaults are what a string pipeline spec gets); richer
    parameterizations are built in Python.  Re-registering a name is a
    hard error -- silent shadowing would make specs ambiguous.

    Args:
        name: the spec name the pass registers under.
        schema: the pass's static contract (stages, IR kinds,
            options).  Defaults to a bare stage-only schema derived
            from the class's ``stage`` attribute.
    """

    def decorate(cls):
        if name in PASS_REGISTRY:
            raise FlowError(
                f"pass name {name!r} already registered by "
                f"{PASS_REGISTRY[name].__qualname__}"
            )
        resolved = schema if schema is not None else PassSchema(stage=cls.stage)
        if resolved.stage != cls.stage:
            raise FlowError(
                f"pass {name!r}: schema stage {resolved.stage!r} "
                f"contradicts class stage {cls.stage!r}"
            )
        cls.name = name
        PASS_REGISTRY[name] = cls
        PASS_SCHEMAS[name] = resolved
        return cls

    return decorate


def registered_pass_names() -> list[str]:
    return sorted(PASS_REGISTRY)


def pass_schema(name: str) -> "PassSchema | None":
    """The registered schema for ``name`` (``None`` when unknown)."""
    if name not in PASS_REGISTRY:
        return None
    return PASS_SCHEMAS.get(name)


def suggest_name(name: str, candidates) -> "str | None":
    """The closest near-miss to ``name`` among ``candidates``, for
    did-you-mean diagnostics (``None`` when nothing is close)."""
    matches = difflib.get_close_matches(name, list(candidates), n=1)
    return matches[0] if matches else None


def describe_registry() -> "dict[str, dict]":
    """Every registered pass with its stage and option schema, as
    JSON-safe dicts -- the single source ``repro.check registry`` and
    the docs render from, so neither drifts from the code."""
    out: dict[str, dict] = {}
    for name in registered_pass_names():
        schema = PASS_SCHEMAS.get(name) or PassSchema(
            stage=PASS_REGISTRY[name].stage
        )
        doc = (PASS_REGISTRY[name].__doc__ or "").strip()
        summary = doc.splitlines()[0] if doc else ""
        out[name] = {"summary": summary, **schema.describe()}
    return out


def make_pass(name: str, /, **params) -> Pass:
    """Instantiate a registered pass, with optional constructor
    parameters (from a spec's ``{key=value,...}`` options).  The
    registry name is positional-only so a pass may itself take a
    ``name`` option (``table_rom{name=tbl_x}``).

    Errors carry ``repro.check`` diagnostic codes: ``CHK101`` unknown
    pass, ``CHK102`` unknown option name, ``CHK104`` a value the
    constructor rejected.
    """
    try:
        factory = PASS_REGISTRY[name]
    except KeyError:
        hint = suggest_name(name, PASS_REGISTRY)
        did_you_mean = "" if hint is None else f"did you mean {hint!r}? "
        raise FlowError(
            f"[CHK101] unknown pass {name!r}; {did_you_mean}"
            f"registered passes: {', '.join(registered_pass_names())}"
        ) from None
    schema = PASS_SCHEMAS.get(name)
    if schema is not None and schema.options:
        unknown = sorted(set(params) - set(schema.options))
        if unknown:
            hint = suggest_name(unknown[0], schema.options)
            did_you_mean = "" if hint is None else f" (did you mean {hint!r}?)"
            raise FlowError(
                f"[CHK102] pass {name!r} rejected options {unknown}: "
                f"unknown option{'s' if len(unknown) > 1 else ''}"
                f"{did_you_mean}; accepted: "
                f"{', '.join(sorted(schema.options))}"
            )
    try:
        return factory(**params)
    except (TypeError, ValueError) as exc:
        raise FlowError(
            f"[CHK104] pass {name!r} rejected options {sorted(params)}: {exc}"
        ) from None


#: Characters a bare (unquoted) string value may not contain: spec
#: structure (item/option separators, braces, repeat/conditional
#: markers) and the quoting machinery itself.
_SPEC_UNSAFE_CHARS = frozenset(",{}[]=?'\"\\")


def render_spec_value(value) -> str:
    """Render a parameter value in spec syntax: the exact inverse of
    :func:`parse_spec_value`.

    Strings that would not read back verbatim -- because they contain
    spec structure characters (``,``, ``{``, ``}``, ``=``, ...), hold
    whitespace, or would re-parse as a different type (``"none"``,
    ``"true"``, ``"42"``, ``"nan"``) -- are emitted in single quotes
    with backslash escapes.  Values with no faithful spec form
    (non-finite floats, arbitrary objects) raise :class:`FlowError`
    instead of silently producing an ambiguous spec: ``Pass.spec()``
    is a cache fingerprint, so it must never lie.
    """
    if value is None:
        return "none"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if not math.isfinite(value):
            raise FlowError(
                f"non-finite float {value!r} is not spec-representable "
                f"(it would read back as a quoted string)"
            )
        return repr(value)
    if isinstance(value, str):
        if _renders_bare(value):
            return value
        escaped = value.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"
    raise FlowError(
        f"{type(value).__name__} value {value!r} is not spec-representable"
    )


def _renders_bare(value: str) -> bool:
    """Would this string survive a bare (unquoted) round-trip?"""
    if not value:
        return False
    if any(ch in _SPEC_UNSAFE_CHARS or ch.isspace() for ch in value):
        return False
    parsed = parse_spec_value(value)
    return type(parsed) is str and parsed == value


def parse_spec_value(text: str):
    """Parse a spec option value: a ``'...'``-quoted string (escapes:
    ``\\'`` and ``\\\\``), none/true/false, int, float, or a bare
    string."""
    if text.startswith("'"):
        return _parse_quoted(text)
    lowered = text.lower()
    if lowered == "none":
        return None
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _parse_quoted(text: str):
    """Decode a single-quoted spec value (must span the whole text)."""
    out: list[str] = []
    escaped = False
    for index in range(1, len(text)):
        char = text[index]
        if escaped:
            out.append(char)
            escaped = False
            continue
        if char == "\\":
            escaped = True
            continue
        if char == "'":
            if index != len(text) - 1:
                raise FlowError(
                    f"malformed quoted value {text!r}: content after "
                    f"the closing quote"
                )
            return "".join(out)
        out.append(char)
    raise FlowError(f"unterminated quoted value {text!r}")


def ensure_recursion_headroom() -> None:
    """Deep RTL expression trees recurse during elaboration."""
    if sys.getrecursionlimit() < RECURSION_HEADROOM:
        sys.setrecursionlimit(RECURSION_HEADROOM)
