"""Process-pool fan-out for independent (module, pipeline) compiles.

The figure drivers compile hundreds of independent jobs; this module
distributes them across worker processes with :func:`compile_many`,
returning completed :class:`FlowContext` objects (pass records and
all) keyed by job, in submission order.

Caching composes: hits are resolved in the parent before any worker
spawns, workers share the disk layer of a path-backed
:class:`~repro.flow.cache.CompileCache` (atomic entry files make the
sharing safe), and every parallel result is folded back into the
parent cache so later serial queries hit in memory.

A failing job raises :class:`CompileJobError` carrying the job key and
the pass records accumulated up to the failure -- the log context an
error report needs -- identically from the serial and the parallel
path (the earliest failing job in submission order wins, so error
behaviour is deterministic regardless of worker scheduling).
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable, Sequence

from repro.flow.cache import (
    CompileCache,
    SnapshotPolicy,
    flow_fingerprint,
    resolve_snapshot_policy,
)
from repro.flow.core import (
    FlowContext,
    FlowError,
    PassRecord,
    ensure_recursion_headroom,
    render_log,
)
from repro.flow.manager import PassManager, prepare_resume, run_resumable

if TYPE_CHECKING:
    from repro.aig.graph import AIG
    from repro.rtl.module import Module
    from repro.tech.cells import Library


@dataclass(frozen=True)
class CompileJob:
    """One independent compile: a pipeline over one design.

    ``pipeline`` may be a :class:`PassManager` or a spec string (parsed
    in the worker); everything else mirrors the keyword surface of
    :meth:`PassManager.compile`.  ``key`` identifies the job in the
    result mapping and must be unique within one ``compile_many`` call.

    A job can start from the frontend stage: ``ctrl`` carries a
    controller IR (``ControllerIR`` protocol) that the pipeline's
    ``ctrl``-stage passes lower, and ``bindings`` carries
    configuration-memory contents for ``pe_bind`` -- the job ships the
    *IR*, not a pre-built module, so the lowering itself is cached,
    parallelized, and fingerprinted like every other stage.
    """

    key: Hashable
    pipeline: "PassManager | str"
    module: "Module | None" = None
    ctrl: object | None = None
    aig: "AIG | None" = None
    annotations: tuple = ()
    bindings: "dict[str, list[int]] | None" = None
    library: "Library | None" = None
    seed: int = 2011
    #: Optional :class:`repro.check.facts.FactSheet`; fingerprinted
    #: like every other input, consumed (after SAT re-discharge) by
    #: the optimizing passes.
    facts: object | None = None


class CompileJobError(FlowError):
    """A compile job failed; carries the job key and the pass records
    (hence log lines) accumulated up to the failure."""

    def __init__(
        self, key: Hashable, error: str, records: Sequence[PassRecord] = ()
    ) -> None:
        self.key = key
        self.error = error
        self.records = list(records)
        tail = render_log(self.records)[-4:]
        message = f"compile job {key!r} failed: {error}"
        if tail:
            message += "; log tail: " + " | ".join(tail)
        super().__init__(message)

    def __reduce__(self):
        # Default exception pickling replays ``args`` (the rendered
        # message) into ``__init__`` -- replay the real fields instead
        # so the error crosses the process pool intact.
        return (CompileJobError, (self.key, self.error, self.records))


def _resolve_pipeline(pipeline: "PassManager | str") -> PassManager:
    if isinstance(pipeline, str):
        return PassManager.parse(pipeline)
    return pipeline


def _job_fingerprint(job: CompileJob, pipeline: PassManager) -> str:
    return flow_fingerprint(
        pipeline.spec(),
        ctrl=job.ctrl,
        module=job.module,
        aig=job.aig,
        annotations=job.annotations,
        bindings=job.bindings,
        library=job.library,
        seed=job.seed,
        facts=job.facts,
    )


def _job_prefix_fingerprints(
    job: CompileJob, pipeline: PassManager
) -> list[str]:
    return pipeline.prefix_fingerprints(
        ctrl=job.ctrl,
        module=job.module,
        aig=job.aig,
        annotations=job.annotations,
        bindings=job.bindings,
        library=job.library,
        seed=job.seed,
        facts=job.facts,
    )


def _execute_job(
    job: CompileJob,
    cache: CompileCache | None,
    fingerprint: str | None = None,
    *,
    snapshots: "SnapshotPolicy | bool | None" = None,
    force_snapshot_after: frozenset = frozenset(),
) -> FlowContext:
    """Run one job (cache-aware and resumable), wrapping failures with
    their log context.  A caller that already missed on
    ``fingerprint`` passes it in to skip the redundant second lookup
    (prefix resume points are still probed).  ``force_snapshot_after``
    holds top-level pass indices the prefix-trie planner marked as
    shared boundaries -- they snapshot regardless of policy
    thresholds."""
    pipeline = _resolve_pipeline(job.pipeline)
    policy = resolve_snapshot_policy(snapshots)
    prefix_fps: list[str] = []
    if cache is not None:
        if policy.enabled and len(pipeline.passes) > 1:
            prefix_fps = _job_prefix_fingerprints(job, pipeline)
        if fingerprint is None:
            fingerprint = (
                prefix_fps[-1]
                if prefix_fps
                else _job_fingerprint(job, pipeline)
            )
            hit = cache.get(fingerprint)
            if hit is not None:
                return hit
    ctx, start = prepare_resume(
        pipeline,
        ctrl=job.ctrl,
        module=job.module,
        aig=job.aig,
        annotations=job.annotations,
        bindings=job.bindings,
        library=job.library,
        seed=job.seed,
        facts=job.facts,
        cache=cache,
        prefix_fingerprints=prefix_fps,
    )
    try:
        run_resumable(
            pipeline,
            ctx,
            start=start,
            cache=cache,
            prefix_fingerprints=prefix_fps,
            policy=policy,
            force_snapshot_after=force_snapshot_after,
        )
    except CompileJobError:
        raise
    except Exception as exc:
        raise CompileJobError(
            job.key, f"{type(exc).__name__}: {exc}", ctx.records
        ) from exc
    if cache is not None:
        cache.put(fingerprint, ctx)
    return ctx


def _worker_run(
    job: CompileJob,
    cache_path: str | None,
    snapshots: "SnapshotPolicy | None" = None,
    force_snapshot_after: frozenset = frozenset(),
) -> FlowContext:
    """Entry point executed inside a pool worker."""
    ensure_recursion_headroom()
    cache = None if cache_path is None else CompileCache(path=cache_path)
    return _execute_job(
        job,
        cache,
        snapshots=snapshots,
        force_snapshot_after=force_snapshot_after,
    )


def _pool_context():
    """Fork on Linux (cheap, inherits the recursion limit and warning
    filters); spawn elsewhere -- fork is crash-prone on macOS, which is
    why CPython itself switched that platform's default to spawn."""
    methods = multiprocessing.get_all_start_methods()
    use_fork = sys.platform == "linux" and "fork" in methods
    return multiprocessing.get_context("fork" if use_fork else "spawn")


def _plan_waves(
    prefix_lists: Sequence[Sequence[str]],
) -> "tuple[list[list[int]], dict[int, frozenset]]":
    """The prefix-trie schedule of one job batch.

    ``prefix_lists[i]`` is job ``i``'s prefix fingerprints (full
    fingerprint last); a fingerprint appearing in two or more jobs is
    *shared* -- work that must execute exactly once.  The plan is a
    list of waves (job indices) plus, per job, the top-level pass
    indices whose boundary must snapshot (``forced``): within a wave
    no two jobs carry the same not-yet-covered shared fingerprint, so
    each shared prefix has exactly one *leader*; after the wave the
    leader's snapshots (and completed entry) are published, and the
    followers -- deferred to later waves -- resume from them instead
    of re-executing the prefix.

    Full fingerprints count as shared too: two content-identical jobs
    (distinct keys) serialize, and the second hits the cache outright.

    Returns:
        ``(waves, forced)`` -- waves partition ``range(len(...))`` in
        submission order; ``forced[i]`` holds the snapshot boundaries
        job ``i`` must persist (its own final pass never snapshots;
        the completed entry covers it).
    """
    counts = Counter(fp for fps in prefix_lists for fp in fps)
    forced = {
        i: frozenset(
            k for k, fp in enumerate(fps[:-1]) if counts[fp] >= 2
        )
        for i, fps in enumerate(prefix_lists)
    }
    covered: set[str] = set()
    waves: list[list[int]] = []
    remaining = list(range(len(prefix_lists)))
    while remaining:
        wave: list[int] = []
        claimed: set[str] = set()
        deferred: list[int] = []
        for i in remaining:
            wants = {
                fp
                for fp in prefix_lists[i]
                if counts[fp] >= 2 and fp not in covered
            }
            if wants & claimed:
                deferred.append(i)
            else:
                wave.append(i)
                claimed |= wants
        waves.append(wave)
        covered |= claimed
        remaining = deferred
    return waves, forced


def default_workers() -> int:
    """A sensible worker count for ``--jobs 0`` style requests.

    Returns:
        One worker per CPU core the scheduler reports (at least 1):
        the jobs are CPU-bound synthesis runs, so oversubscription
        buys nothing.
    """
    return max(os.cpu_count() or 1, 1)


def compile_many(
    jobs: Iterable[CompileJob],
    *,
    workers: int = 1,
    cache: CompileCache | None = None,
    server: "str | None" = None,
    snapshots: "SnapshotPolicy | bool | None" = None,
) -> "dict[Hashable, FlowContext]":
    """Compile independent jobs, optionally across worker processes
    or through a remote compile server.

    Results are bit-identical to running the same jobs serially --
    parallelism only changes wall time, never outputs (contexts cross
    the process boundary by pickle, which preserves floats exactly).

    With a cache, hits are resolved up front in the parent (no worker
    is spawned for them); misses computed by workers are folded back
    into the parent's memory layer, and the disk layer -- when the
    cache has a ``path`` -- is shared with the workers directly
    (atomic entry files make concurrent writers safe).  A memory-only
    cache still dedups across one ``compile_many`` call, but workers
    cannot share it.

    Misses are scheduled by a *prefix-trie planner* (when the
    snapshot policy is enabled): jobs whose pipelines share a prefix
    on identical inputs are grouped so that exactly one leader
    executes each shared prefix, persisting a stage snapshot at the
    shared boundary, before the followers fan out and resume from it
    (serially, submission order achieves this; across workers, jobs
    are batched into waves that never race on an uncovered shared
    prefix -- requires a path-backed cache, since followers read the
    leader's snapshots through the shared disk layer).  ``snapshots``
    tunes the :class:`~repro.flow.cache.SnapshotPolicy` exactly as in
    :meth:`PassManager.compile`; disabling it restores the flat
    all-at-once schedule.

    With ``server``, cache misses are submitted to a
    :mod:`repro.serve` compile server as one batch instead of
    executing locally; a local ``cache`` then *fronts* the shared
    service (read-through for the up-front hit resolution,
    write-through as returned contexts are stored back), so only the
    first sighting of a fingerprint ever crosses the network.  Error
    behaviour is identical to local execution -- the earliest failing
    job in submission order raises its
    :class:`CompileJobError` -- and ``workers`` is ignored (the
    server's pool bounds concurrency).

    Args:
        jobs: the independent compiles; ``job.key`` must be unique
            within the call.
        workers: process count; ``<= 1`` runs serially in-process.
        cache: a shared :class:`~repro.flow.cache.CompileCache`, or
            ``None`` to always compile.
        server: base URL of a running compile server
            (``http://127.0.0.1:8731``), or ``None`` to execute
            locally.

    Returns:
        ``{job.key: completed FlowContext}`` in submission order; each
        context carries its own :class:`PassRecord` stream, which is
        how per-job instrumentation merges back.

    Raises:
        FlowError: duplicate job keys; transport failures against
            ``server`` (:class:`repro.serve.client.ServeError`).
        CompileJobError: a job failed; the earliest failing job in
            submission order raises (deterministic regardless of
            worker scheduling), carrying its key and the pass records
            accumulated up to the failure.
    """
    jobs = list(jobs)
    seen_keys: set = set()
    for job in jobs:
        if job.key in seen_keys:
            raise FlowError(f"duplicate compile job key {job.key!r}")
        seen_keys.add(job.key)

    ensure_recursion_headroom()
    policy = resolve_snapshot_policy(snapshots)
    results: dict[Hashable, FlowContext] = {}
    pending: list[tuple[int, CompileJob, str | None, list[str]]] = []
    for index, job in enumerate(jobs):
        if cache is not None:
            pipeline = _resolve_pipeline(job.pipeline)
            prefix_fps = (
                _job_prefix_fingerprints(job, pipeline)
                if policy.enabled and len(pipeline.passes) > 1
                else []
            )
            fingerprint = (
                prefix_fps[-1]
                if prefix_fps
                else _job_fingerprint(job, pipeline)
            )
            hit = cache.get(fingerprint)
            if hit is not None:
                results[job.key] = hit
                continue
            pending.append((index, job, fingerprint, prefix_fps))
        else:
            pending.append((index, job, None, []))

    # The prefix-trie plan of the misses: which boundaries must
    # snapshot, and (for the pool path) which jobs may run
    # concurrently without racing on a shared prefix.
    if cache is not None and policy.enabled:
        waves, forced = _plan_waves([fps for _, _, _, fps in pending])
    else:
        waves = [list(range(len(pending)))]
        forced = {}

    if server is not None:
        # Imported lazily: repro.serve depends on this module.
        from repro.serve.client import ServeClient

        if pending:
            # The server runs its own prefix-flight dedup; the batch
            # goes up unplanned.
            remote = ServeClient(server).compile(
                [job for _, job, _, _ in pending]
            )
            for _, job, fingerprint, _ in pending:
                ctx = remote[job.key]
                results[job.key] = ctx
                if cache is not None:
                    cache.put(fingerprint, ctx)
    elif workers <= 1 or len(pending) <= 1:
        # Submission order already executes each shared prefix exactly
        # once: the first job carrying it leads (snapshotting the
        # forced boundary), every later job resumes from the snapshot.
        for position, (_, job, fingerprint, _) in enumerate(pending):
            results[job.key] = _execute_job(
                job,
                cache,
                fingerprint,
                snapshots=policy,
                force_snapshot_after=forced.get(position, frozenset()),
            )
    else:
        cache_path = None if cache is None or cache.path is None else str(
            cache.path
        )
        if cache_path is None:
            # Workers cannot see each other's snapshots without a
            # shared disk layer, so wave barriers buy nothing.
            waves = [list(range(len(pending)))]
            forced = {}
        failures: list[tuple[int, CompileJobError]] = []
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending)),
            mp_context=_pool_context(),
            initializer=ensure_recursion_headroom,
        ) as pool:
            for wave in waves:
                futures = [
                    (position,
                     pool.submit(
                         _worker_run,
                         pending[position][1],
                         cache_path,
                         policy,
                         forced.get(position, frozenset()),
                     ))
                    for position in wave
                ]
                for position, future in futures:
                    index, job, fingerprint, _ = pending[position]
                    try:
                        ctx = future.result()
                    except CompileJobError as exc:
                        failures.append((index, exc))
                        continue
                    results[job.key] = ctx
                    if cache is not None:
                        # The worker already published to the shared
                        # disk layer; fold into the parent's memory
                        # layer too.
                        cache.put_memory(fingerprint, ctx)
        if failures:
            # Deterministic: the earliest job in submission order
            # raises, exactly as the serial path would.
            failures.sort(key=lambda pair: pair[0])
            raise failures[0][1]

    return {job.key: results[job.key] for job in jobs}
