"""Cross-run result store: persistent, diffable records of flow runs.

The compile cache (:mod:`repro.flow.cache`) makes repeated sweeps
cheap; this module makes them *comparable across commits*.  A
:class:`RunStore` persists one versioned JSON record per
(commit, figure/driver) pair -- the complete
:class:`~repro.expts.common.ExperimentResult` with every figure point,
the rendered pipeline specs that produced it, and the per-pass
instrumentation aggregated from the sweep's
:class:`~repro.flow.core.PassRecord` streams (wall times, AND-node
deltas, failed/rejected counts).  :func:`diff_runs` then compares two
stored records point-by-point and pass-by-pass, which is what
``python -m repro.track diff`` and the CI regression gate are built
on.

Layout on disk (human-readable, ``git diff``-able JSON)::

    .repro-runs/
        <full commit sha or label>/
            fig5.json
            fig6.json
            bench_passes.json

Records are written atomically (temp file + :func:`os.replace`), so a
store directory can be shared between concurrent recorders the same
way the compile cache is.  Unlike cache entries, records are *not*
pickles: loading one never executes code, so stores can be passed
around as CI artifacts safely.

Keying discipline: the record key is (commit, figure); everything
else the result depended on -- module identity per point label, the
rendered pipeline spec(s), the sweep scale, the RNG seeds, and the
cell library hash -- is stored *inside* the record (``result.meta``,
``library``), so a diff can refuse to compare apples to oranges
instead of silently reporting every point as regressed.
"""

from __future__ import annotations

import json
import math
import os
import re
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.flow.core import FlowError

if TYPE_CHECKING:
    from repro.expts.common import ExperimentResult, PassTotals

#: Bump whenever the record layout changes incompatibly; a store
#: written by a newer layout refuses to load instead of mis-reading.
RUN_STORE_VERSION = 1

#: Default store directory, a sibling of ``.repro-cache/``.
DEFAULT_STORE_DIR = ".repro-runs"

#: Commit labels and figure names become path components; confine them
#: to one safe charset instead of trusting the caller.
_KEY_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]*\Z")


class StoreError(FlowError):
    """A malformed store operation: bad key, corrupt or
    incompatible record."""


def _check_key(kind: str, value: str) -> str:
    if not _KEY_RE.match(value):
        raise StoreError(
            f"{kind} {value!r} is not a valid store key (want "
            f"[A-Za-z0-9._-]+ not starting with '.')"
        )
    return value


@dataclass(frozen=True)
class RunRecord:
    """One stored run: a figure's complete result at one commit.

    Args:
        figure: driver name (``fig5`` ... ``fig9``, ``bench_passes``).
        commit: full commit sha, or any label (``worktree``) when the
            run was not made from a clean commit.
        result: the complete experiment result, pass totals included.
        scale: the sweep scale the driver ran at.
        library: canonical hash of the cell library, so diffs across
            library changes can be detected rather than misread.
        created_at: seconds since the epoch at store time.
    """

    figure: str
    commit: str
    result: "ExperimentResult"
    scale: str = ""
    library: str = ""
    created_at: float = 0.0
    version: int = RUN_STORE_VERSION

    def to_json(self) -> dict:
        return {
            "version": self.version,
            "figure": self.figure,
            "commit": self.commit,
            "scale": self.scale,
            "library": self.library,
            "created_at": self.created_at,
            "result": self.result.to_json(),
        }

    @classmethod
    def from_json(cls, data: dict) -> "RunRecord":
        """Rebuild a record; a layout newer than this code refuses to
        load (:class:`StoreError`) instead of silently mis-reading.

        Raises:
            StoreError: unsupported ``version`` or missing fields.
        """
        from repro.expts.common import ExperimentResult

        try:
            version = int(data["version"])
            if version > RUN_STORE_VERSION:
                raise StoreError(
                    f"run record version {version} is newer than this "
                    f"code understands ({RUN_STORE_VERSION}); update "
                    f"the checkout that reads the store"
                )
            return cls(
                figure=data["figure"],
                commit=data["commit"],
                result=ExperimentResult.from_json(data["result"]),
                scale=data.get("scale", ""),
                library=data.get("library", ""),
                created_at=float(data.get("created_at", 0.0)),
                version=version,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreError(f"malformed run record: {exc}") from exc


class RunStore:
    """A directory of versioned run records keyed by (commit, figure).

    Args:
        root: store directory (created on first write); default
            ``.repro-runs``.
    """

    def __init__(self, root: str | os.PathLike = DEFAULT_STORE_DIR) -> None:
        self.root = Path(root)

    # -- keys ---------------------------------------------------------
    def record_file(self, commit: str, figure: str) -> Path:
        """The path a (commit, figure) record lives at.

        Raises:
            StoreError: a key that is not filesystem-safe.
        """
        return (
            self.root
            / _check_key("commit", commit)
            / f"{_check_key('figure', figure)}.json"
        )

    # -- write --------------------------------------------------------
    def put(self, record: RunRecord) -> Path:
        """Persist ``record``, replacing any previous record of the
        same (commit, figure).

        The write is atomic (temp file + rename), so concurrent
        recorders -- or a reader racing a writer -- never observe a
        half-written record.

        Returns:
            The path written.

        Raises:
            StoreError: unsafe commit/figure key.
            OSError: the store directory is not writable.
        """
        entry = self.record_file(record.commit, record.figure)
        entry.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            record.to_json(), indent=1, sort_keys=True, allow_nan=False
        )
        handle = tempfile.NamedTemporaryFile(
            "w",
            dir=entry.parent,
            prefix=f".{record.figure}-",
            suffix=".tmp",
            delete=False,
            encoding="utf-8",
        )
        try:
            with handle:
                handle.write(payload)
                handle.write("\n")
            os.replace(handle.name, entry)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        return entry

    # -- read ---------------------------------------------------------
    def get(self, commit: str, figure: str) -> RunRecord | None:
        """The stored record, or ``None`` when this (commit, figure)
        was never recorded.

        Raises:
            StoreError: the record exists but is corrupt or written by
                a newer layout -- unlike the compile cache, a damaged
                *result* record is an error, not a silent miss: a diff
                that quietly skipped it would report a clean run.
        """
        entry = self.record_file(commit, figure)
        try:
            text = entry.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        try:
            return RunRecord.from_json(json.loads(text))
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt run record {entry}: {exc}") from exc

    def commits(self) -> list[str]:
        """Commit labels with at least one record, sorted by the most
        recent record time (oldest first)."""
        if not self.root.is_dir():
            return []
        stamped = []
        for child in self.root.iterdir():
            records = list(child.glob("*.json"))
            if child.is_dir() and records:
                stamped.append(
                    (max(f.stat().st_mtime for f in records), child.name)
                )
        return [name for _, name in sorted(stamped)]

    def figures(self, commit: str) -> list[str]:
        """Figure names recorded for ``commit``, sorted."""
        folder = self.root / _check_key("commit", commit)
        if not folder.is_dir():
            return []
        return sorted(f.stem for f in folder.glob("*.json"))

    def entries(self) -> Iterator[RunRecord]:
        """Every stored record, oldest commit first."""
        for commit in self.commits():
            for figure in self.figures(commit):
                record = self.get(commit, figure)
                if record is not None:
                    yield record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RunStore {self.root}>"


# ---------------------------------------------------------------------
# Diffing two stored runs.
# ---------------------------------------------------------------------

def _pct_change(old: float, new: float) -> float:
    """Percent change from ``old`` to ``new`` (0 -> x is +inf)."""
    if old == 0:
        return 0.0 if new == 0 else math.inf
    return (new - old) / old * 100.0


@dataclass(frozen=True)
class PointDelta:
    """One figure point's change between two stored runs.

    Beyond the (x, y) areas, a delta carries the per-point sizing
    outcome when the drivers persisted it (``critical_delay`` /
    ``met`` in the point's ``meta``): ``delay_*`` is the achieved
    critical delay, ``met_*`` whether the clock target was met.
    Records written before timing persistence landed load with these
    as ``None`` and are exempt from the delay gate.
    """

    series: str
    label: str
    y_old: float
    y_new: float
    x_old: float
    x_new: float
    delay_old: float | None = None
    delay_new: float | None = None
    met_old: bool | None = None
    met_new: bool | None = None

    @property
    def y_pct(self) -> float:
        """Percent change of the measured value (y: the treatment's
        area for the scatter figures)."""
        return _pct_change(self.y_old, self.y_new)

    @property
    def delay_pct(self) -> float | None:
        """Percent change of the achieved critical delay, or ``None``
        when either side carries no timing."""
        if self.delay_old is None or self.delay_new is None:
            return None
        return _pct_change(self.delay_old, self.delay_new)

    @property
    def met_regressed(self) -> bool:
        """Did this point go from meeting its clock target to missing
        it?  (A regression at any delay threshold.)"""
        return self.met_old is True and self.met_new is False

    @property
    def changed(self) -> bool:
        delay_changed = (
            self.delay_old is not None
            and self.delay_new is not None
            and (
                self.delay_old != self.delay_new
                or self.met_old != self.met_new
            )
        )
        return (
            self.y_old != self.y_new
            or self.x_old != self.x_new
            or delay_changed
        )


@dataclass(frozen=True)
class PassDelta:
    """One pass's aggregated change between two stored runs."""

    name: str
    old: "PassTotals"
    new: "PassTotals"

    @property
    def time_pct(self) -> float:
        """Percent change of the total wall time spent in this pass."""
        return _pct_change(self.old.wall_time_s, self.new.wall_time_s)

    @property
    def structural_change(self) -> bool:
        """Did the pass do different *work* (calls, AND-node movement,
        failure/rejection counts), as opposed to just running slower?"""
        return (
            self.old.calls != self.new.calls
            or self.old.delta_ands != self.new.delta_ands
            or self.old.failed != self.new.failed
            or self.old.rejected != self.new.rejected
            or self.old.skipped != self.new.skipped
        )


@dataclass
class RunDiff:
    """The comparison of one figure's runs at two commits.

    ``point_deltas``/``pass_deltas`` cover keys present in both runs;
    points or passes that appear on only one side are listed
    separately (a *partial* baseline is reported, never silently
    treated as clean).
    """

    figure: str
    baseline_commit: str
    current_commit: str
    point_deltas: list[PointDelta] = field(default_factory=list)
    pass_deltas: list[PassDelta] = field(default_factory=list)
    only_in_baseline: list[str] = field(default_factory=list)
    only_in_current: list[str] = field(default_factory=list)
    passes_only_in_baseline: list[str] = field(default_factory=list)
    passes_only_in_current: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    # -- judgements ---------------------------------------------------
    def changed_points(self) -> list[PointDelta]:
        return [d for d in self.point_deltas if d.changed]

    def area_regressions(self, threshold_pct: float) -> list[PointDelta]:
        """Points whose measured value grew more than
        ``threshold_pct`` percent (area: bigger is worse)."""
        return [
            d for d in self.point_deltas if d.y_pct > threshold_pct
        ]

    def delay_regressions(self, threshold_pct: float) -> list[PointDelta]:
        """Points whose achieved critical delay grew more than
        ``threshold_pct`` percent, or that stopped meeting their clock
        target.  Points with no persisted timing (records from before
        timing persistence) never qualify."""
        out = []
        for delta in self.point_deltas:
            pct = delta.delay_pct
            if delta.met_regressed or (pct is not None and pct > threshold_pct):
                out.append(delta)
        return out

    def time_regressions(
        self, threshold_pct: float, min_time_s: float = 0.05
    ) -> list[PassDelta]:
        """Passes whose total wall time grew more than
        ``threshold_pct`` percent.

        Args:
            threshold_pct: relative growth that counts as a
                regression; wall clocks are noisy, so CI uses a far
                looser bound here than for areas.
            min_time_s: ignore passes faster than this on *both*
                sides -- a 2 ms pass doubling is measurement noise.
        """
        return [
            d
            for d in self.pass_deltas
            if max(d.old.wall_time_s, d.new.wall_time_s) >= min_time_s
            and d.time_pct > threshold_pct
        ]

    def structural_changes(self) -> list[PassDelta]:
        return [d for d in self.pass_deltas if d.structural_change]

    @property
    def incomplete(self) -> bool:
        """True when the two runs did not cover the same keys."""
        return bool(
            self.only_in_baseline
            or self.only_in_current
            or self.passes_only_in_baseline
            or self.passes_only_in_current
        )

    @property
    def identical(self) -> bool:
        """No value changed and both runs covered the same keys
        (pass wall times are compared exactly, which holds when the
        current run was served entirely from the compile cache)."""
        return (
            not self.incomplete
            and not self.changed_points()
            and not any(
                d.old != d.new for d in self.pass_deltas
            )
        )

    # -- rendering ----------------------------------------------------
    def render(
        self,
        area_threshold_pct: float,
        time_threshold_pct: float,
        min_time_s: float = 0.05,
        delay_threshold_pct: float | None = None,
    ) -> str:
        """A human-readable report; regressions past the thresholds
        are marked ``<<`` so they stand out in CI logs.
        ``delay_threshold_pct=None`` leaves the timing gate off (delay
        changes still render, unmarked)."""
        lines = [
            f"== {self.figure}: {self.baseline_commit[:12]} -> "
            f"{self.current_commit[:12]} =="
        ]
        for note in self.notes:
            lines.append(f"!! {note}")
        for key in self.only_in_baseline:
            lines.append(f"!! point only in baseline: {key}")
        for key in self.only_in_current:
            lines.append(f"!! point only in current: {key}")
        for name in self.passes_only_in_baseline:
            lines.append(f"!! pass only in baseline: {name}")
        for name in self.passes_only_in_current:
            lines.append(f"!! pass only in current: {name}")

        area_bad = set(
            id(d) for d in self.area_regressions(area_threshold_pct)
        )
        delay_bad = (
            set()
            if delay_threshold_pct is None
            else set(
                id(d) for d in self.delay_regressions(delay_threshold_pct)
            )
        )
        changed = self.changed_points()
        if changed:
            lines.append(f"-- {len(changed)} figure point(s) changed:")
            for delta in changed:
                marker = (
                    " <<" if id(delta) in area_bad or id(delta) in delay_bad
                    else ""
                )
                timing = ""
                if delta.delay_pct is not None:
                    timing = (
                        f", delay {delta.delay_old:.3f} -> "
                        f"{delta.delay_new:.3f} ({delta.delay_pct:+.1f}%)"
                    )
                    if delta.met_regressed:
                        timing += " [target now missed]"
                lines.append(
                    f"   {delta.series}/{delta.label}: "
                    f"y {delta.y_old:.1f} -> {delta.y_new:.1f} "
                    f"({delta.y_pct:+.1f}%), "
                    f"x {delta.x_old:.1f} -> {delta.x_new:.1f}"
                    f"{timing}{marker}"
                )
        time_bad = set(
            id(d)
            for d in self.time_regressions(time_threshold_pct, min_time_s)
        )
        slower = [
            d
            for d in self.pass_deltas
            if d.old.wall_time_s != d.new.wall_time_s or d.structural_change
        ]
        if slower:
            lines.append(f"-- {len(slower)} pass total(s) changed:")
            for delta in sorted(
                slower, key=lambda d: -abs(d.time_pct)
            ):
                marker = " <<" if id(delta) in time_bad else ""
                lines.append(
                    f"   {delta.name}: {delta.old.wall_time_s:.3f}s -> "
                    f"{delta.new.wall_time_s:.3f}s "
                    f"({delta.time_pct:+.1f}%), "
                    f"calls {delta.old.calls} -> {delta.new.calls}, "
                    f"dands {delta.old.delta_ands} -> "
                    f"{delta.new.delta_ands}{marker}"
                )
        if len(lines) == 1:
            lines.append("   identical: no point or pass deltas")
        return "\n".join(lines)


def diff_runs(baseline: RunRecord, current: RunRecord) -> RunDiff:
    """Compare two stored runs of the same figure.

    Points are matched by (series, label), passes by name; keys
    present on only one side are reported in the diff's
    ``only_in_*`` lists rather than dropped.  A library or scale
    mismatch is recorded as a note -- the numbers are still compared,
    but the report says why they may differ wholesale.

    Raises:
        StoreError: the records describe different figures.
    """
    if baseline.figure != current.figure:
        raise StoreError(
            f"cannot diff {baseline.figure!r} against {current.figure!r}"
        )
    diff = RunDiff(
        figure=baseline.figure,
        baseline_commit=baseline.commit,
        current_commit=current.commit,
    )
    if baseline.library and current.library \
            and baseline.library != current.library:
        diff.notes.append(
            "cell libraries differ; area deltas reflect the library "
            "change, not the flow"
        )
    if baseline.scale != current.scale:
        diff.notes.append(
            f"scales differ (baseline {baseline.scale!r}, current "
            f"{current.scale!r}); coverage will not match"
        )

    old_points = {
        (p.series, p.label): p for p in baseline.result.points
    }
    new_points = {(p.series, p.label): p for p in current.result.points}
    for key in old_points.keys() | new_points.keys():
        old = old_points.get(key)
        new = new_points.get(key)
        if old is None:
            diff.only_in_current.append("/".join(key))
        elif new is None:
            diff.only_in_baseline.append("/".join(key))
        else:
            def timing(point):
                delay = point.meta.get("critical_delay")
                met = point.meta.get("met")
                return (
                    None if delay is None else float(delay),
                    None if met is None else bool(met),
                )

            delay_old, met_old = timing(old)
            delay_new, met_new = timing(new)
            diff.point_deltas.append(
                PointDelta(
                    series=key[0],
                    label=key[1],
                    y_old=old.y,
                    y_new=new.y,
                    x_old=old.x,
                    x_new=new.x,
                    delay_old=delay_old,
                    delay_new=delay_new,
                    met_old=met_old,
                    met_new=met_new,
                )
            )
    diff.point_deltas.sort(key=lambda d: (d.series, d.label))
    diff.only_in_baseline.sort()
    diff.only_in_current.sort()

    old_passes = baseline.result.pass_totals
    new_passes = current.result.pass_totals
    for name in sorted(old_passes.keys() | new_passes.keys()):
        old_totals = old_passes.get(name)
        new_totals = new_passes.get(name)
        if old_totals is None:
            diff.passes_only_in_current.append(name)
        elif new_totals is None:
            diff.passes_only_in_baseline.append(name)
        else:
            diff.pass_deltas.append(
                PassDelta(name=name, old=old_totals, new=new_totals)
            )
    return diff


def now() -> float:
    """Store timestamp (seconds since the epoch); one seam for tests
    that need deterministic ``created_at`` values."""
    return time.time()
