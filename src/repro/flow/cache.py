"""Content-addressed caching for flow pipeline compiles.

The figure drivers re-synthesize hundreds of independent
(module, pipeline) pairs, and repeated sweeps re-run identical jobs
from scratch.  This module keys a completed :class:`FlowContext` on a
stable *fingerprint* of everything that determines the result:

* the canonical content hash of the input design
  (:meth:`Module.canonical_hash` / :meth:`AIG.canonical_hash`),
* the rendered pipeline spec, including every non-default pass
  parameter (:meth:`PassManager.spec` -- which is why spec round-trip
  fidelity is load-bearing),
* the seeded annotations, the RNG seed, and the cell library.

:class:`CompileCache` layers a bounded in-memory LRU over an optional
on-disk store.  Disk entries are pickled contexts written atomically
(temp file + :func:`os.replace`), so a directory can be shared by the
worker processes of :func:`repro.flow.parallel.compile_many` and
across interpreter runs (``python -m repro.expts`` reuses
``.repro-cache/`` by default).  Corrupt or truncated entries read as
misses, never as errors.

Cached contexts must be treated as read-only: an in-memory hit returns
the stored object itself.

Disk entries are **pickles**: loading one executes whatever its bytes
describe, so only point ``path`` at directories you trust (your own
working tree, your own CI workspace).  Do not share a cache directory
with writers you would not let run code on your machine.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:
    from repro.aig.graph import AIG
    from repro.flow.core import FlowContext
    from repro.rtl.module import Module
    from repro.synth.dc_options import StateAnnotation
    from repro.tech.cells import Library

#: Bump whenever fingerprinted semantics change (pass behaviour,
#: context pickling layout) to invalidate every existing entry.
FINGERPRINT_VERSION = 1


def flow_fingerprint(
    spec: str,
    *,
    module: "Module | None" = None,
    aig: "AIG | None" = None,
    annotations: Sequence["StateAnnotation"] = (),
    library: "Library | None" = None,
    seed: int = 2011,
) -> str:
    """The cache key of one ``PassManager.compile`` invocation.

    Everything the run's result can depend on goes in: canonical input
    hashes, the rendered pipeline spec (per-pass parameters included),
    the seeded annotations in order (order can matter -- encoding
    assigns codes by iteration), the library identity, and the RNG
    seed.  Annotation values are hashed in the order given, and the
    spec is the *rendered* string, so any pass whose parameters cannot
    round-trip through spec syntax raises rather than fingerprinting
    ambiguously.
    """
    digest = hashlib.sha256()
    digest.update(repr(("flow-fingerprint", FINGERPRINT_VERSION)).encode())
    digest.update(repr(("spec", spec)).encode())
    digest.update(
        repr(
            ("module", None if module is None else module.canonical_hash())
        ).encode()
    )
    digest.update(
        repr(("aig", None if aig is None else aig.canonical_hash())).encode()
    )
    digest.update(
        repr(
            (
                "annotations",
                tuple((a.reg_name, tuple(a.values)) for a in annotations),
            )
        ).encode()
    )
    digest.update(
        repr(
            (
                "library",
                None if library is None else library.canonical_hash(),
            )
        ).encode()
    )
    digest.update(repr(("seed", seed)).encode())
    return digest.hexdigest()


class CompileCache:
    """A two-layer (memory LRU, optional disk) store of completed
    flow contexts, keyed by :func:`flow_fingerprint`.

    Args:
        path: directory of the on-disk store; created on first write.
            ``None`` keeps the cache memory-only.
        max_memory_entries: LRU bound of the in-memory layer.
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        max_memory_entries: int = 512,
    ) -> None:
        if max_memory_entries < 1:
            raise ValueError(
                f"max_memory_entries must be >= 1, got {max_memory_entries}"
            )
        self.path = None if path is None else Path(path)
        self.max_memory_entries = max_memory_entries
        self._memory: OrderedDict[str, "FlowContext"] = OrderedDict()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0

    # -- lookup -------------------------------------------------------
    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def get(self, key: str) -> "FlowContext | None":
        """The cached context for ``key``, or None on a miss."""
        hit = self._memory.get(key)
        if hit is not None:
            self._memory.move_to_end(key)
            self.memory_hits += 1
            return hit
        hit = self._disk_get(key)
        if hit is not None:
            self.disk_hits += 1
            self.put_memory(key, hit)
            return hit
        self.misses += 1
        return None

    def put(self, key: str, ctx: "FlowContext") -> None:
        """Store a completed context under ``key`` (memory and disk)."""
        self.put_memory(key, ctx)
        self._disk_put(key, ctx)
        self.stores += 1

    def stats(self) -> str:
        return (
            f"cache: {self.memory_hits} memory hits, "
            f"{self.disk_hits} disk hits, {self.misses} misses, "
            f"{self.stores} stores"
        )

    # -- the memory layer ---------------------------------------------
    def put_memory(self, key: str, ctx: "FlowContext") -> None:
        """Store in the memory layer only (used when the disk layer
        was already written by a worker process)."""
        self._memory[key] = ctx
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    # -- the disk layer -----------------------------------------------
    def _entry_file(self, key: str) -> Path:
        # Two-level fanout keeps directories small on big sweeps.
        return self.path / key[:2] / f"{key}.pkl"

    def _disk_get(self, key: str) -> "FlowContext | None":
        if self.path is None:
            return None
        try:
            with open(self._entry_file(key), "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            # A truncated or stale entry is a miss, not an error.
            return None

    def _disk_put(self, key: str, ctx: "FlowContext") -> None:
        if self.path is None:
            return
        entry = self._entry_file(key)
        entry.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: concurrent workers may race on the same key,
        # and a reader must never observe a half-written pickle.
        handle = tempfile.NamedTemporaryFile(
            dir=entry.parent, prefix=f".{key[:8]}-", suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                pickle.dump(ctx, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(handle.name, entry)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "memory" if self.path is None else str(self.path)
        return f"<CompileCache {where} {self.stats()!r}>"
