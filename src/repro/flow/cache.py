"""Content-addressed caching for flow pipeline compiles.

The figure drivers re-synthesize hundreds of independent
(module, pipeline) pairs, and repeated sweeps re-run identical jobs
from scratch.  This module keys a completed :class:`FlowContext` on a
stable *fingerprint* of everything that determines the result:

* the canonical content hash of the input design
  (:meth:`Module.canonical_hash` / :meth:`AIG.canonical_hash`),
* the rendered pipeline spec, including every non-default pass
  parameter (:meth:`PassManager.spec` -- which is why spec round-trip
  fidelity is load-bearing),
* the seeded annotations, the RNG seed, and the cell library.

:class:`CompileCache` layers a bounded in-memory LRU over an optional
*backend* -- any object implementing the small :class:`CacheBackend`
protocol (load/store raw entry bytes by fingerprint).  The built-in
:class:`LocalDirBackend` is the historical on-disk store: pickled
contexts written atomically (temp file + :func:`os.replace`), so a
directory can be shared by the worker processes of
:func:`repro.flow.parallel.compile_many` and across interpreter runs
(``python -m repro.expts`` reuses ``.repro-cache/`` by default).
:mod:`repro.serve.backends` adds remote and tiered backends speaking
the compile server's HTTP cache endpoints, which is how CI, developers
and many concurrent clients share one warm cache.  Corrupt or
truncated entries read as misses, never as errors.

The cache is thread-safe: the memory LRU and every counter are guarded
by one lock, so a compile server's request handlers and pool callbacks
can share a single instance (backend I/O happens outside the lock --
backends must be individually thread-safe, which atomic entry files
already make the local-dir one).

Cached contexts must be treated as read-only: an in-memory hit returns
the stored object itself.

Entries are **pickles**: loading one executes whatever its bytes
describe, so only point ``path`` (or a remote backend) at stores you
trust (your own working tree, your own CI workspace, your own compile
server).  Do not share a cache with writers you would not let run code
on your machine.
"""

from __future__ import annotations

import hashlib
import inspect
import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.flow.core import FlowContext, FlowError, is_controller_ir
from repro.tech.cells import default_library_hash

if TYPE_CHECKING:
    from repro.aig.graph import AIG
    from repro.rtl.module import Module
    from repro.synth.dc_options import StateAnnotation
    from repro.tech.cells import Library

#: Bump whenever fingerprinted semantics change (pass behaviour,
#: context pickling layout) to invalidate every existing entry.
#: Version 2: controller-IR inputs (``ctrl``) and configuration
#: ``bindings`` joined the key when the frontend became passes.
#: Version 3: a ``None`` library fingerprints as the *resolved*
#: default library (``repro.tech.cells.default_library``), so a
#: changed default can never serve stale hits.
#: Version 4: :class:`FlowContext` grew a ``meta`` slot (resume
#: provenance), changing the context pickling layout.
#: Version 5: :class:`FlowContext` grew a ``facts`` slot and fact
#: sheets joined the key -- a fact-assisted compile may legitimately
#: produce a different (better) result than a plain one, so the two
#: must never collide.
FINGERPRINT_VERSION = 5

#: Bump whenever the stage-snapshot envelope or the meaning of a
#: restored mid-pipeline context changes: snapshot keys are derived
#: from this version, so a bump orphans (never mis-reads) old
#: snapshots, and the envelope's own version field rejects skewed
#: blobs that still arrive through a shared backend.
SNAPSHOT_VERSION = 1

#: The two entry kinds a cache backend may be asked to move: completed
#: compile results (the historical namespace) and mid-pipeline stage
#: snapshots.  Backends that predate kinds simply never receive the
#: keyword (see :func:`backend_load`/:func:`backend_store`).
ENTRY_KIND = "entry"
SNAPSHOT_KIND = "snapshot"

#: The pickle-tolerance set: anything a truncated, stale, or
#: wrong-version entry can raise while loading.  Shared by every
#: consumer that must read damaged entries as misses.
UNPICKLE_ERRORS = (
    OSError,
    pickle.UnpicklingError,
    EOFError,
    AttributeError,
    ImportError,
    IndexError,
)


def flow_fingerprint(
    spec: str,
    *,
    ctrl=None,
    module: "Module | None" = None,
    aig: "AIG | None" = None,
    annotations: Sequence["StateAnnotation"] = (),
    bindings: "dict[str, list[int]] | None" = None,
    library: "Library | None" = None,
    seed: int = 2011,
    facts=None,
) -> str:
    """The cache key of one ``PassManager.compile`` invocation.

    Everything the run's result can depend on goes in: canonical input
    hashes, the rendered pipeline spec (per-pass parameters included),
    the seeded annotations in order (order can matter -- encoding
    assigns codes by iteration), the library identity, and the RNG
    seed.  Annotation values are hashed in the order given, and the
    spec is the *rendered* string, so any pass whose parameters cannot
    round-trip through spec syntax raises rather than fingerprinting
    ambiguously.

    Args:
        spec: the rendered pipeline spec (:meth:`PassManager.spec`).
        ctrl: the controller-IR input, when the flow starts from the
            frontend stage; hashed by its ``ir_hash()`` (the
            :class:`~repro.flow.core.ControllerIR` protocol), so a
            warm run skips the lowering as well as the synthesis.
        module: the un-elaborated RTL input, when the flow starts from
            RTL; hashed by :meth:`Module.canonical_hash`.
        aig: the elaborated input, when the flow starts from an AIG;
            hashed by :meth:`AIG.canonical_hash`.
        annotations: seeded state annotations, hashed in order.
        bindings: configuration-memory contents consumed by the
            ``pe_bind`` pass; hashed name-sorted.
        library: the cell library (``canonical_hash()``); ``None``
            means the flow's default library, which is *resolved
            before hashing* -- ``TechMapPass`` falls back to
            :func:`repro.tech.cells.default_library` at run time, so
            the fingerprint must cover that resolved library, not the
            ``None`` placeholder, or a future change of the built-in
            default would serve stale cache hits.
        seed: the context RNG seed.
        facts: the seeded :class:`~repro.check.facts.FactSheet`, or
            ``None``; hashed by its content hash (``sheet_hash()``),
            so fact-assisted and plain compiles key differently.

    Returns:
        A hex SHA-256 digest; equal digests mean "same compile".

    Raises:
        FlowError: via ``spec`` rendering upstream -- a pipeline whose
            parameters have no faithful spec form must not be
            fingerprinted (two distinct pipelines could collide); also
            when ``ctrl`` does not implement the ControllerIR
            protocol (an unhashable IR input must not be cached).
    """
    chunks = _input_chunks(
        ctrl=ctrl,
        module=module,
        aig=aig,
        annotations=annotations,
        bindings=bindings,
        library=library,
        seed=seed,
        facts=facts,
    )
    return _spec_digest(spec, chunks)


def _input_chunks(
    *,
    ctrl=None,
    module: "Module | None" = None,
    aig: "AIG | None" = None,
    annotations: Sequence["StateAnnotation"] = (),
    bindings: "dict[str, list[int]] | None" = None,
    library: "Library | None" = None,
    seed: int = 2011,
    facts=None,
) -> "list[bytes]":
    """The input-dependent digest chunks of :func:`flow_fingerprint`,
    in hashing order -- everything except the version header and the
    spec chunk, so a prefix fold (:func:`fingerprint_prefixes`) hashes
    the inputs once instead of once per prefix."""
    if ctrl is not None and not is_controller_ir(ctrl):
        raise FlowError(
            f"{type(ctrl).__name__} input has no ir_hash(): only "
            f"ControllerIR inputs can be fingerprinted"
        )
    chunks = [
        repr(("ctrl", None if ctrl is None else ctrl.ir_hash())).encode(),
        repr(
            ("module", None if module is None else module.canonical_hash())
        ).encode(),
        repr(
            (
                "bindings",
                None
                if bindings is None
                else tuple(
                    (name, tuple(words))
                    for name, words in sorted(bindings.items())
                ),
            )
        ).encode(),
        repr(
            ("aig", None if aig is None else aig.canonical_hash())
        ).encode(),
        repr(
            (
                "annotations",
                tuple((a.reg_name, tuple(a.values)) for a in annotations),
            )
        ).encode(),
    ]
    library_hash = (
        default_library_hash() if library is None else library.canonical_hash()
    )
    chunks.append(repr(("library", library_hash)).encode())
    # Specs carry pass-pinned libraries by *name* (map{library=...});
    # the registry digest makes the names' definitions part of the
    # key, so editing any registered kit invalidates instead of
    # replaying results mapped against the old cells.  Imported
    # lazily: this module loads before the pass registry during
    # package import.
    from repro.flow.passes import registered_libraries_digest

    chunks.append(
        repr(("library-registry", registered_libraries_digest())).encode()
    )
    chunks.append(repr(("seed", seed)).encode())
    chunks.append(
        repr(
            ("facts", None if facts is None else facts.sheet_hash())
        ).encode()
    )
    return chunks


def _spec_digest(spec: str, chunks: "list[bytes]") -> str:
    digest = hashlib.sha256()
    digest.update(repr(("flow-fingerprint", FINGERPRINT_VERSION)).encode())
    digest.update(repr(("spec", spec)).encode())
    for chunk in chunks:
        digest.update(chunk)
    return digest.hexdigest()


def fingerprint_prefixes(
    prefix_specs: Sequence[str],
    *,
    ctrl=None,
    module: "Module | None" = None,
    aig: "AIG | None" = None,
    annotations: Sequence["StateAnnotation"] = (),
    bindings: "dict[str, list[int]] | None" = None,
    library: "Library | None" = None,
    seed: int = 2011,
    facts=None,
) -> "list[str]":
    """:func:`flow_fingerprint` folded over every pipeline prefix.

    ``prefix_specs`` is the cumulative rendered spec of each prefix
    (:meth:`PassManager.prefix_specs` -- element ``k`` covers the
    first ``k + 1`` passes, so the last element is the full spec).
    The input hashes are computed once and each prefix fingerprint is
    *digest-identical* to calling :func:`flow_fingerprint` on that
    prefix's spec with the same inputs: the fingerprint of a pipeline
    that genuinely ends at pass ``k`` and of the length-``k`` prefix
    of a longer pipeline are the same key, which is what makes stage
    snapshots shareable across recipes that diverge after a common
    prefix.

    Returns:
        One hex digest per prefix, in prefix order (the last is the
        full-pipeline fingerprint).
    """
    chunks = _input_chunks(
        ctrl=ctrl,
        module=module,
        aig=aig,
        annotations=annotations,
        bindings=bindings,
        library=library,
        seed=seed,
        facts=facts,
    )
    return [_spec_digest(spec, chunks) for spec in prefix_specs]


def snapshot_key(prefix_fingerprint: str) -> str:
    """The backend key a stage snapshot is stored under.

    Derived (not equal): hashing the prefix fingerprint with a
    kind/version tag keeps snapshots out of the completed-entry
    namespace even on backends that predate entry kinds, keeps the
    key a 64-hex digest the server's wire validation accepts, and
    makes a :data:`SNAPSHOT_VERSION` bump orphan old snapshots
    instead of mis-reading them.
    """
    tag = f"stage-snapshot:{SNAPSHOT_VERSION}:{prefix_fingerprint}"
    return hashlib.sha256(tag.encode()).hexdigest()


@dataclass(frozen=True)
class StageSnapshot:
    """The versioned envelope a stage snapshot pickles as.

    ``ctx`` is the mid-pipeline :class:`FlowContext` exactly as it
    stood after ``passes_done`` top-level passes of ``prefix_spec``.
    Readers validate ``version`` (and the envelope type itself) before
    trusting the payload; anything else -- including an old reader
    that has never heard of this class -- reads as a cache miss
    through the :data:`UNPICKLE_ERRORS` tolerance.
    """

    version: int
    prefix_spec: str
    passes_done: int
    ctx: FlowContext


@dataclass(frozen=True)
class SnapshotPolicy:
    """When a resumable compile persists a mid-pipeline snapshot.

    Snapshots cost a pickle and backend write each, so the policy
    bounds them to the boundaries worth resuming from: every *stage*
    boundary (the representation changed -- elaboration, mapping),
    every pass slower than ``min_pass_seconds`` (the work worth not
    redoing), and every boundary a scheduler forces (the prefix-trie
    planner marks prefixes shared by several jobs).  The pipeline's
    final pass never snapshots -- the completed entry already covers
    it.

    Environment knobs (read by :meth:`from_env`, which every executor
    defaults to): ``REPRO_SNAPSHOTS=0`` disables snapshotting and
    resuming entirely; ``REPRO_SNAPSHOT_MIN_S`` overrides the
    wall-time threshold (seconds).
    """

    enabled: bool = True
    min_pass_seconds: float = 0.05
    stage_boundaries: bool = True

    @classmethod
    def from_env(cls) -> "SnapshotPolicy":
        if os.environ.get("REPRO_SNAPSHOTS", "").strip().lower() in (
            "0", "off", "no", "false",
        ):
            return cls(enabled=False)
        raw = os.environ.get("REPRO_SNAPSHOT_MIN_S", "").strip()
        if raw:
            try:
                return cls(min_pass_seconds=float(raw))
            except ValueError:
                pass  # a malformed override keeps the default
        return cls()

    def should_snapshot(
        self,
        *,
        wall_time_s: float,
        stage_changed: bool,
        forced: bool = False,
    ) -> bool:
        if not self.enabled:
            return False
        if forced:
            return True
        if self.stage_boundaries and stage_changed:
            return True
        return wall_time_s >= self.min_pass_seconds


def resolve_snapshot_policy(
    snapshots: "SnapshotPolicy | bool | None",
) -> SnapshotPolicy:
    """The policy an executor's ``snapshots=`` argument means:
    ``None`` defers to the environment, booleans toggle the default
    policy, and an explicit :class:`SnapshotPolicy` wins as given."""
    if snapshots is None:
        return SnapshotPolicy.from_env()
    if snapshots is True:
        return SnapshotPolicy()
    if snapshots is False:
        return SnapshotPolicy(enabled=False)
    return snapshots


class CacheBackend:
    """The protocol of a :class:`CompileCache` persistence layer.

    A backend is a key-value store of raw entry bytes keyed by
    :func:`flow_fingerprint` digests.  It never sees the pickling --
    serialization stays in :class:`CompileCache`, so every backend
    (local directory, remote server, tiered combinations) moves opaque
    blobs and the corrupt-entry tolerance lives in exactly one place.

    Backends must be safe to call from multiple threads: the cache
    invokes them outside its own lock so slow I/O never serializes
    unrelated lookups.
    """

    def load(self, key: str) -> bytes | None:
        """The stored blob for ``key``, or ``None`` on a miss.  I/O
        failures read as misses, never as errors."""
        raise NotImplementedError

    def store(self, key: str, blob: bytes) -> None:
        """Persist ``blob`` under ``key``, replacing any previous
        entry.  Concurrent writers of the same key must be safe."""
        raise NotImplementedError

    def stats(self) -> dict:
        """A JSON-safe description of the backend for ``/stats``."""
        return {"kind": type(self).__name__}


def _kind_aware(method) -> bool:
    """Whether a backend load/store method accepts the ``kind=``
    keyword.  Inspected (not duck-called): a kind-unaware custom
    backend must keep working unchanged, and catching ``TypeError``
    around the call would swallow genuine bugs inside the backend."""
    try:
        parameters = inspect.signature(method).parameters
    except (TypeError, ValueError):  # builtins, mocks without signatures
        return False
    return "kind" in parameters or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters.values()
    )


def backend_load(
    backend: CacheBackend, key: str, kind: str = ENTRY_KIND
) -> bytes | None:
    """Load ``key`` from ``backend``, passing ``kind`` only to
    backends that understand it.  Kind-unaware backends share one
    namespace for both kinds -- safe, because snapshot keys are
    derived digests (:func:`snapshot_key`) that cannot collide with
    entry fingerprints."""
    if _kind_aware(backend.load):
        return backend.load(key, kind=kind)
    return backend.load(key)


def backend_store(
    backend: CacheBackend, key: str, blob: bytes, kind: str = ENTRY_KIND
) -> None:
    """Store ``blob`` under ``key``, passing ``kind`` only to backends
    that understand it (see :func:`backend_load`)."""
    if _kind_aware(backend.store):
        backend.store(key, blob, kind=kind)
    else:
        backend.store(key, blob)


class LocalDirBackend(CacheBackend):
    """The historical on-disk store: one atomically-written pickle
    file per fingerprint under a two-level fanout directory.

    Args:
        path: store directory; created on first write.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    def entry_file(self, key: str, kind: str = ENTRY_KIND) -> Path:
        # Two-level fanout keeps directories small on big sweeps.
        # Stage snapshots live under a third path level (``snap/``):
        # pre-snapshot readers glob exactly ``*/*.pkl``, so the extra
        # component keeps the new kind invisible to them.
        if kind == SNAPSHOT_KIND:
            return self.path / "snap" / key[:2] / f"{key}.pkl"
        return self.path / key[:2] / f"{key}.pkl"

    def load(self, key: str, kind: str = ENTRY_KIND) -> bytes | None:
        try:
            return self.entry_file(key, kind).read_bytes()
        except OSError:
            return None

    def store(self, key: str, blob: bytes, kind: str = ENTRY_KIND) -> None:
        entry = self.entry_file(key, kind)
        entry.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: concurrent workers may race on the same key,
        # and a reader must never observe a half-written pickle.
        handle = tempfile.NamedTemporaryFile(
            dir=entry.parent, prefix=f".{key[:8]}-", suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(blob)
            os.replace(handle.name, entry)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def _listing(self, kind: str) -> "list[Path]":
        # ``*/*.pkl`` matches exactly two path components, so entries
        # and snapshots (three components, under ``snap/``) never
        # appear in each other's listing.
        pattern = "snap/*/*.pkl" if kind == SNAPSHOT_KIND else "*/*.pkl"
        try:
            if not self.path.is_dir():
                return []
            return list(self.path.glob(pattern))
        except OSError:
            return []  # an unreadable cache directory reads as empty

    def stats(self) -> dict:
        counts = {ENTRY_KIND: 0, SNAPSHOT_KIND: 0}
        sizes = {ENTRY_KIND: 0, SNAPSHOT_KIND: 0}
        for kind in (ENTRY_KIND, SNAPSHOT_KIND):
            for file in self._listing(kind):
                try:
                    size = file.stat().st_size
                except OSError:
                    continue
                counts[kind] += 1
                sizes[kind] += size
        return {
            "kind": "local-dir",
            "path": str(self.path),
            "entries": counts[ENTRY_KIND],
            "snapshots": counts[SNAPSHOT_KIND],
            "entry_bytes": sizes[ENTRY_KIND],
            "snapshot_bytes": sizes[SNAPSHOT_KIND],
        }

    # -- garbage collection -------------------------------------------
    def sweep(
        self,
        max_bytes: int | None = None,
        max_age_days: float | None = None,
    ) -> "SweepStats":
        """Evict entries by age, then by size budget (see
        :meth:`CompileCache.sweep` for the contract).

        Completed entries and stage snapshots are swept jointly: one
        age horizon, one size budget, oldest-first across both kinds
        (a snapshot is exactly as re-computable as an entry, so
        neither deserves protection from the other).  ``scanned`` /
        ``removed`` / byte totals cover both kinds; the snapshot share
        is broken out in ``scanned_snapshots``/``removed_snapshots``.
        """
        entries: list[tuple[float, int, Path, str]] = []
        for kind in (ENTRY_KIND, SNAPSHOT_KIND):
            for file in self._listing(kind):
                try:
                    if not file.is_file():
                        continue  # a directory named *.pkl is not ours
                    stat = file.stat()
                except OSError:
                    continue  # deleted (or unreadable) under us: skip
                entries.append((stat.st_mtime, stat.st_size, file, kind))
        bytes_before = sum(size for _, size, _, _ in entries)
        scanned = len(entries)
        scanned_snapshots = sum(
            1 for e in entries if e[3] == SNAPSHOT_KIND
        )

        doomed: list[tuple[float, int, Path, str]] = []
        if max_age_days is not None:
            horizon = time.time() - max_age_days * 86400.0
            doomed = [e for e in entries if e[0] < horizon]
            entries = [e for e in entries if e[0] >= horizon]
        if max_bytes is not None:
            entries.sort(key=lambda e: e[:2])  # oldest first
            kept_bytes = sum(size for _, size, _, _ in entries)
            while entries and kept_bytes > max_bytes:
                victim = entries.pop(0)
                kept_bytes -= victim[1]
                doomed.append(victim)

        removed = 0
        removed_snapshots = 0
        freed = 0
        for _, size, file, kind in doomed:
            try:
                os.unlink(file)
            except OSError:
                continue  # already gone: someone else swept it
            removed += 1
            removed_snapshots += int(kind == SNAPSHOT_KIND)
            freed += size
        return SweepStats(
            scanned=scanned,
            removed=removed,
            bytes_before=bytes_before,
            bytes_after=bytes_before - freed,
            scanned_snapshots=scanned_snapshots,
            removed_snapshots=removed_snapshots,
        )


class CompileCache:
    """A two-layer (memory LRU, optional backend) store of completed
    flow contexts, keyed by :func:`flow_fingerprint`.

    Args:
        path: directory of an on-disk :class:`LocalDirBackend`;
            created on first write.  ``None`` keeps the cache
            memory-only (unless ``backend`` is given).
        max_memory_entries: LRU bound of the in-memory layer.
        backend: an explicit :class:`CacheBackend` (mutually exclusive
            with ``path``) -- e.g. the remote or tiered backends of
            :mod:`repro.serve.backends`.
        max_snapshot_entries: LRU bound of the in-memory *snapshot*
            layer.  Snapshots are mid-pipeline contexts -- bigger and
            shorter-lived than completed entries -- so they get their
            own, smaller bound.
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        max_memory_entries: int = 512,
        backend: CacheBackend | None = None,
        max_snapshot_entries: int = 32,
    ) -> None:
        if max_memory_entries < 1:
            raise ValueError(
                f"max_memory_entries must be >= 1, got {max_memory_entries}"
            )
        if max_snapshot_entries < 1:
            raise ValueError(
                f"max_snapshot_entries must be >= 1, got "
                f"{max_snapshot_entries}"
            )
        if path is not None and backend is not None:
            raise ValueError(
                "give path (a LocalDirBackend) or backend, not both"
            )
        if backend is None and path is not None:
            backend = LocalDirBackend(path)
        self.backend = backend
        self.max_memory_entries = max_memory_entries
        self.max_snapshot_entries = max_snapshot_entries
        #: One lock guards the LRU dicts and every counter: server
        #: request handlers and pool callbacks share one instance, and
        #: an unguarded OrderedDict corrupts under concurrent movers.
        #: Backend I/O and (un)pickling happen outside the lock.
        self._lock = threading.Lock()
        self._memory: OrderedDict[str, "FlowContext"] = OrderedDict()  # guarded-by: _lock
        #: The snapshot LRU stores pickled envelope *bytes*, never the
        #: unpickled context: resuming mutates the restored context in
        #: place, so handing two resumes one shared object would let
        #: the first corrupt the second.  Every hit unpickles fresh.
        self._snapshots: OrderedDict[str, bytes] = OrderedDict()  # guarded-by: _lock
        self.memory_hits = 0  # guarded-by: _lock
        self.disk_hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.stores = 0  # guarded-by: _lock
        self.inflight = 0  # guarded-by: _lock
        self.snapshot_hits = 0  # guarded-by: _lock
        self.snapshot_misses = 0  # guarded-by: _lock
        self.snapshot_stores = 0  # guarded-by: _lock

    @property
    def path(self) -> Path | None:
        """The local store directory, when the backend is one
        (:func:`repro.flow.parallel.compile_many` ships this to worker
        processes); ``None`` for memory-only and remote backends."""
        if isinstance(self.backend, LocalDirBackend):
            return self.backend.path
        return None

    # -- lookup -------------------------------------------------------
    @property
    def hits(self) -> int:
        with self._lock:
            return self.memory_hits + self.disk_hits

    def get(self, key: str) -> "FlowContext | None":
        """Look up a completed context by fingerprint.

        A backend hit is promoted into the memory layer.  Corrupt or
        truncated backend entries read as misses, never as errors.

        Args:
            key: a :func:`flow_fingerprint` digest.

        Returns:
            The cached context (treat as read-only -- memory hits
            share one object), or ``None`` on a miss.
        """
        with self._lock:
            hit = self._memory.get(key)
            if hit is not None:
                self._memory.move_to_end(key)
                self.memory_hits += 1
                return hit
        hit = self._backend_get(key)
        if hit is not None:
            with self._lock:
                self.disk_hits += 1
            self.put_memory(key, hit)
            return hit
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, ctx: "FlowContext") -> None:
        """Store a completed context under ``key`` (memory and
        backend).

        Args:
            key: a :func:`flow_fingerprint` digest.
            ctx: the finished flow context; stored by reference in
                memory and pickled to the backend, so do not mutate it
                after storing.

        Raises:
            OSError: a local backend's directory is not writable.
        """
        self.put_memory(key, ctx)
        if self.backend is not None:
            backend_store(self.backend, key, _dumps(ctx), kind=ENTRY_KIND)
        with self._lock:
            self.stores += 1

    # -- stage snapshots ----------------------------------------------
    def get_snapshot(self, prefix_fingerprint: str) -> "FlowContext | None":
        """Restore the mid-pipeline context snapshotted under a prefix
        fingerprint (:func:`fingerprint_prefixes`), or ``None``.

        Every hit unpickles a *fresh* context -- the caller will
        mutate it by running the remaining passes, so snapshot hits
        never share objects (unlike :meth:`get`).  Wrong-version or
        non-snapshot blobs read as misses.
        """
        key = snapshot_key(prefix_fingerprint)
        with self._lock:
            blob = self._snapshots.get(key)
            if blob is not None:
                self._snapshots.move_to_end(key)
        if blob is None and self.backend is not None:
            blob = backend_load(self.backend, key, kind=SNAPSHOT_KIND)
        snapshot = None if blob is None else _loads_snapshot(blob)
        if snapshot is None:
            with self._lock:
                self.snapshot_misses += 1
            return None
        self._put_snapshot_memory(key, blob)
        with self._lock:
            self.snapshot_hits += 1
        return snapshot.ctx

    def put_snapshot(
        self,
        prefix_fingerprint: str,
        ctx: "FlowContext",
        *,
        prefix_spec: str = "",
        passes_done: int = 0,
    ) -> None:
        """Snapshot a mid-pipeline context under a prefix fingerprint.

        The context is pickled once, here -- the stored bytes are the
        snapshot's identity from then on, immune to the caller
        continuing to mutate ``ctx``.
        """
        blob = _dumps(
            StageSnapshot(
                version=SNAPSHOT_VERSION,
                prefix_spec=prefix_spec,
                passes_done=passes_done,
                ctx=ctx,
            )
        )
        key = snapshot_key(prefix_fingerprint)
        self._put_snapshot_memory(key, blob)
        if self.backend is not None:
            backend_store(self.backend, key, blob, kind=SNAPSHOT_KIND)
        with self._lock:
            self.snapshot_stores += 1

    def get_prefix_entry(self, key: str) -> "FlowContext | None":
        """A completed entry restored *for mutation* -- the resume
        probe's view of a full compile whose pipeline is a prefix of a
        longer one (prefix fingerprints are digest-identical to the
        short pipeline's full fingerprint, so its entry is a valid
        resume point).

        Unlike :meth:`get`, the result is always a fresh copy (memory
        hits are pickle-roundtripped), never the shared read-only
        object, and no hit/miss counters move -- cold compiles probe
        every prefix depth, which would otherwise drown the miss rate.
        """
        with self._lock:
            ctx = self._memory.get(key)
        if ctx is not None:
            return _loads(_dumps(ctx))
        if self.backend is None:
            return None
        blob = backend_load(self.backend, key, kind=ENTRY_KIND)
        return None if blob is None else _loads(blob)

    def _put_snapshot_memory(self, key: str, blob: bytes) -> None:
        with self._lock:
            self._snapshots[key] = blob
            self._snapshots.move_to_end(key)
            while len(self._snapshots) > self.max_snapshot_entries:
                self._snapshots.popitem(last=False)

    def stats(self) -> dict:
        """A JSON-safe counter snapshot -- what the compile server
        exposes at ``/stats``.  ``disk_hits`` counts backend hits of
        any kind; ``inflight`` is the number of cache-missing compiles
        currently executing (maintained by callers through
        :meth:`inflight_begin`/:meth:`inflight_end`)."""
        with self._lock:
            return {
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "hits": self.memory_hits + self.disk_hits,
                "misses": self.misses,
                "stores": self.stores,
                "inflight": self.inflight,
                "memory_entries": len(self._memory),
                "snapshot_hits": self.snapshot_hits,
                "snapshot_misses": self.snapshot_misses,
                "snapshot_stores": self.snapshot_stores,
                "snapshot_entries": len(self._snapshots),
                "backend": None
                if self.backend is None
                else self.backend.stats(),
            }

    def stats_line(self) -> str:
        """The one-line human form of :meth:`stats`."""
        stats = self.stats()
        return (
            f"cache: {stats['memory_hits']} memory hits, "
            f"{stats['disk_hits']} disk hits, {stats['misses']} misses, "
            f"{stats['stores']} stores"
        )

    # -- in-flight accounting -----------------------------------------
    def inflight_begin(self) -> None:
        """Mark one cache-missing compile as executing (server
        handlers call this around the actual synthesis work)."""
        with self._lock:
            self.inflight += 1

    def inflight_end(self) -> None:
        with self._lock:
            self.inflight -= 1

    # -- the memory layer ---------------------------------------------
    def put_memory(self, key: str, ctx: "FlowContext") -> None:
        """Store in the memory layer only (used when the backend was
        already written by a worker process)."""
        with self._lock:
            self._memory[key] = ctx
            self._memory.move_to_end(key)
            while len(self._memory) > self.max_memory_entries:
                self._memory.popitem(last=False)

    # -- the backend layer --------------------------------------------
    def _backend_get(self, key: str) -> "FlowContext | None":
        if self.backend is None:
            return None
        blob = backend_load(self.backend, key, kind=ENTRY_KIND)
        if blob is None:
            return None
        return _loads(blob)

    # -- raw entry bytes (the server's cache endpoints) ---------------
    def export_blob(self, key: str, kind: str = ENTRY_KIND) -> bytes | None:
        """The raw entry bytes for ``key``, or ``None`` on a miss.

        Serves ``GET /cache/<fingerprint>`` (and, with
        ``kind=SNAPSHOT_KIND``, ``GET /cache/snap/<key>``): backend
        bytes are returned verbatim when available; a memory-only hit
        is pickled on the way out, so a remote client reading through
        this cache sees exactly what a local cache would have stored.
        """
        if self.backend is not None:
            blob = backend_load(self.backend, key, kind=kind)
            if blob is not None:
                return blob
        if kind == SNAPSHOT_KIND:
            with self._lock:
                return self._snapshots.get(key)
        with self._lock:
            ctx = self._memory.get(key)
        return None if ctx is None else _dumps(ctx)

    def import_blob(
        self, key: str, blob: bytes, kind: str = ENTRY_KIND
    ) -> bool:
        """Store raw entry bytes under ``key`` (``PUT
        /cache/<fingerprint>``, or ``PUT /cache/snap/<key>`` with
        ``kind=SNAPSHOT_KIND``).

        With a backend, the bytes are persisted verbatim (no unpickle
        on the write path -- a server absorbing write-through traffic
        must not execute every uploaded entry).  Memory-only caches
        must deserialize to keep the entry at all; a corrupt or
        wrong-shaped blob is rejected.

        Returns:
            True when the entry was accepted.
        """
        if self.backend is not None:
            backend_store(self.backend, key, blob, kind=kind)
            with self._lock:
                if kind == SNAPSHOT_KIND:
                    self.snapshot_stores += 1
                else:
                    self.stores += 1
            return True
        if kind == SNAPSHOT_KIND:
            if _loads_snapshot(blob) is None:
                return False
            self._put_snapshot_memory(key, blob)
            with self._lock:
                self.snapshot_stores += 1
            return True
        ctx = _loads(blob)
        if ctx is None:
            return False
        self.put_memory(key, ctx)
        with self._lock:
            self.stores += 1
        return True

    # -- garbage collection -------------------------------------------
    def sweep(
        self,
        max_bytes: int | None = None,
        max_age_days: float | None = None,
    ) -> "SweepStats":
        """Evict local-backend entries by age, then by size budget.

        ``.repro-cache/`` otherwise grows without bound: every distinct
        (design, pipeline, seed, library) fingerprint adds a pickle
        that nothing ever deletes.  The sweep first drops entries older
        than ``max_age_days`` (by mtime -- ``os.replace`` preserves the
        write time, so age means "time since this result was
        computed"), then, if the survivors still exceed ``max_bytes``,
        drops the oldest survivors first until the budget holds.
        Concurrently-deleted files are skipped, so sweeping a live
        shared cache is safe; the memory layer is left intact (it is
        bounded by ``max_memory_entries`` already).

        Args:
            max_bytes: total size budget for the local store; ``None``
                means no size bound.
            max_age_days: entries older than this are evicted
                regardless of the size budget; ``None`` means no age
                bound.

        Returns:
            A :class:`SweepStats` describing what was scanned, what
            was removed, and the bytes before/after.  A memory-only
            cache, a backend that is not a sweepable local store, a
            missing or empty cache directory, and a ``path`` that is
            not a directory at all return all-zero stats -- GC of
            nothing is a no-op, never an error.  Foreign files in the
            cache directory (anything that is not a regular ``*.pkl``
            entry file, including stray subdirectories named like
            entries) and files that vanish or turn unreadable
            mid-sweep are skipped, not crashed on.

        Raises:
            ValueError: a negative ``max_bytes`` or ``max_age_days``.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if max_age_days is not None and max_age_days < 0:
            raise ValueError(
                f"max_age_days must be >= 0, got {max_age_days}"
            )
        sweeper = getattr(self.backend, "sweep", None)
        if sweeper is None:
            return SweepStats()
        return sweeper(max_bytes=max_bytes, max_age_days=max_age_days)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = "memory" if self.backend is None else repr(self.backend.stats())
        return f"<CompileCache {where} {self.stats_line()!r}>"


def _dumps(ctx: "FlowContext") -> bytes:
    return pickle.dumps(ctx, protocol=pickle.HIGHEST_PROTOCOL)


def _loads(blob: bytes) -> "FlowContext | None":
    try:
        loaded = pickle.loads(blob)
    except UNPICKLE_ERRORS:
        # A truncated or stale entry is a miss, not an error.
        return None
    if not isinstance(loaded, FlowContext):
        # A foreign blob under an entry key (e.g. a snapshot envelope
        # uploaded to the wrong endpoint) is a miss, never a context.
        return None
    return loaded


def _loads_snapshot(blob: bytes) -> "StageSnapshot | None":
    try:
        loaded = pickle.loads(blob)
    except UNPICKLE_ERRORS:
        return None
    if (
        not isinstance(loaded, StageSnapshot)
        or loaded.version != SNAPSHOT_VERSION
        or not isinstance(loaded.ctx, FlowContext)
    ):
        # Wrong envelope, skewed version, bogus payload: all misses.
        return None
    return loaded


@dataclass(frozen=True)
class SweepStats:
    """What one :meth:`CompileCache.sweep` did.  ``scanned``,
    ``removed``, and the byte totals cover completed entries *and*
    stage snapshots; the ``*_snapshots`` fields break out the snapshot
    share of the first two."""

    scanned: int = 0
    removed: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    scanned_snapshots: int = 0
    removed_snapshots: int = 0

    def __str__(self) -> str:
        return (
            f"swept "
            f"{self.removed - self.removed_snapshots}"
            f"/{self.scanned - self.scanned_snapshots} entries "
            f"({self.removed_snapshots}/{self.scanned_snapshots} "
            f"snapshots), "
            f"{self.bytes_before} -> {self.bytes_after} bytes"
        )
