"""Cycle-accurate interpreter for RTL modules.

This is the *reference semantics* of the IR: every other view of a
design (elaborated AIG, mapped netlist) is validated against it by
cross-simulation.  The clocking model is the usual synchronous one:

* :meth:`Simulator.reset` forces every resettable register to its
  reset value (and, for determinism, ``"none"`` registers too).
* :meth:`Simulator.step` evaluates outputs for the current cycle from
  current state + inputs, then advances registers and memory writes.
"""

from __future__ import annotations

from repro.rtl.ast import (
    BinOp,
    Case,
    Concat,
    Const,
    Expr,
    InputRef,
    MemRead,
    Mux,
    Not,
    ReduceOp,
    RegRef,
    Slice,
)
from repro.rtl.module import Module


class Simulator:
    """Interprets a validated :class:`~repro.rtl.module.Module`."""

    def __init__(self, module: Module) -> None:
        module.validate()
        self.module = module
        self.reg_values: dict[str, int] = {}
        self.mem_values: dict[str, list[int]] = {}
        self.cycle = 0
        for memory in module.memories.values():
            if memory.contents is not None:
                self.mem_values[memory.name] = memory.padded_contents()
            else:
                self.mem_values[memory.name] = [0] * memory.depth
        self.reset()

    def reset(self) -> None:
        """Apply reset: all registers to their reset values."""
        for reg in self.module.regs.values():
            self.reg_values[reg.name] = reg.reset_value
        self.cycle = 0

    def load_memory(self, name: str, contents: list[int]) -> None:
        """Backdoor-load a writable memory (test convenience)."""
        memory = self.module.memories[name]
        if memory.contents is not None:
            raise ValueError(f"memory {name!r} is a ROM")
        if len(contents) > memory.depth:
            raise ValueError("too many words")
        padded = list(contents) + [0] * (memory.depth - len(contents))
        self.mem_values[name] = padded

    def step(self, inputs: dict[str, int] | None = None) -> dict[str, int]:
        """Advance one clock cycle; returns this cycle's output values."""
        inputs = dict(inputs or {})
        for name, port in self.module.inputs.items():
            value = inputs.setdefault(name, 0)
            if not 0 <= value < (1 << port.width):
                raise ValueError(f"input {name!r} value {value} out of range")

        cache: dict[int, int] = {}
        outputs = {
            name: self._eval(expr, inputs, cache)
            for name, expr in self.module.outputs.items()
        }

        next_regs = {
            reg.name: self._eval(reg.next, inputs, cache)
            for reg in self.module.regs.values()
        }
        # Memory writes use this cycle's input values.
        for memory in self.module.memories.values():
            if memory.write_port is None:
                continue
            port = memory.write_port
            if inputs.get(port.enable, 0):
                addr = inputs.get(port.addr, 0)
                data = inputs.get(port.data, 0)
                self.mem_values[memory.name][addr] = data
        self.reg_values.update(next_regs)
        self.cycle += 1
        return outputs

    def run(self, stimulus: list[dict[str, int]]) -> list[dict[str, int]]:
        """Step once per stimulus entry; returns the output trace."""
        return [self.step(entry) for entry in stimulus]

    def peek_reg(self, name: str) -> int:
        return self.reg_values[name]

    def poke_reg(self, name: str, value: int) -> None:
        reg = self.module.regs[name]
        if not 0 <= value < (1 << reg.width):
            raise ValueError("value does not fit the register")
        self.reg_values[name] = value

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def _eval(self, expr: Expr, inputs: dict[str, int], cache: dict[int, int]) -> int:
        key = id(expr)
        cached = cache.get(key)
        if cached is not None:
            return cached
        value = self._eval_uncached(expr, inputs, cache)
        cache[key] = value
        return value

    def _eval_uncached(
        self, expr: Expr, inputs: dict[str, int], cache: dict[int, int]
    ) -> int:
        mask = (1 << expr.width) - 1
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, InputRef):
            return inputs[expr.name]
        if isinstance(expr, RegRef):
            return self.reg_values[expr.name]
        if isinstance(expr, MemRead):
            addr = self._eval(expr.addr, inputs, cache)
            return self.mem_values[expr.mem_name][addr]
        if isinstance(expr, Not):
            return (~self._eval(expr.operand, inputs, cache)) & mask
        if isinstance(expr, BinOp):
            left = self._eval(expr.left, inputs, cache)
            right = self._eval(expr.right, inputs, cache)
            if expr.op == "and":
                return left & right
            if expr.op == "or":
                return left | right
            if expr.op == "xor":
                return left ^ right
            if expr.op == "add":
                return (left + right) & mask
            if expr.op == "sub":
                return (left - right) & mask
            if expr.op == "eq":
                return int(left == right)
            if expr.op == "lt":
                return int(left < right)
            raise AssertionError(expr.op)
        if isinstance(expr, ReduceOp):
            value = self._eval(expr.operand, inputs, cache)
            if expr.op == "or":
                return int(value != 0)
            if expr.op == "and":
                return int(value == (1 << expr.operand.width) - 1)
            return value.bit_count() & 1
        if isinstance(expr, Mux):
            sel = self._eval(expr.sel, inputs, cache)
            chosen = expr.if1 if sel else expr.if0
            return self._eval(chosen, inputs, cache)
        if isinstance(expr, Slice):
            value = self._eval(expr.operand, inputs, cache)
            return (value >> expr.lsb) & mask
        if isinstance(expr, Concat):
            value = 0
            shift = 0
            for part in expr.parts:
                value |= self._eval(part, inputs, cache) << shift
                shift += part.width
            return value
        if isinstance(expr, Case):
            selector = self._eval(expr.selector, inputs, cache)
            for label, arm in expr.arms:
                if selector == label:
                    return self._eval(arm, inputs, cache)
            return self._eval(expr.default, inputs, cache)
        raise TypeError(f"cannot evaluate {type(expr).__name__}")
