"""Random stimulus generation for simulation-based checks."""

from __future__ import annotations

import random

from repro.rtl.module import Module


def random_stimulus(
    module: Module,
    cycles: int,
    rng: random.Random,
    overrides: dict[str, int] | None = None,
    exclude: tuple[str, ...] = (),
) -> list[dict[str, int]]:
    """Uniform random values for every input, one dict per cycle.

    Args:
        module: design whose input widths set the value ranges.
        cycles: number of stimulus entries.
        rng: random source (caller controls the seed).
        overrides: inputs pinned to fixed values every cycle (e.g.
            configuration-write enables held at 0).
        exclude: inputs left at 0 (not randomized, not overridden).
    """
    overrides = overrides or {}
    trace = []
    for _ in range(cycles):
        entry: dict[str, int] = {}
        for name, port in module.inputs.items():
            if name in overrides:
                entry[name] = overrides[name]
            elif name in exclude:
                entry[name] = 0
            else:
                entry[name] = rng.getrandbits(port.width)
        trace.append(entry)
    return trace
