"""Cross-simulation of RTL modules against elaborated AIGs.

The elaborator and every optimization pass are validated by driving
the RTL reference simulator and the AIG evaluator with identical
stimulus and comparing outputs cycle by cycle.  Passes that change
reset-transient behaviour (retiming) use ``settle_cycles`` to skip an
initialization window, which is the standard notion of retiming
equivalence.
"""

from __future__ import annotations

import random

from repro.aig.graph import AIG, lit_node
from repro.rtl.module import Module
from repro.sim.rtlsim import Simulator
from repro.sim.vectors import random_stimulus


class AigSim:
    """Cycle-accurate interpreter for a sequential AIG."""

    def __init__(self, aig: AIG) -> None:
        self.aig = aig
        self._pi_by_name = dict(zip(aig.pi_names, aig.pis))
        self.state: dict[int, int] = {
            latch.node: latch.reset_value for latch in aig.latches
        }

    def reset(self) -> None:
        for latch in self.aig.latches:
            self.state[latch.node] = latch.reset_value

    def step(self, inputs: dict[str, int]) -> dict[str, int]:
        """One clock cycle; input values are per-PI-name bits."""
        pi_values = {}
        for name, node in self._pi_by_name.items():
            pi_values[node] = inputs.get(name, 0) & 1
        pos, nxt = self.aig.evaluate(pi_values, dict(self.state))
        for latch in self.aig.latches:
            self.state[latch.node] = nxt[latch.name]
        return pos

    def step_words(self, inputs: dict[str, int]) -> dict[str, int]:
        """Like :meth:`step` but with word-level input/output values.

        Inputs named ``foo`` map onto PIs ``foo[i]``; outputs are
        reassembled from POs named ``bar[i]``.
        """
        bit_inputs: dict[str, int] = {}
        for name, value in inputs.items():
            bit = 0
            while f"{name}[{bit}]" in self._pi_by_name:
                bit_inputs[f"{name}[{bit}]"] = (value >> bit) & 1
                bit += 1
            if bit == 0 and name in self._pi_by_name:
                bit_inputs[name] = value & 1
        pos = self.step(bit_inputs)
        words: dict[str, int] = {}
        for name, value in pos.items():
            base, _, index = name.rpartition("[")
            if index.endswith("]"):
                words.setdefault(base, 0)
                if value:
                    words[base] |= 1 << int(index[:-1])
            else:
                words[name] = value
        return words


class NetlistSim:
    """Cycle-accurate interpreter for a mapped netlist."""

    def __init__(self, netlist) -> None:
        self.netlist = netlist
        self.state: dict[str, int] = {
            flop.name: flop.reset_value for flop in netlist.flops
        }

    def reset(self) -> None:
        for flop in self.netlist.flops:
            self.state[flop.name] = flop.reset_value

    def step_words(self, inputs: dict[str, int]) -> dict[str, int]:
        """One clock cycle with word-level input/output values."""
        bit_inputs: dict[str, int] = {}
        for name, value in inputs.items():
            bit = 0
            while f"{name}[{bit}]" in self.netlist.pi_nets:
                bit_inputs[f"{name}[{bit}]"] = (value >> bit) & 1
                bit += 1
            if bit == 0 and name in self.netlist.pi_nets:
                bit_inputs[name] = value & 1
        pos, nxt = self.netlist.evaluate(bit_inputs, dict(self.state))
        self.state.update(nxt)
        words: dict[str, int] = {}
        for name, value in pos.items():
            base, _, index = name.rpartition("[")
            if index.endswith("]"):
                words.setdefault(base, 0)
                if value:
                    words[base] |= 1 << int(index[:-1])
            else:
                words[name] = value
        return words


def crosscheck_rtl_netlist(
    module: Module,
    netlist,
    cycles: int = 64,
    seed: int = 0,
    overrides: dict[str, int] | None = None,
    settle_cycles: int = 0,
) -> None:
    """Assert RTL and a mapped netlist agree on random stimulus."""
    rng = random.Random(seed)
    stimulus = random_stimulus(module, cycles, rng, overrides=overrides)
    rtl = Simulator(module)
    gate = NetlistSim(netlist)
    for cycle, entry in enumerate(stimulus):
        expected = rtl.step(entry)
        got = gate.step_words(entry)
        if cycle < settle_cycles:
            continue
        for name, value in expected.items():
            if got.get(name, 0) != value:
                raise AssertionError(
                    f"cycle {cycle}: output {name!r} RTL={value} "
                    f"netlist={got.get(name, 0)} (inputs {entry})"
                )


def crosscheck_rtl_aig(
    module: Module,
    aig: AIG,
    cycles: int = 64,
    seed: int = 0,
    overrides: dict[str, int] | None = None,
    settle_cycles: int = 0,
) -> None:
    """Assert RTL and AIG agree on random stimulus.

    Raises ``AssertionError`` with a cycle-precise message on the first
    mismatch after the settle window.
    """
    rng = random.Random(seed)
    stimulus = random_stimulus(module, cycles, rng, overrides=overrides)
    rtl = Simulator(module)
    gate = AigSim(aig)
    for cycle, entry in enumerate(stimulus):
        expected = rtl.step(entry)
        got = gate.step_words(entry)
        if cycle < settle_cycles:
            continue
        for name, value in expected.items():
            if got.get(name, 0) != value:
                raise AssertionError(
                    f"cycle {cycle}: output {name!r} RTL={value} "
                    f"AIG={got.get(name, 0)} (inputs {entry})"
                )
