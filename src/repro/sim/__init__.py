"""Simulation: cycle-accurate RTL interpretation and cross-checking.

- :class:`~repro.sim.rtlsim.Simulator` runs :class:`repro.rtl.Module`
  designs cycle by cycle (the reference semantics).
- :func:`~repro.sim.crosscheck.crosscheck_rtl_aig` drives an RTL module
  and its elaborated AIG with the same random stimulus and compares
  outputs -- the workhorse validation of the elaborator and of every
  sequential-unsafe optimization (retiming, re-encoding).
"""

from repro.sim.rtlsim import Simulator
from repro.sim.vectors import random_stimulus

__all__ = ["Simulator", "random_stimulus"]
