#!/usr/bin/env python3
"""A miniature chip generator: parameterized traffic-light controllers.

The generator takes per-deployment parameters (green durations, the
presence of a pedestrian-request input) and emits the controller as a
*table* -- the paper's intermediate representation -- plus the state
annotation a downstream synthesis flow needs.  The same generator can
then be asked for the flexible (field-reprogrammable) or the bound
(specialized) implementation.

Run:  python examples/traffic_light_generator.py
"""

from dataclasses import dataclass

from repro.controllers import FsmSpec, fsm_to_table_rtl
from repro.controllers.fsm_rtl import table_rows
from repro.pe import bind_tables
from repro.rtl import to_verilog
from repro.sim import Simulator
from repro.synth import CompileOptions, DesignCompiler
from repro.synth.dc_options import StateAnnotation

# Output encoding: {NS green, NS yellow, EW green, EW yellow, walk}.
NS_GREEN, NS_YELLOW, EW_GREEN, EW_YELLOW, WALK = (1 << i for i in range(5))


@dataclass(frozen=True)
class CrossingParams:
    """Deployment parameters for one intersection."""

    ns_green_ticks: int = 3
    ew_green_ticks: int = 2
    pedestrian_button: bool = True


def generate_spec(params: CrossingParams) -> FsmSpec:
    """Emit the controller as a state table.

    States: a green countdown per direction, a yellow per direction,
    and (optionally) a walk phase.  Input bit 0 is the tick strobe;
    bit 1 is the pedestrian request when enabled.
    """
    num_inputs = 2 if params.pedestrian_button else 1
    states = []
    for tick in range(params.ns_green_ticks):
        states.append(("ns_green", tick))
    states.append(("ns_yellow", 0))
    for tick in range(params.ew_green_ticks):
        states.append(("ew_green", tick))
    states.append(("ew_yellow", 0))
    if params.pedestrian_button:
        states.append(("walk", 0))
    index_of = {state: i for i, state in enumerate(states)}

    combos = 1 << num_inputs
    next_state = [[0] * combos for _ in states]
    output = [[0] * combos for _ in states]
    for (phase, tick), here in index_of.items():
        for word in range(combos):
            advance = word & 1
            request = bool(word & 2) if params.pedestrian_button else False
            if phase == "ns_green":
                out = NS_GREEN
                if tick + 1 < params.ns_green_ticks:
                    succ = index_of[("ns_green", tick + 1)]
                else:
                    succ = index_of[("ns_yellow", 0)]
            elif phase == "ns_yellow":
                out = NS_YELLOW
                succ = index_of[("ew_green", 0)]
            elif phase == "ew_green":
                out = EW_GREEN
                if tick + 1 < params.ew_green_ticks:
                    succ = index_of[("ew_green", tick + 1)]
                elif request:
                    succ = index_of[("walk", 0)]
                else:
                    succ = index_of[("ew_yellow", 0)]
            elif phase == "ew_yellow":
                out = EW_YELLOW
                succ = index_of[("ns_green", 0)]
            else:  # walk
                out = WALK
                succ = index_of[("ew_yellow", 0)]
            next_state[here][word] = succ if advance else here
            output[here][word] = out
    return FsmSpec(
        "crossing",
        num_inputs=num_inputs,
        num_outputs=5,
        num_states=len(states),
        reset_state=0,
        next_state=next_state,
        output=output,
    )


def main() -> None:
    params = CrossingParams(ns_green_ticks=3, ew_green_ticks=2)
    spec = generate_spec(params)
    print(f"generated {spec.num_states}-state controller "
          f"({spec.state_bits}-bit state register)")

    # The generator's three products: tables, annotation, RTL.
    annotation = StateAnnotation("state", tuple(range(spec.num_states)))
    flexible = fsm_to_table_rtl(spec, flexible=True)
    bound = bind_tables(
        flexible,
        {
            "next_mem": table_rows(spec, "next"),
            "out_mem": table_rows(spec, "output"),
        },
    )

    # Demonstrate behaviour: one full cycle of the intersection.
    sim = Simulator(bound)
    seen = []
    for _ in range(10):
        out = sim.step({"in": 0b01})  # tick every cycle, no request
        seen.append(out["out"])
    print("light sequence:", " ".join(f"{o:05b}" for o in seen))

    compiler = DesignCompiler()
    flexible_area = compiler.compile(flexible).area
    bound_area = compiler.compile(bound).area
    annotated_area = compiler.compile(
        bound, CompileOptions(state_annotations=[annotation])
    ).area
    print(f"flexible:  {flexible_area.total:8.1f} um^2")
    print(f"bound:     {bound_area.total:8.1f} um^2")
    print(f"annotated: {annotated_area.total:8.1f} um^2")

    print()
    print("SystemVerilog for the bound controller:")
    print(to_verilog(bound))


if __name__ == "__main__":
    main()
