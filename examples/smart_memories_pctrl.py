#!/usr/bin/env python3
"""The Smart Memories protocol controller study (the paper's Fig. 9).

Builds the PCtrl model, simulates a cached line fill through the
flexible hardware, then runs the Full / Auto / Manual synthesis flows
for both memory configurations and prints the area comparison.

Uses a reduced-size PCtrl so the whole demo runs in about a minute;
``python -m repro.expts fig9 --scale medium`` runs the full-size model.

Run:  python examples/smart_memories_pctrl.py
"""

from repro.sim import Simulator
from repro.smartmem import (
    build_pctrl,
    compile_auto,
    compile_full,
    compile_manual,
)
from repro.smartmem.config import (
    CACHED_CONFIG,
    UNCACHED_CONFIG,
    PCtrlParams,
    RequestOp,
)


def demo_transaction(design) -> None:
    """Program the flexible hardware and run one coherence request."""
    sim = Simulator(design.flexible)
    for mem_name, rows in design.bindings(CACHED_CONFIG).items():
        for addr, word in enumerate(rows):
            sim.step(
                {
                    f"{mem_name}_we": 1,
                    f"{mem_name}_waddr": addr,
                    f"{mem_name}_wdata": word,
                }
            )
    sim.reset()

    sim.step(
        {"req_valid": 1, "req_op": int(RequestOp.READ_SHARED), "req_addr": 0x3C}
    )
    print("cycle  pipe0_re  pipe0_addr  ack")
    for cycle in range(16):
        out = sim.step({"hit": 0, "mem_din": 0xA0 + cycle})
        print(
            f"{cycle:5d}  {out['pipe0_re']:8d}  {out['pipe0_addr']:#10x}"
            f"  {out['ack']:3d}"
        )
        if out["ack"]:
            break


def main() -> None:
    params = PCtrlParams(
        num_pipes=4, word_bits=8, max_line_words=8, queue_depth=2
    )
    design = build_pctrl(params)
    print(f"PCtrl model: {design.flexible.stats()}")
    print(f"microcode image: {design.image.length} instructions")
    print()
    demo_transaction(design)
    print()

    full = compile_full(design)
    rows = [("full", None, full), ]
    for config, name in ((CACHED_CONFIG, "cached"), (UNCACHED_CONFIG, "uncached")):
        rows.append((f"auto/{name}", config, compile_auto(design, config)))
        rows.append((f"manual/{name}", config, compile_manual(design, config)))

    print("flow             comb um^2   seq um^2   total um^2")
    for name, _config, result in rows:
        area = result.area
        print(
            f"{name:15s}  {area.combinational:9.1f}  {area.sequential:9.1f}"
            f"  {area.total:11.1f}"
        )

    auto_unc = next(r for n, _c, r in rows if n == "auto/uncached").area.total
    man_unc = next(r for n, _c, r in rows if n == "manual/uncached").area.total
    print()
    print(
        f"manual saves {1 - man_unc / auto_unc:.1%} over auto in uncached "
        f"mode (the paper's unreachable-state elimination)"
    )


if __name__ == "__main__":
    main()
