#!/usr/bin/env python3
"""A microcoded cache-line transfer engine (the paper's Fig. 3/4 idea).

Writes a microprogram with the symbolic assembler, generates both the
flexible and the bound sequencer, runs a transaction in simulation,
and compares synthesized areas -- a miniature of the Smart Memories
Dispatch unit study.

Run:  python examples/cacheline_sequencer.py
"""

from repro.controllers import (
    DispatchTable,
    MicrocodeFormat,
    Program,
    SeqOp,
    SequencerSpec,
    generate_sequencer,
)
from repro.pe import specialize
from repro.sim import Simulator
from repro.synth import DesignCompiler


def write_program(fmt: MicrocodeFormat):
    """Line read, line write, and refill routines."""
    table = DispatchTable("ops", opcode_bits=2, default="idle")
    table.set(1, "line_rd")
    table.set(2, "line_wr")
    table.set(3, "refill")

    prog = Program(fmt, conditions=["req", "more"])
    prog.label("idle")
    prog.inst(seq=SeqOp.DISPATCH)

    prog.label("line_rd")
    prog.inst(cnt="load")
    prog.label("rd_loop")
    prog.inst(
        cmd="read", unit="mem", cnt="dec",
        seq=SeqOp.BRANCH, target="rd_loop", condition="more",
    )
    prog.inst(cmd="done", seq=SeqOp.JUMP, target="idle")

    prog.label("line_wr")
    prog.inst(cnt="load")
    prog.label("wr_loop")
    prog.inst(
        cmd="write", unit="mem", cnt="dec",
        seq=SeqOp.BRANCH, target="wr_loop", condition="more",
    )
    prog.inst(cmd="done", seq=SeqOp.JUMP, target="idle")

    prog.label("refill")
    prog.inst(cmd="read", unit="bus")
    prog.inst(cmd="write", unit="mem")
    prog.inst(cmd="done", seq=SeqOp.JUMP, target="idle")

    return prog.assemble(addr_bits=4, dispatch=table)


def main() -> None:
    fmt = MicrocodeFormat.horizontal(
        ("cmd", ["read", "write", "done"]),
        ("unit", ["mem", "bus"]),
        ("cnt", ["load", "dec"]),
    )
    image = write_program(fmt)
    print("microprogram listing:")
    print(image.listing())
    print()

    spec = SequencerSpec(
        "xfer",
        fmt,
        addr_bits=4,
        cond_bits=2,
        num_conditions=2,
        opcode_bits=2,
        flexible=True,
        expose_upc=True,
    )
    flexible = generate_sequencer(spec).module

    # Run the bound engine: dispatch a line read and watch the beats.
    bound_spec = SequencerSpec(
        "xfer",
        fmt,
        addr_bits=4,
        cond_bits=2,
        num_conditions=2,
        opcode_bits=2,
        flexible=False,
        expose_upc=True,
    )
    bound = generate_sequencer(bound_spec, image)
    print(
        f"generator-derived uPC annotation: "
        f"{bound.upc_annotation.values}"
    )
    sim = Simulator(bound.module)
    sim.step({"op": 1, "cond": 0})  # dispatch line_rd
    sim.step({"op": 0, "cond": 0})  # cnt load
    beats = 0
    # 'more' is condition 1: report more beats for three cycles.
    for remaining in (1, 1, 1, 0, 0):
        out = sim.step({"op": 0, "cond": remaining << 1})
        beats += 1 if out["ctl_cmd"] else 0
    print(f"observed {beats} command beats for the line read")

    compiler = DesignCompiler()
    full = compiler.compile(flexible)
    auto = specialize(
        flexible,
        {
            "ucode": image.instruction_words(),
            "dispatch": image.dispatch_rows(),
        },
        compiler=compiler,
    )
    print(f"flexible sequencer: {full.area.total:8.1f} um^2 "
          f"({full.area.sequential:.1f} sequential)")
    print(f"specialized:        {auto.area.total:8.1f} um^2 "
          f"({auto.area.sequential:.1f} sequential)")
    print(f"partial evaluation kept "
          f"{auto.area.total / full.area.total:.0%} of the area")


if __name__ == "__main__":
    main()
