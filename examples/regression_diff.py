#!/usr/bin/env python3
"""The run store API: record a sweep, perturb it, diff the records.

What ``python -m repro.track`` does from the command line, driven
directly through :mod:`repro.flow.store`:

1. run the Fig. 6 driver (cached) and persist its complete result —
   figure points plus aggregated per-pass wall times — as a
   ``RunRecord`` under a "baseline" label;
2. record a second run under a "candidate" label — same tree, so the
   cache serves every compile and the diff is provably clean;
3. inject a fake area bump and pass slowdown into the candidate and
   show how ``diff_runs`` classifies them against thresholds.

Run:  python examples/regression_diff.py
"""

import tempfile
from dataclasses import replace

from repro.expts import run_fig6
from repro.flow import CompileCache, RunRecord, RunStore, diff_runs
from repro.flow.store import now

AREA_PCT = 1.0   # areas are deterministic: flag any real growth
TIME_PCT = 50.0  # wall clocks are noisy: flag only big slowdowns


def record(store, cache, commit):
    result = run_fig6(scale="small", cache=cache)
    record = RunRecord(
        figure="fig6", commit=commit, result=result,
        scale="small", created_at=now(),
    )
    store.put(record)
    print(f"recorded {len(result.points)} points at {commit!r}; "
          f"{cache.stats_line()}")
    return record


def main():
    with tempfile.TemporaryDirectory() as tmp:
        store = RunStore(f"{tmp}/runs")
        cache = CompileCache(f"{tmp}/cache")

        print("== 1. record a baseline (cold: every job compiles)")
        record(store, cache, "baseline")

        print("\n== 2. record a candidate from the same tree (all hits)")
        record(store, cache, "candidate")
        diff = diff_runs(store.get("baseline", "fig6"),
                         store.get("candidate", "fig6"))
        print(diff.render(AREA_PCT, TIME_PCT))
        assert diff.identical, "same tree + cache must diff clean"

        print("\n== 3. inject a 10% area bump and a 3x pass slowdown")
        candidate = store.get("candidate", "fig6")
        result = candidate.result
        victim = result.points[0]
        result.points[0] = replace(victim, y=victim.y * 1.10)
        slow = result.pass_totals["optimize"]
        result.pass_totals["optimize"] = replace(
            slow, wall_time_s=slow.wall_time_s * 3.0
        )
        store.put(candidate)

        diff = diff_runs(store.get("baseline", "fig6"),
                         store.get("candidate", "fig6"))
        print(diff.render(AREA_PCT, TIME_PCT))
        areas = diff.area_regressions(AREA_PCT)
        times = diff.time_regressions(TIME_PCT)
        print(f"\nflagged: {len(areas)} area regression(s) "
              f"({areas[0].series}/{areas[0].label} {areas[0].y_pct:+.1f}%), "
              f"{len(times)} pass slowdown(s) "
              f"({times[0].name} {times[0].time_pct:+.1f}%)")
        print("`python -m repro.track diff` would exit 1 here.")


if __name__ == "__main__":
    main()
