#!/usr/bin/env python3
"""The flow API: compose, reorder, and instrument synthesis pipelines.

Five demonstrations on one FSM:

1. parse a pipeline from a spec string and read the per-pass
   instrumentation (``PassRecord``: wall time, AND-count deltas);
2. compare pass *orderings* — balance-then-rewrite vs
   rewrite-then-balance — which the old monolithic driver could not
   express;
3. register a custom pass and use it from a spec string;
4. start from the *controller IR*: the FSM spec itself enters the
   pipeline and a ``ctrl``-stage pass lowers it, so state-encoding
   ablations (onehot vs gray vs binary) are one spec token;
5. ablate the *backend*: extend the recipe with resubstitution and
   don't-care-aware rewriting, and map against every registered
   library -- one spec string per (recipe, library) variant.

Run:  python examples/flow_pipelines.py
"""

from repro.controllers import FsmSpec, fsm_to_table_rtl
from repro.flow import (
    Pass,
    PassManager,
    register_pass,
    optimize_loop,
)
from repro.flow.passes import ElaboratePass, SizePass, TechMapPass
from repro.synth.elaborate import elaborate


def demo_spec():
    return FsmSpec(
        "stream",
        num_inputs=2,
        num_outputs=4,
        num_states=5,
        reset_state=0,
        next_state=[
            [0, 1, 2, 1],
            [2, 2, 3, 3],
            [3, 4, 3, 4],
            [4, 0, 1, 0],
            [0, 0, 2, 2],
        ],
        output=[
            [0, 1, 2, 3],
            [4, 5, 6, 7],
            [8, 9, 10, 11],
            [12, 13, 14, 15],
            [1, 3, 5, 7],
        ],
    )


def main() -> None:
    module = fsm_to_table_rtl(demo_spec())

    # -- 1. spec strings + instrumentation ----------------------------
    pipeline = PassManager.parse("elaborate,optimize,map,size")
    ctx = pipeline.compile(module)
    print(f"pipeline: {pipeline.spec()}")
    print(f"area {ctx.area.total:.1f} um^2, "
          f"delay {ctx.timing.critical_delay:.3f} ns")
    print(f"{'pass':16s} {'ms':>8s} {'d-ands':>7s}")
    for record in ctx.records:
        delta = record.delta_ands
        print(f"{record.name:16s} {record.wall_time_s * 1e3:8.2f} "
              f"{delta if delta is not None else '':>7}")

    # -- 2. orderings the monolith could not express ------------------
    aig = elaborate(module).aig
    for spec in ("tt_sweep,balance,rewrite", "tt_sweep,rewrite,balance"):
        out = PassManager.parse(spec).compile(aig=aig)
        print(f"{spec:28s} -> {out.aig.num_ands} ands, "
              f"depth {out.aig.depth()}")

    # -- 3. a custom registered pass ----------------------------------
    @register_pass("double_rewrite")
    class DoubleRewritePass(Pass):
        """Example custom pass: two rewrite applications back to back."""

        def run(self, ctx):
            from repro.aig.rewrite import rewrite

            ctx.aig = rewrite(rewrite(ctx.aig))

    custom = PassManager.parse("seq_sweep,double_rewrite")
    out = custom.compile(aig=aig)
    print(f"custom pipeline {custom.spec()!r} -> {out.aig.num_ands} ands")

    # -- and the full flow, composed from objects ---------------------
    full = PassManager([
        ElaboratePass(),
        optimize_loop(effort_rounds=3),
        TechMapPass(),
        SizePass(clock_period_ns=2.0),
    ])
    ctx = full.compile(module)
    print(f"object-composed flow: met={ctx.sizing.met} "
          f"achieved={ctx.sizing.achieved_delay:.3f} ns")

    # -- 4. the frontend stage: lower the IR inside the flow ----------
    # No hand-built RTL: the spec string starts at the controller IR
    # (the paper's thesis), and the encoding is an ablation knob.
    for style in ("binary", "onehot", "gray"):
        pipeline = PassManager.parse(
            f"fsm_encode{{style={style}}},elaborate,optimize,"
            f"state_folding,map,size"
        )
        out = pipeline.compile(ctrl=demo_spec())
        record = next(r for r in out.records if r.name == "fsm_encode")
        print(f"fsm_encode{{style={style}}}: "
              f"{record.ctrl_before.items}-state "
              f"{record.ctrl_before.kind} -> area {out.area.total:.1f} "
              f"um^2, state width "
              f"{out.module.regs['state'].width}")

    # -- 5. backend ablations: resub + don't-cares, and libraries -----
    # The optimization recipe and the cell library are spec tokens
    # like everything else; the techsweep driver runs exactly this
    # grid over whole benchmark sets (python -m repro.expts techsweep).
    from repro.expts.techsweep import RECIPES
    from repro.flow.passes import registered_library_names

    for recipe_name, recipe in RECIPES.items():
        for library in registered_library_names():
            spec = f"fsm_encode,{recipe},map{{library={library}}},size"
            out = PassManager.parse(spec).compile(ctrl=demo_spec())
            print(f"{recipe_name:9s} x {library:12s} -> "
                  f"{out.aig.num_ands:3d} ands, "
                  f"area {out.area.total:7.1f} um^2, "
                  f"delay {out.timing.critical_delay:.3f} ns")


if __name__ == "__main__":
    main()
