#!/usr/bin/env python3
"""Quickstart: flexible controllers, partial evaluation, annotations.

Builds one small controller three ways -- the paper's central
comparison -- and synthesizes each with the bundled compiler:

1. *flexible*: next-state and output tables in programmable memories
   (what a runtime-reconfigurable chip would carry);
2. *bound*: the same tables baked in as ROMs, which partial evaluation
   collapses into plain logic;
3. *direct*: the vendor-recommended case-statement style.

Run:  python examples/quickstart.py
"""

from repro.controllers import FsmSpec, fsm_to_case_rtl, fsm_to_table_rtl
from repro.pe import bind_tables
from repro.controllers.fsm_rtl import table_rows
from repro.synth import CompileOptions, DesignCompiler
from repro.synth.dc_options import StateAnnotation


def main() -> None:
    # A tiny handshake controller: IDLE -> BUSY -> DONE -> IDLE.
    spec = FsmSpec(
        "handshake",
        num_inputs=1,   # 'go'
        num_outputs=2,  # {busy, done}
        num_states=3,
        reset_state=0,
        next_state=[
            [0, 1],  # IDLE: wait for go
            [2, 2],  # BUSY: always advance
            [0, 0],  # DONE: return
        ],
        output=[
            [0b00, 0b00],
            [0b01, 0b01],
            [0b10, 0b10],
        ],
    )

    compiler = DesignCompiler()
    options = CompileOptions(clock_period_ns=5.0)

    flexible = fsm_to_table_rtl(spec, flexible=True)
    bound = bind_tables(
        flexible,
        {
            "next_mem": table_rows(spec, "next"),
            "out_mem": table_rows(spec, "output"),
        },
    )
    direct = fsm_to_case_rtl(spec)

    flexible_result = compiler.compile(flexible, options)
    bound_result = compiler.compile(bound, options)
    annotated_result = compiler.compile(
        bound,
        CompileOptions(
            clock_period_ns=5.0,
            state_annotations=[StateAnnotation("state", (0, 1, 2))],
        ),
    )
    direct_result = compiler.compile(direct, options)

    print("Design                      comb um^2   seq um^2  total um^2")
    for name, result in [
        ("flexible (config memories)", flexible_result),
        ("bound (partial evaluation)", bound_result),
        ("bound + state annotation  ", annotated_result),
        ("direct (case statements)  ", direct_result),
    ]:
        area = result.area
        print(
            f"{name}  {area.combinational:9.1f}  {area.sequential:9.1f}"
            f"  {area.total:10.1f}"
        )

    ratio = bound_result.area.total / direct_result.area.total
    print()
    print(
        f"bound/direct area ratio: {ratio:.2f} -- the generator only had "
        f"to emit a table of bits."
    )
    saved = 1 - bound_result.area.total / flexible_result.area.total
    print(f"partial evaluation removed {saved:.0%} of the flexible area.")


if __name__ == "__main__":
    main()
