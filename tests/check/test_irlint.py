"""IR/netlist linter details beyond the fixture corpus: clean bills
for real flow artifacts, dispatch behaviour, and input validation."""

import pytest

from repro.check import (
    lint_aig,
    lint_fsm,
    lint_ir,
    lint_netlist,
    lint_transitions,
)
from repro.controllers.fsm import FsmSpec
from repro.flow.manager import PassManager

from tests.check.fixtures import _bad_fsm, _loop_program


def small_fsm():
    return FsmSpec("t", 1, 1, 2, 0, [[0, 1], [1, 0]], [[0, 0], [1, 1]])


def test_real_flow_artifacts_lint_clean():
    ctx = PassManager.parse(
        "fsm_encode,elaborate,optimize,map,size"
    ).compile(ctrl=small_fsm())
    assert lint_aig(ctx.aig) == []
    assert lint_netlist(ctx.netlist) == []


def test_fsm_warnings_are_warnings():
    diags = lint_fsm(_bad_fsm())
    assert {d.code for d in diags} == {"CHK201", "CHK202"}
    assert all(d.severity == "warning" for d in diags)
    assert lint_fsm(small_fsm()) == []


def test_lint_ir_dispatches_on_kind():
    assert lint_ir(small_fsm()) == []
    assert lint_ir(_loop_program()) == []
    assert lint_ir(_loop_program().assemble()) == []
    bad = {d.code for d in lint_ir(_bad_fsm())}
    assert "CHK201" in bad


def test_overlap_without_conflict_is_fine():
    # Two overlapping rows agreeing on the target: no CHK203.
    assert (
        lint_transitions(2, 2, [(0, "1-", 1), (0, "11", 1), (0, "0-", 0),
                                (1, "--", 0)])
        == []
    )


def test_transitions_validate_their_rows():
    with pytest.raises(ValueError):
        lint_transitions(2, 2, [(5, "--", 0)])
    with pytest.raises(ValueError):
        lint_transitions(2, 2, [(0, "2-", 0)])
    with pytest.raises(ValueError):
        lint_transitions(2, 2, [(0, "---", 0)])
