"""The seeded-defect corpus: every diagnostic code must fire on its
fixture, and fire with valid metadata."""

import pytest

from repro.check.diagnostics import CODES, SEVERITIES

from tests.check.fixtures import FIXTURES

#: CHK6xx defects are source files, exercised in test_locks.py.
LOCK_CODES = {"CHK601", "CHK602"}


def test_corpus_covers_every_code():
    assert set(FIXTURES) | LOCK_CODES == set(CODES)


@pytest.mark.parametrize("code", sorted(FIXTURES))
def test_fixture_corpus(code):
    diagnostics = FIXTURES[code]()
    fired = {d.code for d in diagnostics}
    assert code in fired, (
        f"fixture for {code} produced {sorted(fired) or 'nothing'}"
    )
    for diagnostic in diagnostics:
        assert diagnostic.code in CODES
        assert diagnostic.severity in SEVERITIES
        assert diagnostic.location
        assert diagnostic.message
