"""Seeded-defect corpus: one fixture per diagnostic code.

Each entry in :data:`FIXTURES` maps a code to a zero-argument builder
returning the diagnostics of an artifact seeded with exactly that
defect; ``test_fixture_corpus`` asserts the expected code actually
fires.  This is the regression net for the analyzers themselves: a
checker that silently stops firing fails here, not in production.

The CHK6xx (lock-discipline) fixtures are source *files*, built by
:func:`lock_fixture_diags` against temp paths -- see
``test_locks.py``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.check import (
    analyze_aig,
    analyze_fsm,
    analyze_guards,
    analyze_microcode,
    check_spec,
    lint_aig,
    lint_fsm,
    lint_microcode,
    lint_netlist,
    lint_program,
    lint_transitions,
)
from repro.controllers.assembler import Program
from repro.controllers.dispatch import DispatchTable
from repro.controllers.fsm import FsmSpec
from repro.controllers.microcode import MicrocodeFormat, SeqOp
from repro.tech.netlist import Instance, MappedNetlist

_FMT = MicrocodeFormat.horizontal(("alu", ["add", "sub"]))


def _loop_program() -> Program:
    program = Program(_FMT)
    program.label("start")
    program.inst(alu="add")
    program.inst(SeqOp.JUMP, "start")
    return program


def _bad_fsm() -> FsmSpec:
    # State 0 is a reachable trap; states 1 and 2 are unreachable.
    return FsmSpec(
        "bad", 1, 1, 3, 0,
        [[0, 0], [1, 1], [2, 2]],
        [[0, 0], [1, 1], [0, 0]],
    )


def _aig_with_bad_po():
    from repro.aig.graph import AIG

    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    aig.add_po("f", aig.and_(a, b))
    # Corrupt it the way only direct mutation can: a PO literal
    # referencing a node that does not exist.
    aig._pos.append(("ghost", (aig.num_nodes + 7) << 1))
    return aig


def _aig_with_dangling():
    from repro.aig.graph import AIG

    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    aig.and_(a, b)  # feeds nothing
    aig.add_po("f", a)
    return aig


def _aig_with_dead_cone():
    # A self-sustaining latch no primary output observes: its next
    # cone keeps it alive under the CHK402 walk, but the liveness
    # fixpoint sees the whole cone is output-independent.
    from repro.aig.graph import AIG

    aig = AIG()
    a = aig.add_pi("a")
    b = aig.add_pi("b")
    aig.add_po("f", aig.and_(a, b))
    zombie = aig.add_latch("zombie", reset_kind="sync")
    aig.set_latch_next(zombie, aig.and_(zombie, a))
    return aig


def _dead_branch():
    # BRANCH at address 0 whose taken target is its own fall-through.
    program = Program(_FMT)
    program.inst(SeqOp.BRANCH, "after", alu="add")
    program.label("after")
    program.inst(SeqOp.JUMP, "after", alu="sub")
    return program.assemble(addr_bits=2)


def _constant_field():
    # Every reachable control word decodes alu to "add".
    program = Program(_FMT)
    program.label("start")
    program.inst(alu="add")
    program.inst(SeqOp.JUMP, "start", alu="add")
    return program.assemble(addr_bits=2)


def _netlist(instances, pi_nets, po_nets, num_nets) -> MappedNetlist:
    return MappedNetlist(
        library=None,
        instances=instances,
        flops=[],
        pi_nets=pi_nets,
        po_nets=po_nets,
        num_nets=num_nets,
    )


FIXTURES = {
    # -- spec typechecker ---------------------------------------------
    "CHK100": lambda: check_spec("elaborate,{oops"),
    "CHK101": lambda: check_spec("rewritee"),
    "CHK102": lambda: check_spec("encode{styl=gray}"),
    "CHK103": lambda: check_spec("rewrite{k=four}"),
    "CHK104": lambda: check_spec("optimize{effort_rounds=0}"),
    "CHK105": lambda: check_spec("map,elaborate", input_stage="rtl"),
    "CHK106": lambda: check_spec(
        "fsm_encode,elaborate,optimize,map,size",
        input_stage="ctrl",
        ir_kind="table",
    ),
    "CHK107": lambda: check_spec(
        "pe_bind,elaborate,optimize,map,size",
        input_stage="rtl",
        has_bindings=False,
    ),
    # -- FSM linter ---------------------------------------------------
    "CHK201": lambda: lint_fsm(_bad_fsm()),
    "CHK202": lambda: lint_fsm(_bad_fsm()),
    "CHK203": lambda: lint_transitions(
        2, 2, [(0, "1-", 1), (0, "-1", 0), (1, "--", 0)]
    ),
    "CHK204": lambda: lint_transitions(
        2, 2, [(0, "1-", 1), (1, "--", 0)]
    ),
    # -- microcode linter ---------------------------------------------
    "CHK300": lambda: lint_program(_jump_nowhere()),
    "CHK301": lambda: lint_microcode(_jump_past_end()),
    "CHK302": lambda: lint_microcode(_falls_off_end()),
    "CHK303": lambda: lint_microcode(
        replace(
            _loop_program().assemble(),
            control_words=[999, 0],
        )
    ),
    "CHK304": lambda: lint_microcode(_unreachable_tail()),
    "CHK305": lambda: lint_microcode(
        replace(
            _loop_program().assemble(),
            dispatch=DispatchTable("d", 1, {0: "start", 1: "missing"}, None),
        )
    ),
    # -- AIG linter ---------------------------------------------------
    "CHK401": lambda: lint_aig(_aig_with_bad_po()),
    "CHK402": lambda: lint_aig(_aig_with_dangling()),
    # -- netlist linter -----------------------------------------------
    "CHK501": lambda: lint_netlist(
        _netlist(
            [
                Instance("nand2", [2, 5], 4),
                Instance("nand2", [4, 4], 5),
            ],
            pi_nets={"a": 2},
            po_nets={"f": 4},
            num_nets=6,
        )
    ),
    "CHK502": lambda: lint_netlist(
        _netlist(
            [
                Instance("inv", [2], 3),
                Instance("inv", [2], 3),
            ],
            pi_nets={"a": 2},
            po_nets={"f": 3},
            num_nets=4,
        )
    ),
    "CHK503": lambda: lint_netlist(
        _netlist(
            [Instance("inv", [7], 3)],
            pi_nets={"a": 2},
            po_nets={"f": 3},
            num_nets=8,
        )
    ),
    # -- dataflow (abstract interpretation) ---------------------------
    "CHK701": lambda: analyze_fsm(_bad_fsm()),
    "CHK702": lambda: analyze_guards(
        2,
        2,
        [(0, "0-", 1), (0, "1-", 0), (1, "--", 0)],
        allowed_cubes=["0-"],
    ),
    "CHK703": lambda: analyze_microcode(_dead_branch()),
    "CHK704": lambda: analyze_microcode(_constant_field()),
    "CHK705": lambda: analyze_microcode(
        replace(
            _loop_program().assemble(),
            dispatch=DispatchTable("d", 1, {0: "start"}, None),
        )
    ),
    "CHK706": lambda: analyze_aig(_aig_with_dead_cone()),
    # -- pass-effect contracts ----------------------------------------
    "CHK710": lambda: check_spec(
        "fsm_encode{realize=case},elaborate,retime,dc_rewrite",
        input_stage="ctrl",
        ir_kind="fsm",
        has_facts=True,
    ),
}


def _jump_nowhere() -> Program:
    program = Program(_FMT)
    program.inst(SeqOp.JUMP, "nowhere")
    return program


def _jump_past_end():
    # An int target inside the address space but past the program:
    # assembles fine, jumps into unwritten memory.
    program = Program(_FMT)
    program.inst(alu="add")
    program.inst(SeqOp.JUMP, 3)
    return program.assemble(addr_bits=2)


def _falls_off_end():
    program = Program(_FMT)
    program.label("start")
    program.inst(alu="add")
    program.inst(alu="sub")  # NEXT at the last instruction
    return program.assemble(addr_bits=2)


def _unreachable_tail():
    program = Program(_FMT)
    program.label("start")
    program.inst(SeqOp.JUMP, "start")
    program.inst(alu="sub")  # nothing reaches address 1
    return program.assemble(addr_bits=2)
