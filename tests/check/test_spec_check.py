"""The spec typechecker: diagnostics, compile()-time rejection, parse
error messages, and the shipped-spec zero-diagnostic bar."""

import pytest

from repro.check import check_job, check_manager, check_spec, exit_code
from repro.check.spec import input_stage_of
from repro.controllers.fsm import FsmSpec
from repro.tables.truthtable import TruthTable
from repro.flow import CompileJob, PassManager
from repro.flow.core import FlowError


def small_fsm(name="f"):
    return FsmSpec(
        name, 1, 1, 2, 0, [[0, 1], [1, 0]], [[0, 0], [1, 1]]
    )


# -- clean pipelines ---------------------------------------------------
def test_default_style_pipelines_are_clean():
    assert check_spec(
        "fsm_encode,fsm_infer,honour_annotations,encode,elaborate,"
        "optimize,map,size",
        input_stage="ctrl",
        ir_kind="fsm",
    ) == []
    assert check_spec(
        "elaborate,optimize,map,size", input_stage="rtl"
    ) == []


def test_conditional_items_skip_stage_mismatches():
    # `retime_stage?` on an already-mapped flow: Conditional skips at
    # runtime, so the checker must not flag it either.
    assert check_spec(
        "elaborate,optimize,map,retime_stage?,size", input_stage="rtl"
    ) == []


def test_unknown_entry_stage_checks_internal_order_only():
    assert check_spec("optimize,map,size") == []
    bad = check_spec("map,optimize,size")
    assert bad and {d.code for d in bad} == {"CHK105"}


# -- individual codes --------------------------------------------------
def test_unknown_pass_suggests_neighbour():
    (diag,) = check_spec("rewritee")
    assert diag.code == "CHK101"
    assert "did you mean 'rewrite'?" in diag.suggestion


def test_unknown_option_suggests_neighbour():
    diags = check_spec("optimize{effort_round=3}")
    assert [d.code for d in diags] == ["CHK102"]
    assert "did you mean 'effort_rounds'?" in diags[0].suggestion


def test_type_and_range_are_distinct_codes():
    (type_diag,) = check_spec("rewrite{k=four}")
    assert type_diag.code == "CHK103"
    (range_diag,) = check_spec("size{clock_period_ns=0}")
    assert range_diag.code == "CHK104"


def test_choice_violation_names_choices():
    (diag,) = check_spec("encode{style=grey}")
    assert diag.code == "CHK104"
    assert "gray" in diag.message


def test_stage_error_embeds_runtime_phrase():
    (diag,) = check_spec(
        "fsm_encode,map,size", input_stage="ctrl", ir_kind="fsm"
    )
    assert diag.code == "CHK105"
    assert "needs an elaborated AIG" in diag.message
    assert "insert 'elaborate'" in diag.suggestion


def test_repeated_lowering_is_flagged():
    diags = check_spec("elaborate[2],optimize,map,size", input_stage="rtl")
    assert [d.code for d in diags] == ["CHK105"]
    assert "repeating it 2 times" in diags[0].message


def test_ir_kind_mismatch_names_the_class():
    diags = check_spec(
        "table_rom,elaborate,optimize,map,size",
        input_stage="ctrl",
        ir_kind="fsm",
    )
    assert [d.code for d in diags] == ["CHK106"]
    assert "TruthTable" in diags[0].message


def test_missing_bindings_is_flagged_only_when_known_absent():
    spec = "pe_bind,elaborate,optimize,map,size"
    assert [d.code for d in check_spec(spec, has_bindings=False)] == [
        "CHK107"
    ]
    assert check_spec(spec, has_bindings=True) == []
    assert check_spec(spec, has_bindings=None) == []


def test_malformed_spec_reports_and_continues():
    diags = check_spec("elaborate,opt imize,map,size", input_stage="rtl")
    # The bad item is CHK100; 'map' then follows 'elaborate' (aig) fine.
    assert diags[0].code == "CHK100"


# -- check_manager / check_job ----------------------------------------
def test_check_manager_flags_object_pipelines():
    manager = PassManager.parse("map,size,optimize")
    diags = check_manager(manager, input_stage="aig")
    assert [d.code for d in diags] == ["CHK105"]


def test_check_job_derives_inputs():
    job = CompileJob(
        "k", "elaborate,optimize,map,size", ctrl=small_fsm()
    )
    diags = check_job(job)
    assert "CHK105" in {d.code for d in diags}
    good = CompileJob(
        "k",
        "fsm_encode,elaborate,optimize,map,size",
        ctrl=small_fsm(),
    )
    assert check_job(good) == []


def test_input_stage_of_prefers_most_lowered():
    assert input_stage_of(ctrl=small_fsm(), module=None, aig=None) == (
        "ctrl",
        "fsm",
    )
    table = TruthTable.random(2, 2, __import__("random").Random(0))
    assert input_stage_of(ctrl=table, module=None, aig=None) == (
        "ctrl",
        "table",
    )
    assert input_stage_of(ctrl=None, module=None, aig=None) == (None, None)


# -- compile() runs the checker up front ------------------------------
def test_compile_rejects_statically_invalid_pipeline():
    manager = PassManager.parse("elaborate,optimize,map,size")
    with pytest.raises(FlowError) as excinfo:
        manager.compile(ctrl=small_fsm())
    message = str(excinfo.value)
    assert "pipeline spec check failed" in message
    assert "CHK105" in message


def test_compile_rejects_missing_bindings():
    manager = PassManager.parse("pe_bind,elaborate,optimize,map,size")
    from repro.rtl.builder import ModuleBuilder

    b = ModuleBuilder("m")
    b.output("y", b.input("x", 2))
    with pytest.raises(FlowError) as excinfo:
        manager.compile(b.build())
    assert "CHK107" in str(excinfo.value)


# -- parse() reuses typechecker diagnostics ---------------------------
def test_parse_errors_carry_code_position_and_suggestion():
    with pytest.raises(FlowError) as excinfo:
        PassManager.parse("elaborate,rewritee")
    message = str(excinfo.value)
    assert "[CHK101]" in message
    assert "at item 2" in message
    assert "did you mean 'rewrite'?" in message

    with pytest.raises(FlowError) as excinfo:
        PassManager.parse("optimize{effort_round=3}")
    message = str(excinfo.value)
    assert "[CHK102]" in message
    assert "did you mean 'effort_rounds'" in message


def test_exit_code_semantics():
    from repro.check import Diagnostic

    warning = Diagnostic("CHK201", "warning", "x", "y")
    error = Diagnostic("CHK101", "error", "x", "y")
    assert exit_code([]) == 0
    assert exit_code([warning]) == 0
    assert exit_code([warning], strict=True) == 1
    assert exit_code([error]) == 1
